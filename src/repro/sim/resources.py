"""Resource primitives for discrete-event models.

Two classic DES building blocks used by the cluster models:

* :class:`Resource` — a counted resource (e.g. migration-channel slots,
  deployment workers). Acquisitions beyond capacity queue FIFO and are
  granted as releases arrive.
* :class:`Store` — a FIFO buffer of items with blocking consumers
  (e.g. a work queue between producers and a pool of workers).

Both deliver grants via callbacks on the simulator, keeping the whole
library's no-coroutine style: model code stays plain Python functions
scheduled on the event kernel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError, SimulationError
from .kernel import Simulator


@dataclass
class _Waiter:
    callback: Callable[[], None]
    amount: int
    cancelled: bool = False


class Resource:
    """A counted resource with FIFO queueing."""

    def __init__(self, simulator: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ConfigurationError("resource capacity must be >= 1")
        self._sim = simulator
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[_Waiter] = deque()
        self._grants = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return sum(1 for waiter in self._waiters if not waiter.cancelled)

    @property
    def total_grants(self) -> int:
        return self._grants

    def acquire(self, on_grant: Callable[[], None], amount: int = 1) -> _Waiter:
        """Request ``amount`` units; ``on_grant`` fires when granted.

        Grants are delivered through the event queue (never inline), so
        callers can treat acquisition as asynchronous uniformly. The
        returned handle's ``cancelled`` flag can be set to abandon a
        queued request.
        """
        if not 1 <= amount <= self.capacity:
            raise ConfigurationError(
                f"{self.name}: amount must be within [1, {self.capacity}]"
            )
        waiter = _Waiter(callback=on_grant, amount=amount)
        self._waiters.append(waiter)
        self._drain()
        return waiter

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units to the pool."""
        if amount < 1:
            raise ConfigurationError("release amount must be >= 1")
        if amount > self._in_use:
            raise SimulationError(
                f"{self.name}: releasing {amount} but only {self._in_use} in use"
            )
        self._in_use -= amount
        self._drain()

    def _drain(self) -> None:
        while self._waiters:
            head = self._waiters[0]
            if head.cancelled:
                self._waiters.popleft()
                continue
            if head.amount > self.available:
                return
            self._waiters.popleft()
            self._in_use += head.amount
            self._grants += 1
            self._sim.after(0.0, head.callback, name=f"{self.name}:grant")


class Store:
    """A FIFO item buffer with blocking consumers."""

    def __init__(self, simulator: Simulator, name: str = "store", max_items: int | None = None) -> None:
        if max_items is not None and max_items < 1:
            raise ConfigurationError("max_items must be >= 1 when set")
        self._sim = simulator
        self.name = name
        self.max_items = max_items
        self._items: deque[object] = deque()
        self._consumers: deque[Callable[[object], None]] = deque()
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def dropped(self) -> int:
        """Items rejected because the buffer was full."""
        return self._dropped

    def put(self, item: object) -> bool:
        """Insert an item; returns False when a bounded store is full."""
        if self._consumers:
            consumer = self._consumers.popleft()
            self._sim.after(0.0, lambda: consumer(item), name=f"{self.name}:deliver")
            return True
        if self.max_items is not None and len(self._items) >= self.max_items:
            self._dropped += 1
            return False
        self._items.append(item)
        return True

    def get(self, on_item: Callable[[object], None]) -> None:
        """Request the next item; ``on_item`` fires when one is available."""
        if self._items:
            item = self._items.popleft()
            self._sim.after(0.0, lambda: on_item(item), name=f"{self.name}:deliver")
            return
        self._consumers.append(on_item)


__all__ = ["Resource", "Store"]
