"""Hierarchical power-delivery model with oversubscribed budgets.

Cloud providers provision more IT equipment than the delivery
infrastructure could supply at simultaneous peak ("power
oversubscription", Kumbhare et al.), betting on workload diversity. The
bet is placed at every level of the delivery tree — host PSU feeds into
rack PDU into row into UPS into substation — and each level carries
three numbers:

* a **rated limit** (what the conductor/breaker is built for),
* an **oversubscribed budget** (rated × oversubscription ratio — what
  capacity planning *sells* against), and
* a **breaker** with a time-over-threshold trip curve: short excursions
  above the rated limit are survivable, sustained ones are not.

Unlike :class:`repro.cluster.power_delivery.PowerNode` (which holds live
:class:`~repro.cluster.host.Host` objects and exists for small capping
scenarios), this model is *name-keyed and scale-free*: hosts are leaf
names with per-host draws supplied from outside, so the same tree
drives an 8-host crisis experiment and the 100k-host vectorized rollup
in :mod:`repro.vector.rollup`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping

from ..errors import ConfigurationError


class DeliveryLevel(Enum):
    """The levels of the delivery tree, root to leaf."""

    SUBSTATION = "substation"
    UPS = "ups"
    ROW = "row"
    RACK_PDU = "rack-pdu"
    HOST = "host"


#: Parent level expected for each level (root has none).
_PARENT_LEVEL: dict[DeliveryLevel, DeliveryLevel | None] = {
    DeliveryLevel.SUBSTATION: None,
    DeliveryLevel.UPS: DeliveryLevel.SUBSTATION,
    DeliveryLevel.ROW: DeliveryLevel.UPS,
    DeliveryLevel.RACK_PDU: DeliveryLevel.ROW,
    DeliveryLevel.HOST: DeliveryLevel.RACK_PDU,
}


@dataclass(frozen=True)
class BreakerCurve:
    """Inverse-time (I²t-style) trip curve of one breaker.

    A real thermal-magnetic breaker tolerates overload in proportion to
    how far over the rating the current is: the thermal element
    accumulates heat at a rate ∝ (I/I_rated)² − 1 while overloaded and
    cools while not. This parameterization pins the curve by one
    intuitive point — how long a 2× overload is tolerated — and an
    instantaneous-trip ratio for the magnetic element.
    """

    #: Seconds of sustained 2× overload before the thermal element trips.
    trip_seconds_at_2x: float = 8.0
    #: Overload ratio at or above which the magnetic element trips
    #: instantly (one observation is enough).
    instant_trip_ratio: float = 3.0
    #: Accumulated-heat decay per second while under the rated limit,
    #: as a fraction of the trip threshold.
    cooling_per_second: float = 0.05

    def __post_init__(self) -> None:
        if self.trip_seconds_at_2x <= 0:
            raise ConfigurationError("trip_seconds_at_2x must be positive")
        if self.instant_trip_ratio <= 1.0:
            raise ConfigurationError("instant_trip_ratio must exceed 1.0")
        if self.cooling_per_second < 0:
            raise ConfigurationError("cooling_per_second cannot be negative")

    @property
    def heat_threshold(self) -> float:
        """Accumulated (ratio² − 1)·seconds at which the breaker trips."""
        return 3.0 * self.trip_seconds_at_2x  # 2² − 1 = 3 per second at 2×

    def trip_time_s(self, overload_ratio: float) -> float:
        """Time-to-trip under a constant ``overload_ratio`` (> 1)."""
        if overload_ratio <= 1.0:
            return float("inf")
        if overload_ratio >= self.instant_trip_ratio:
            return 0.0
        return self.heat_threshold / (overload_ratio**2 - 1.0)


class Breaker:
    """One breaker's thermal state: accumulates overload, trips once."""

    def __init__(self, curve: BreakerCurve | None = None) -> None:
        self.curve = curve if curve is not None else BreakerCurve()
        self.heat = 0.0
        self.tripped_at_s: float | None = None

    @property
    def tripped(self) -> bool:
        return self.tripped_at_s is not None

    def observe(self, now_s: float, dt_s: float, draw_watts: float, rated_watts: float) -> bool:
        """Integrate one control tick of draw; returns True on a new trip."""
        if self.tripped:
            return False
        if dt_s < 0:
            raise ConfigurationError("dt must be non-negative")
        ratio = draw_watts / rated_watts
        if ratio >= self.curve.instant_trip_ratio:
            self.tripped_at_s = now_s
            return True
        if ratio > 1.0:
            self.heat += dt_s * (ratio**2 - 1.0)
            if self.heat >= self.curve.heat_threshold:
                self.tripped_at_s = now_s
                return True
        else:
            self.heat = max(
                0.0,
                self.heat - dt_s * self.curve.cooling_per_second * self.curve.heat_threshold,
            )
        return False

    def reset(self) -> None:
        """Close the breaker again (manual re-arm after repair)."""
        self.heat = 0.0
        self.tripped_at_s = None


@dataclass
class DeliveryNode:
    """One node of the delivery tree (any level, including hosts)."""

    name: str
    level: DeliveryLevel
    rated_watts: float
    #: Budget = rated × oversubscription; what admission control sells.
    oversubscription: float = 1.0
    parent: str | None = None
    breaker: Breaker = field(default_factory=Breaker)

    def __post_init__(self) -> None:
        if self.rated_watts <= 0:
            raise ConfigurationError(f"{self.name}: rated limit must be positive")
        if self.oversubscription < 1.0:
            raise ConfigurationError(
                f"{self.name}: oversubscription ratio must be >= 1.0"
            )

    @property
    def budget_watts(self) -> float:
        """The oversubscribed budget admission control grants against."""
        return self.rated_watts * self.oversubscription


class PowerDeliveryHierarchy:
    """The full five-level delivery tree, keyed by node name.

    Construction validates shape: exactly one root, every non-root
    parent exists and sits one level up, and a child's *rated* limit
    never exceeds its parent's (a breaker cannot protect a feed fatter
    than its own).
    """

    def __init__(self, nodes: Iterable[DeliveryNode]) -> None:
        self.nodes: dict[str, DeliveryNode] = {}
        for node in nodes:
            if node.name in self.nodes:
                raise ConfigurationError(f"duplicate node name {node.name!r}")
            self.nodes[node.name] = node
        roots = [node for node in self.nodes.values() if node.parent is None]
        if len(roots) != 1:
            raise ConfigurationError(
                f"need exactly one root node, found {len(roots)}"
            )
        self.root = roots[0]
        self._children: dict[str, list[str]] = {name: [] for name in self.nodes}
        for node in self.nodes.values():
            if node.parent is None:
                continue
            parent = self.nodes.get(node.parent)
            if parent is None:
                raise ConfigurationError(
                    f"{node.name}: parent {node.parent!r} does not exist"
                )
            expected = _PARENT_LEVEL[node.level]
            if expected is not None and parent.level is not expected:
                raise ConfigurationError(
                    f"{node.name} ({node.level.value}) must hang off a "
                    f"{expected.value}, not {parent.level.value} {parent.name!r}"
                )
            if node.rated_watts > parent.rated_watts:
                raise ConfigurationError(
                    f"{node.name}: rated {node.rated_watts:.0f} W exceeds its "
                    f"parent {parent.name!r} rating {parent.rated_watts:.0f} W "
                    "(a breaker cannot protect a feed fatter than its own)"
                )
            self._children[parent.name].append(node.name)
        self._ancestors: dict[str, tuple[str, ...]] = {}
        for name in self.nodes:
            chain = []
            cursor = self.nodes[name].parent
            while cursor is not None:
                chain.append(cursor)
                cursor = self.nodes[cursor].parent
            self._ancestors[name] = tuple(chain)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def hosts(self) -> list[str]:
        """Every leaf (HOST-level) node name, sorted for determinism."""
        return sorted(
            name for name, node in self.nodes.items() if node.level is DeliveryLevel.HOST
        )

    def children(self, name: str) -> tuple[str, ...]:
        return tuple(self._children[name])

    def ancestors(self, name: str) -> tuple[str, ...]:
        """Ancestor chain of ``name``, nearest first (excludes itself)."""
        return self._ancestors[name]

    def lineage(self, host: str) -> tuple[str, ...]:
        """The host plus every ancestor — the path a watt travels."""
        return (host, *self._ancestors[host])

    def subtree_hosts(self, name: str) -> list[str]:
        """Every HOST-level leaf under ``name`` (sorted; includes itself
        when ``name`` is a host)."""
        node = self.nodes[name]
        if node.level is DeliveryLevel.HOST:
            return [name]
        collected: list[str] = []
        for child in self._children[name]:
            collected.extend(self.subtree_hosts(child))
        return sorted(collected)

    # ------------------------------------------------------------------
    # Rollup and enforcement
    # ------------------------------------------------------------------
    def rollup(self, draw_by_host: Mapping[str, float]) -> dict[str, float]:
        """Aggregate per-host draw up the tree; returns draw per node."""
        draws = {name: 0.0 for name in self.nodes}
        for host, watts in draw_by_host.items():
            if host not in self.nodes:
                raise ConfigurationError(f"unknown host {host!r} in draw map")
            draws[host] = watts
            for ancestor in self._ancestors[host]:
                draws[ancestor] += watts
        return draws

    def worst_headroom_fraction(self, draw_by_host: Mapping[str, float]) -> float:
        """Thinnest margin to any *rated* limit: ``min (rated−draw)/rated``.

        This is the power ladder's margin axis — the analogue of
        :func:`repro.emergency.ladder.worst_margin_c`. Negative means at
        least one breaker is already overloaded and accumulating heat.
        """
        draws = self.rollup(draw_by_host)
        return min(
            (node.rated_watts - draws[name]) / node.rated_watts
            for name, node in self.nodes.items()
        )

    def observe_breakers(
        self, now_s: float, dt_s: float, draw_by_host: Mapping[str, float]
    ) -> list[str]:
        """Integrate one tick into every breaker; returns new trips.

        A tripped node's subtree is dead: callers must zero those hosts'
        draws (they stop contributing heat and revenue alike). Nodes are
        visited in sorted-name order so trip order — and therefore the
        fault timeline — is deterministic.
        """
        draws = self.rollup(draw_by_host)
        tripped: list[str] = []
        for name in sorted(self.nodes):
            node = self.nodes[name]
            if any(self.nodes[a].breaker.tripped for a in self._ancestors[name]):
                continue  # upstream already dark; no current flows here
            if node.breaker.observe(now_s, dt_s, draws[name], node.rated_watts):
                tripped.append(name)
        return tripped

    def tripped_nodes(self) -> list[str]:
        return sorted(name for name, node in self.nodes.items() if node.breaker.tripped)

    def dead_hosts(self) -> list[str]:
        """Hosts with a tripped breaker anywhere on their lineage."""
        return sorted(
            host
            for host in self.hosts
            if any(self.nodes[n].breaker.tripped for n in self.lineage(host))
        )


def build_uniform_hierarchy(
    hosts_per_rack: int,
    racks_per_row: int,
    rows_per_ups: int = 1,
    ups_count: int = 1,
    host_rated_watts: float = 400.0,
    rack_oversubscription: float = 1.2,
    row_oversubscription: float = 1.25,
    ups_oversubscription: float = 1.15,
    substation_oversubscription: float = 1.1,
    diversity: float = 0.85,
    curve: BreakerCurve | None = None,
) -> PowerDeliveryHierarchy:
    """A regular substation → UPS → row → rack → host tree.

    Each level's rated limit is sized to ``diversity`` × the sum of its
    children's rated limits — the physical statement of oversubscription
    (the wire is thinner than the sum of its feeds). The
    ``*_oversubscription`` ratios then inflate each level's *budget*
    beyond its rating, which is the capacity-planning bet the arbiter
    polices.
    """
    if min(hosts_per_rack, racks_per_row, rows_per_ups, ups_count) < 1:
        raise ConfigurationError("every level needs at least one child")
    if not 0.0 < diversity <= 1.0:
        raise ConfigurationError("diversity must be in (0, 1]")
    make_curve = lambda: Breaker(curve)  # noqa: E731 - tiny local factory

    def derated(children: int, child_rated: float) -> float:
        # Diversity only buys thinner wire when there are peers to
        # diversify over; a single feed gets a full-rated parent.
        return child_rated * max(1.0, diversity * children)

    nodes: list[DeliveryNode] = []
    rack_rated = derated(hosts_per_rack, host_rated_watts)
    row_rated = derated(racks_per_row, rack_rated)
    ups_rated = derated(rows_per_ups, row_rated)
    sub_rated = derated(ups_count, ups_rated)
    nodes.append(
        DeliveryNode(
            "substation",
            DeliveryLevel.SUBSTATION,
            sub_rated,
            substation_oversubscription,
            breaker=make_curve(),
        )
    )
    for u in range(ups_count):
        ups = f"ups-{u}"
        nodes.append(
            DeliveryNode(
                ups,
                DeliveryLevel.UPS,
                ups_rated,
                ups_oversubscription,
                parent="substation",
                breaker=make_curve(),
            )
        )
        for r in range(rows_per_ups):
            row = f"{ups}/row-{r}"
            nodes.append(
                DeliveryNode(
                    row,
                    DeliveryLevel.ROW,
                    row_rated,
                    row_oversubscription,
                    parent=ups,
                    breaker=make_curve(),
                )
            )
            for k in range(racks_per_row):
                rack = f"{row}/rack-{k}"
                nodes.append(
                    DeliveryNode(
                        rack,
                        DeliveryLevel.RACK_PDU,
                        rack_rated,
                        rack_oversubscription,
                        parent=row,
                        breaker=make_curve(),
                    )
                )
                for h in range(hosts_per_rack):
                    nodes.append(
                        DeliveryNode(
                            f"{rack}/host-{h}",
                            DeliveryLevel.HOST,
                            host_rated_watts,
                            parent=rack,
                            breaker=make_curve(),
                        )
                    )
    return PowerDeliveryHierarchy(nodes)


__all__ = [
    "DeliveryLevel",
    "BreakerCurve",
    "Breaker",
    "DeliveryNode",
    "PowerDeliveryHierarchy",
    "build_uniform_hierarchy",
]
