"""The power-budget arbiter: one gatekeeper for both headroom markets.

The same electrical headroom gets sold twice — as *packed VMs*
(oversubscribed admission against predicted peaks) and as *frequency*
(overclock grants that raise a host's draw). Each sale alone is safe;
together they can exceed a row budget the moment prediction errs. The
:class:`PowerBudgetArbiter` is the single point both sales clear
through: every VM admission and every overclock grant is checked
against the remaining oversubscribed budget at *every* level of the
delivery tree (host → rack PDU → row → UPS → substation), and revokes
return their watts to every level at once.

Two invariants (pinned by property tests) follow from the design:

* **conservation** — the sum of grants charged under any node never
  exceeds that node's oversubscribed budget, because a grant is only
  issued when the full ancestor chain has headroom;
* **monotonicity** — replaying an identical request sequence against a
  tree with any budget raised never loses a grant that succeeded
  before: decisions are greedy, order-preserving, and depend only on
  remaining headroom, which can only grow when budgets grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError, PowerBudgetExceeded
from .predictor import PeakPowerPredictor
from .tree import DeliveryLevel, PowerDeliveryHierarchy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.timeline import FaultTimeline

#: Timeline kind recorded when the arbiter denies a request.
ARBITER_DENIED = "power-denied"


@dataclass(frozen=True)
class GrantDecision:
    """Outcome of one admission or overclock request."""

    granted: bool
    requested_watts: float
    #: The first ancestor (nearest the leaf) that lacked headroom.
    limiting_node: str | None = None
    #: Headroom remaining at the limiting node when denied.
    shortfall_watts: float = 0.0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.granted


class PowerBudgetArbiter:
    """Grants and revokes VM admissions and overclocks against the tree."""

    def __init__(
        self,
        hierarchy: PowerDeliveryHierarchy,
        predictor: PeakPowerPredictor | None = None,
        idle_watts_per_host: float = 0.0,
        timeline: "FaultTimeline | None" = None,
    ) -> None:
        if idle_watts_per_host < 0:
            raise ConfigurationError("idle watts cannot be negative")
        self.hierarchy = hierarchy
        self.predictor = predictor if predictor is not None else PeakPowerPredictor()
        self.timeline = timeline
        #: Watts charged against each node (grants, not metered draw).
        self._charged: dict[str, float] = {name: 0.0 for name in hierarchy.nodes}
        self._vm_grants: dict[str, tuple[str, float]] = {}  # vm_id -> (host, W)
        self._oc_grants: dict[str, float] = {}  # host -> W
        self.admissions_denied = 0
        self.overclocks_denied = 0
        if idle_watts_per_host:
            for host in hierarchy.hosts:
                self._charge(host, idle_watts_per_host)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def charged_watts(self, node: str) -> float:
        """Total granted watts currently charged under ``node``."""
        return self._charged[node]

    def headroom_watts(self, node: str) -> float:
        """Oversubscribed budget minus charges at ``node``."""
        return self.hierarchy.nodes[node].budget_watts - self._charged[node]

    def granted_overclock_watts(self, host: str) -> float:
        return self._oc_grants.get(host, 0.0)

    @property
    def overclocked_hosts(self) -> list[str]:
        return sorted(self._oc_grants)

    @property
    def admitted_vms(self) -> list[str]:
        return sorted(self._vm_grants)

    def vms_on_host(self, host: str) -> list[str]:
        return sorted(
            vm_id for vm_id, (owner, _) in self._vm_grants.items() if owner == host
        )

    def _charge(self, host: str, watts: float) -> None:
        for name in self.hierarchy.lineage(host):
            self._charged[name] += watts

    def _refund(self, host: str, watts: float) -> None:
        for name in self.hierarchy.lineage(host):
            self._charged[name] = max(0.0, self._charged[name] - watts)

    def _check(self, host: str, watts: float) -> GrantDecision:
        """Headroom check along the full ancestor chain, leaf first."""
        for name in self.hierarchy.lineage(host):
            headroom = self.headroom_watts(name)
            if watts > headroom:
                return GrantDecision(
                    granted=False,
                    requested_watts=watts,
                    limiting_node=name,
                    shortfall_watts=watts - headroom,
                )
        return GrantDecision(granted=True, requested_watts=watts)

    def _deny(self, time_s: float, what: str, target: str, decision: GrantDecision) -> None:
        if self.timeline is not None:
            self.timeline.record(
                time_s,
                ARBITER_DENIED,
                target,
                f"{what} {decision.requested_watts:.0f}W short "
                f"{decision.shortfall_watts:.0f}W at {decision.limiting_node}",
            )

    # ------------------------------------------------------------------
    # VM admission (headroom sold as packed VMs)
    # ------------------------------------------------------------------
    def admit_vm(
        self,
        vm_id: str,
        host: str,
        workload_class: str,
        vcores: int,
        time_s: float = 0.0,
    ) -> GrantDecision:
        """Admit one VM at its predicted peak, or deny with the reason."""
        if vm_id in self._vm_grants:
            raise ConfigurationError(f"VM {vm_id!r} is already admitted")
        if self.hierarchy.nodes[host].level is not DeliveryLevel.HOST:
            raise ConfigurationError(f"{host!r} is not a host-level node")
        watts = self.predictor.predict_vm_peak_watts(workload_class, vcores)
        decision = self._check(host, watts)
        if decision.granted:
            self._charge(host, watts)
            self._vm_grants[vm_id] = (host, watts)
        else:
            self.admissions_denied += 1
            self._deny(time_s, "admit", f"{host}:{vm_id}", decision)
        return decision

    def release_vm(self, vm_id: str) -> float:
        """Return an admitted VM's watts to every level; returns them."""
        try:
            host, watts = self._vm_grants.pop(vm_id)
        except KeyError:
            raise ConfigurationError(f"VM {vm_id!r} has no admission grant") from None
        self._refund(host, watts)
        return watts

    # ------------------------------------------------------------------
    # Overclock grants (headroom sold as frequency)
    # ------------------------------------------------------------------
    def grant_overclock(
        self, host: str, extra_watts: float, time_s: float = 0.0
    ) -> GrantDecision:
        """Grant one host's overclock uplift against the remaining headroom."""
        if extra_watts <= 0:
            raise ConfigurationError("overclock uplift must be positive watts")
        if host in self._oc_grants:
            raise ConfigurationError(f"host {host!r} already holds an overclock grant")
        if self.hierarchy.nodes[host].level is not DeliveryLevel.HOST:
            raise ConfigurationError(f"{host!r} is not a host-level node")
        decision = self._check(host, extra_watts)
        if decision.granted:
            self._charge(host, extra_watts)
            self._oc_grants[host] = extra_watts
        else:
            self.overclocks_denied += 1
            self._deny(time_s, "overclock", host, decision)
        return decision

    def revoke_overclock(self, host: str) -> float:
        """Return one host's overclock watts to every level; returns them."""
        try:
            watts = self._oc_grants.pop(host)
        except KeyError:
            raise ConfigurationError(f"host {host!r} holds no overclock grant") from None
        self._refund(host, watts)
        return watts

    def revoke_all_overclocks(self) -> list[str]:
        """Emergency sweep: revoke every grant; returns the hosts, sorted."""
        hosts = sorted(self._oc_grants)
        for host in hosts:
            self.revoke_overclock(host)
        return hosts

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------
    def verify_conservation(self) -> None:
        """Raise :class:`PowerBudgetExceeded` if any node is over-charged.

        Holds by construction; exposed so property tests (and paranoid
        callers) can assert it after arbitrary grant/revoke sequences.
        """
        for name, node in self.hierarchy.nodes.items():
            if self._charged[name] > node.budget_watts + 1e-9:
                raise PowerBudgetExceeded(
                    f"{name}: charged {self._charged[name]:.1f} W exceeds "
                    f"oversubscribed budget {node.budget_watts:.1f} W"
                )


__all__ = ["GrantDecision", "PowerBudgetArbiter", "ARBITER_DENIED"]
