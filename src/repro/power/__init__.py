"""Oversubscribed power delivery: the headroom sold twice.

The paper sells *thermal* headroom as frequency (overclocking);
prediction-based oversubscription (Kumbhare et al.) sells *electrical*
headroom as packed VMs. An immersion-cooled, overclocked fleet sells
the same headroom twice, and the power-delivery hierarchy is where the
two sales collide: every host, rack PDU, row, UPS, and substation
carries a rated limit, an oversubscribed budget, and a breaker with an
inverse-time trip curve.

This package models the collision and the machinery that survives it:

* :mod:`repro.power.tree` — the five-level delivery hierarchy, breaker
  trip curves, rollups, and headroom queries;
* :mod:`repro.power.predictor` — per-VM peak-power prediction from
  workload-class priors and online percentile estimation;
* :mod:`repro.power.arbiter` — the single gatekeeper clearing VM
  admissions and overclock grants against every tree level;
* :mod:`repro.power.ladder` — the staged power-emergency ladder (cap →
  revoke → shed → isolate) on the shared
  :class:`~repro.emergency.StagedLadder` machinery.

The vectorized enforcement path over the same tree lives in
:mod:`repro.vector.rollup`; the crisis experiment racing naive vs
arbitrated fleets is :mod:`repro.experiments.oversubscription_crisis`.
"""

from .arbiter import ARBITER_DENIED, GrantDecision, PowerBudgetArbiter
from .ladder import (
    POWER_ESCALATE,
    POWER_RELAX,
    PowerEmergencyCoordinator,
    PowerEmergencyStage,
    PowerLadderConfig,
)
from .predictor import DEFAULT_PRIORS, PeakPowerPredictor, WorkloadClassPrior
from .tree import (
    Breaker,
    BreakerCurve,
    DeliveryLevel,
    DeliveryNode,
    PowerDeliveryHierarchy,
    build_uniform_hierarchy,
)

__all__ = [
    "ARBITER_DENIED",
    "Breaker",
    "BreakerCurve",
    "DEFAULT_PRIORS",
    "DeliveryLevel",
    "DeliveryNode",
    "GrantDecision",
    "POWER_ESCALATE",
    "POWER_RELAX",
    "PeakPowerPredictor",
    "PowerBudgetArbiter",
    "PowerDeliveryHierarchy",
    "PowerEmergencyCoordinator",
    "PowerEmergencyStage",
    "PowerLadderConfig",
    "WorkloadClassPrior",
    "build_uniform_hierarchy",
]
