"""The power-emergency ladder: staged ride-through of a budget breach.

When metered draw eats into the safety margin of *any* node in the
delivery tree — because the predictor under-predicted, or a surge piled
real draw on top of honest predictions — breakers start accumulating
heat and the fleet is minutes from losing a whole subtree. The
:class:`PowerEmergencyCoordinator` walks the same hysteretic
:class:`~repro.emergency.StagedLadder` the thermal coordinator uses,
but over an *electrical* margin: the worst headroom fraction
``min (rated − draw) / rated`` across the tree.

The rungs, cheapest first:

1. **CAP_LOW_PRIORITY** — power-cap the low-priority hosts (their SLA
   tolerates the frequency loss; every watt saved cools breakers).
2. **REVOKE_OVERCLOCK** — revoke every overclock grant fleet-wide,
   issued at *emergency* priority so an open circuit breaker on the
   command path cannot veto the revoke.
3. **SHED_LOAD** — suspend the lowest-priority VMs; their granted watts
   return to every level of the tree at once.
4. **ISOLATE** — controlled power-off of the subtree feeding the
   overloaded node, trading those hosts for the rest of the row.

Escalation is immediate (a surge can cross several rungs in one tick);
relaxation requires the headroom fraction to clear the current rung's
threshold plus hysteresis for consecutive clean ticks, and the ladder
re-arms (overclocks may be granted again) only after walking all the
way back to NORMAL.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING

from ..emergency import StagedLadder
from ..errors import ConfigurationError
from ..telemetry.counters import PowerEmergencyCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.timeline import FaultTimeline
    from ..reliability.safety import SafetySupervisor

#: Timeline kind recorded when the power ladder steps up one rung.
POWER_ESCALATE = "power-escalate"

#: Timeline kind recorded when the power ladder steps down one rung.
POWER_RELAX = "power-relax"


class PowerEmergencyStage(IntEnum):
    """Power ladder rungs, ordered by severity (and customer cost)."""

    NORMAL = 0
    CAP_LOW_PRIORITY = 1
    REVOKE_OVERCLOCK = 2
    SHED_LOAD = 3
    ISOLATE = 4


@dataclass(frozen=True)
class PowerLadderConfig:
    """Headroom-fraction thresholds and hysteresis of the power ladder.

    Margins are the tree's worst headroom fraction,
    ``min (rated − draw) / rated`` over every node — dimensionless, so
    the same config covers a 2-rack testbed and a 100k-host region. A
    stage engages when the fraction falls to its threshold or below;
    thresholds must therefore be strictly decreasing down the ladder.
    """

    #: Headroom fraction at or below which low-priority hosts are capped.
    cap_fraction: float = 0.12
    #: Headroom fraction at or below which overclocks are revoked.
    revoke_fraction: float = 0.08
    #: Headroom fraction at or below which load shedding begins.
    shed_fraction: float = 0.04
    #: Headroom fraction at or below which the subtree is isolated.
    isolate_fraction: float = 0.015
    #: Extra fraction (beyond the current rung's threshold) required
    #: before a tick counts as clean for relaxation.
    hysteresis_fraction: float = 0.03
    #: Consecutive clean ticks before the ladder steps down one rung.
    relax_clean_ticks: int = 3

    def __post_init__(self) -> None:
        rungs = (
            self.cap_fraction,
            self.revoke_fraction,
            self.shed_fraction,
            self.isolate_fraction,
        )
        if any(lower >= upper for upper, lower in zip(rungs, rungs[1:])):
            raise ConfigurationError(
                "power ladder fractions must be strictly decreasing "
                "(cap > revoke > shed > isolate)"
            )
        if self.hysteresis_fraction <= 0:
            raise ConfigurationError("hysteresis must be positive")
        if self.relax_clean_ticks < 1:
            raise ConfigurationError("relax_clean_ticks must be at least 1")

    def fraction_for(self, stage: PowerEmergencyStage) -> float:
        """The engage threshold of ``stage`` (not defined for NORMAL)."""
        if stage is PowerEmergencyStage.NORMAL:
            raise ConfigurationError("NORMAL has no engage threshold")
        return {
            PowerEmergencyStage.CAP_LOW_PRIORITY: self.cap_fraction,
            PowerEmergencyStage.REVOKE_OVERCLOCK: self.revoke_fraction,
            PowerEmergencyStage.SHED_LOAD: self.shed_fraction,
            PowerEmergencyStage.ISOLATE: self.isolate_fraction,
        }[stage]


#: Per-stage counter attribute on :class:`PowerEmergencyCounters`.
_STAGE_COUNTER = {
    PowerEmergencyStage.CAP_LOW_PRIORITY: "low_priority_caps",
    PowerEmergencyStage.REVOKE_OVERCLOCK: "overclock_revokes",
    PowerEmergencyStage.SHED_LOAD: "load_sheds",
    PowerEmergencyStage.ISOLATE: "isolations",
}


class PowerEmergencyCoordinator(StagedLadder):
    """Walks the power degradation ladder against the worst headroom.

    Wire stage actions with :meth:`register`, then call :meth:`observe`
    once per control tick with the tree's current worst headroom
    fraction (:meth:`~repro.power.tree.PowerDeliveryHierarchy.worst_headroom_fraction`).
    Mirrors its engaged/relaxed state into the
    :class:`~repro.reliability.safety.SafetySupervisor` so overclock
    grants, recovery boosts, and scale-in stop while any rung holds.
    """

    def __init__(
        self,
        config: PowerLadderConfig | None = None,
        safety: "SafetySupervisor | None" = None,
        timeline: "FaultTimeline | None" = None,
        counters: PowerEmergencyCounters | None = None,
    ) -> None:
        self.config = config if config is not None else PowerLadderConfig()
        super().__init__(
            stages=PowerEmergencyStage,
            thresholds={
                stage: self.config.fraction_for(stage)
                for stage in PowerEmergencyStage
                if stage is not PowerEmergencyStage.NORMAL
            },
            hysteresis=self.config.hysteresis_fraction,
            relax_clean_ticks=self.config.relax_clean_ticks,
            timeline=timeline,
            escalate_kind=POWER_ESCALATE,
            relax_kind=POWER_RELAX,
            margin_format=lambda margin: f"headroom={margin:.3f}",
        )
        self.safety = safety
        self.counters = counters if counters is not None else PowerEmergencyCounters()

    def observe(self, time_s: float, headroom_fraction: float) -> PowerEmergencyStage:
        """Fold one control tick's worst headroom fraction into the ladder."""
        stage = super().observe(time_s, headroom_fraction)
        if self.safety is not None:
            self.safety.observe_facility(
                time_s,
                self.emergency,
                detail=(
                    f"power ladder stage {self.stage.name} "
                    f"headroom={headroom_fraction:.3f}"
                ),
            )
        return stage

    def _on_escalate(self, stage: IntEnum) -> None:
        self.counters.escalations += 1
        counter = _STAGE_COUNTER[PowerEmergencyStage(stage)]
        setattr(self.counters, counter, getattr(self.counters, counter) + 1)

    def _on_relax(self, released: IntEnum) -> None:
        self.counters.relaxations += 1
        if self.stage is PowerEmergencyStage.NORMAL:
            self.counters.rearms += 1

    def _on_tick(self) -> None:
        if self.emergency:
            self.counters.emergency_ticks += 1


__all__ = [
    "POWER_ESCALATE",
    "POWER_RELAX",
    "PowerEmergencyStage",
    "PowerLadderConfig",
    "PowerEmergencyCoordinator",
]
