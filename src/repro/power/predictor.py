"""Per-VM peak-power prediction: class priors + online percentiles.

Prediction-based oversubscription (Kumbhare et al.) admits VMs against a
*predicted* peak rather than the nameplate worst case. The predictor
here mirrors that design at simulation scale:

* **Workload-class priors** — every VM arrives tagged with a workload
  class (the Table IX catalog names double as classes); each class
  carries a prior peak draw per vcore, the cold-start estimate.
* **Online percentile estimation** — metered per-vcore draws observed
  from telemetry (the same counters the auto-scaler reads) accumulate
  in a bounded per-class window; once enough samples exist the
  prediction switches from the prior to the window's P99 (via
  :func:`repro.telemetry.percentiles.percentile`, so the estimate is
  numerically identical to the paper's reporting path).
* **Injectable under-prediction** — the ``power-underprediction``
  :class:`~repro.faults.plan.FaultKind` scales predictions down by a
  fraction, the exact failure mode that makes oversubscription
  dangerous: every consumer (naive admission and the arbiter alike)
  sees optimistic numbers, and only metered enforcement can save the
  breakers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping

from ..errors import ConfigurationError
from ..telemetry.percentiles import percentile


@dataclass(frozen=True)
class WorkloadClassPrior:
    """Cold-start peak-draw estimate for one workload class."""

    name: str
    peak_watts_per_vcore: float

    def __post_init__(self) -> None:
        if self.peak_watts_per_vcore <= 0:
            raise ConfigurationError(
                f"{self.name}: prior peak watts per vcore must be positive"
            )


#: Default priors, loosely following the Table IX bottleneck profiles:
#: core-bound classes pull the most power per vcore, IO-bound the least.
DEFAULT_PRIORS: dict[str, WorkloadClassPrior] = {
    prior.name: prior
    for prior in (
        WorkloadClassPrior("sql", 7.5),
        WorkloadClassPrior("training", 9.0),
        WorkloadClassPrior("key-value", 6.5),
        WorkloadClassPrior("web", 5.5),
        WorkloadClassPrior("batch", 8.0),
    )
}


class PeakPowerPredictor:
    """Predicts a VM's peak draw from its class and metered history."""

    def __init__(
        self,
        priors: Mapping[str, WorkloadClassPrior] | None = None,
        quantile: float = 99.0,
        window: int = 512,
        min_samples: int = 16,
    ) -> None:
        if not 0.0 < quantile <= 100.0:
            raise ConfigurationError("quantile must be in (0, 100]")
        if window < 1:
            raise ConfigurationError("window must be at least 1")
        if min_samples < 1:
            raise ConfigurationError("min_samples must be at least 1")
        self.priors = dict(priors if priors is not None else DEFAULT_PRIORS)
        self.quantile = quantile
        self.min_samples = min_samples
        self._windows: dict[str, deque[float]] = {
            name: deque(maxlen=window) for name in self.priors
        }
        #: Injected under-prediction: predictions scale by (1 − bias).
        self._bias_fraction = 0.0

    # ------------------------------------------------------------------
    # Telemetry ingestion
    # ------------------------------------------------------------------
    def observe(self, workload_class: str, watts_per_vcore: float) -> None:
        """Feed one metered per-vcore draw sample from telemetry."""
        if watts_per_vcore < 0:
            raise ConfigurationError("metered draw cannot be negative")
        window = self._windows.get(workload_class)
        if window is None:
            raise ConfigurationError(
                f"unknown workload class {workload_class!r} "
                f"(knows: {', '.join(sorted(self.priors))})"
            )
        window.append(watts_per_vcore)

    def samples(self, workload_class: str) -> int:
        return len(self._windows[workload_class])

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def peak_watts_per_vcore(self, workload_class: str) -> float:
        """The current estimate: window P-quantile once warm, else prior."""
        prior = self.priors.get(workload_class)
        if prior is None:
            raise ConfigurationError(
                f"unknown workload class {workload_class!r} "
                f"(knows: {', '.join(sorted(self.priors))})"
            )
        window = self._windows[workload_class]
        if len(window) >= self.min_samples:
            estimate = percentile(tuple(window), self.quantile)
        else:
            estimate = prior.peak_watts_per_vcore
        return estimate * (1.0 - self._bias_fraction)

    def predict_vm_peak_watts(self, workload_class: str, vcores: int) -> float:
        """Predicted peak draw of one VM of the given shape."""
        if vcores < 1:
            raise ConfigurationError("a VM needs at least one vcore")
        return self.peak_watts_per_vcore(workload_class) * vcores

    # ------------------------------------------------------------------
    # Fault injection (the power-underprediction kind)
    # ------------------------------------------------------------------
    @property
    def bias_fraction(self) -> float:
        return self._bias_fraction

    def inject_bias(self, fraction: float) -> None:
        """Scale every prediction down by ``fraction`` (0 < f < 1)."""
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(
                f"under-prediction bias must be in (0, 1), got {fraction}"
            )
        self._bias_fraction = fraction

    def clear_bias(self) -> None:
        self._bias_fraction = 0.0


__all__ = ["WorkloadClassPrior", "DEFAULT_PRIORS", "PeakPowerPredictor"]
