"""Server assembly: component power budget and whole-server power model.

Two concrete servers from the paper:

* the **Open Compute blade** in the large tank — 2 × 205 W Skylake
  sockets, 24 DIMMs (120 W), motherboard (26 W), FPGA (30 W), six flash
  drives (72 W), fans (42 W): a 700 W budget (Section III);
* the **small-tank-#1 Xeon W-3175X server** (255 W TDP, 128 GB) whose
  measured power traces appear in Figures 9, 12 and 16.

:class:`ServerPowerModel` produces whole-server watts from a Table VII
frequency configuration plus per-core activity — it is the simulated
"wall power meter" behind every power bar in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .configs import B2, FrequencyConfig
from .cpu import CPUSpec, XEON_8168, XEON_8180, XEON_W3175X
from .memory import MemorySystem, OCP_MEMORY, SMALL_TANK_MEMORY


@dataclass(frozen=True)
class ServerSpec:
    """Bill of materials and power budget for one server."""

    name: str
    cpu: CPUSpec
    sockets: int
    memory: MemorySystem
    motherboard_watts: float
    fpga_watts: float
    storage_watts: float
    fan_watts: float

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ConfigurationError("a server has at least one socket")

    @property
    def pcores(self) -> int:
        """Physical core count across all sockets."""
        return self.cpu.cores * self.sockets

    def max_power_watts(self, with_fans: bool = True) -> float:
        """Peak power budget (CPUs at TDP, everything else at max)."""
        total = (
            self.cpu.tdp_watts * self.sockets
            + self.memory.power_watts()
            + self.motherboard_watts
            + self.fpga_watts
            + self.storage_watts
        )
        if with_fans:
            total += self.fan_watts
        return total

    def component_budget(self, with_fans: bool = True) -> dict[str, float]:
        """Per-component peak power (the Section III breakdown)."""
        budget = {
            "cpu": self.cpu.tdp_watts * self.sockets,
            "memory": self.memory.power_watts(),
            "motherboard": self.motherboard_watts,
            "fpga": self.fpga_watts,
            "storage": self.storage_watts,
        }
        if with_fans:
            budget["fans"] = self.fan_watts
        return budget

    def overclocked_power_watts(
        self, extra_per_socket_watts: float = 100.0, with_fans: bool = False
    ) -> float:
        """Peak power when overclocked (+100 W per socket per Section IV)."""
        return self.max_power_watts(with_fans) + extra_per_socket_watts * self.sockets


#: The large tank's Open Compute 2-socket blade (the 8168 variant; half
#: the tank used 8180s with the same budget).
OCP_BLADE_8168 = ServerSpec(
    name="OCP blade (2x Xeon 8168)",
    cpu=XEON_8168,
    sockets=2,
    memory=OCP_MEMORY,
    motherboard_watts=26.0,
    fpga_watts=30.0,
    storage_watts=72.0,
    fan_watts=42.0,
)

OCP_BLADE_8180 = ServerSpec(
    name="OCP blade (2x Xeon 8180)",
    cpu=XEON_8180,
    sockets=2,
    memory=OCP_MEMORY,
    motherboard_watts=26.0,
    fpga_watts=30.0,
    storage_watts=72.0,
    fan_watts=42.0,
)

#: Small tank #1's server: single W-3175X, 128 GB, no FPGA, fans removed.
TANK1_SERVER = ServerSpec(
    name="Small tank #1 (Xeon W-3175X)",
    cpu=XEON_W3175X,
    sockets=1,
    memory=SMALL_TANK_MEMORY,
    motherboard_watts=26.0,
    fpga_watts=0.0,
    storage_watts=24.0,
    fan_watts=0.0,
)


@dataclass
class ServerPowerModel:
    """Whole-server power as a function of configuration and activity.

    ``P = idle + Σ_busy-cores core_watts(f, V) + uncore(f_llc) + memory(f_mem)``

    Calibrated against the Figure 12 measurements of the small-tank-#1
    server: B2 with 12 busy pcores averages ≈120 W, 16 busy ≈130 W;
    OC3 ≈160/173 W.
    """

    spec: ServerSpec = field(default_factory=lambda: TANK1_SERVER)
    idle_watts: float = 40.0
    #: Dynamic power of one fully-busy core at B2 (3.4 GHz, 0.90 V).
    core_watts_at_b2: float = 5.4
    uncore_watts_nominal: float = 10.0
    memory_watts_nominal: float = 30.0
    nominal_voltage_v: float = 0.90

    def core_watts(self, config: FrequencyConfig) -> float:
        """Per-busy-core dynamic power under ``config``."""
        voltage = self.nominal_voltage_v + config.voltage_offset_mv / 1000.0
        return (
            self.core_watts_at_b2
            * (voltage / self.nominal_voltage_v) ** 2
            * (config.core_ghz / B2.core_ghz)
        )

    def uncore_watts(self, config: FrequencyConfig) -> float:
        """Uncore/LLC power (quadratic in the uncore clock)."""
        return self.uncore_watts_nominal * (config.llc_ghz / B2.llc_ghz) ** 2

    def memory_watts(self, config: FrequencyConfig) -> float:
        """Memory power (super-linear in the memory clock)."""
        return self.memory_watts_nominal * (config.memory_ghz / B2.memory_ghz) ** 2

    def watts(
        self,
        config: FrequencyConfig,
        busy_cores: float,
        memory_activity: float = 1.0,
    ) -> float:
        """Server power with ``busy_cores`` core-equivalents of activity.

        ``busy_cores`` may be fractional (e.g. 12 cores at 62% busy is
        7.44 core-equivalents). ``memory_activity`` scales the memory
        term for workloads that barely touch DRAM.
        """
        if busy_cores < 0 or busy_cores > self.spec.pcores:
            raise ConfigurationError(
                f"busy_cores must be within [0, {self.spec.pcores}]"
            )
        if not 0.0 <= memory_activity <= 1.0:
            raise ConfigurationError("memory_activity must be within [0, 1]")
        return (
            self.idle_watts
            + busy_cores * self.core_watts(config)
            + self.uncore_watts(config)
            + self.memory_watts(config) * memory_activity
        )


__all__ = [
    "ServerSpec",
    "ServerPowerModel",
    "OCP_BLADE_8168",
    "OCP_BLADE_8180",
    "TANK1_SERVER",
]
