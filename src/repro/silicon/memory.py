"""DRAM DIMM model.

The paper's Open Compute server carries 24 DDR4 DIMMs at 5 W each
(Section III); small-tank servers carry 128 GB. Memory overclocking
(Table VII raises the memory clock from 2.4 to 3.0 GHz) "substantially
increases the power draw" (Section VI-B), which we model with a
super-linear frequency exponent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, FrequencyError


@dataclass(frozen=True)
class DIMMSpec:
    """One DDR4 module."""

    capacity_gb: float = 16.0
    nominal_power_watts: float = 5.0
    nominal_frequency_ghz: float = 2.4
    max_frequency_ghz: float = 3.2
    #: Power ∝ (f/f_nom)^exponent; DRAM I/O power grows super-linearly
    #: with data rate because termination and I/O voltage stress rise.
    power_exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0 or self.nominal_power_watts <= 0:
            raise ConfigurationError("DIMM capacity and power must be positive")

    def power_watts(self, frequency_ghz: float | None = None) -> float:
        """Per-DIMM power at the given clock."""
        frequency = self.nominal_frequency_ghz if frequency_ghz is None else frequency_ghz
        if frequency <= 0:
            raise FrequencyError("memory frequency must be positive")
        if frequency > self.max_frequency_ghz:
            raise FrequencyError(
                f"memory frequency {frequency} GHz exceeds the DIMM maximum "
                f"{self.max_frequency_ghz} GHz"
            )
        return self.nominal_power_watts * (frequency / self.nominal_frequency_ghz) ** self.power_exponent


@dataclass(frozen=True)
class MemorySystem:
    """A bank of identical DIMMs."""

    dimm: DIMMSpec
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("a memory system needs at least one DIMM")

    @property
    def capacity_gb(self) -> float:
        return self.dimm.capacity_gb * self.count

    def power_watts(self, frequency_ghz: float | None = None) -> float:
        """Total memory power at the given clock."""
        return self.dimm.power_watts(frequency_ghz) * self.count

    def bandwidth_scale(self, frequency_ghz: float) -> float:
        """Peak-bandwidth multiplier relative to the nominal clock."""
        if frequency_ghz <= 0:
            raise FrequencyError("memory frequency must be positive")
        return frequency_ghz / self.dimm.nominal_frequency_ghz


#: The 24-DIMM bank in the Open Compute blade (120 W total).
OCP_MEMORY = MemorySystem(dimm=DIMMSpec(capacity_gb=16.0), count=24)

#: The 128 GB bank in the small-tank servers (8 × 16 GB).
SMALL_TANK_MEMORY = MemorySystem(dimm=DIMMSpec(capacity_gb=16.0), count=8)


__all__ = ["DIMMSpec", "MemorySystem", "OCP_MEMORY", "SMALL_TANK_MEMORY"]
