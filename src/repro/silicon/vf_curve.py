"""Voltage–frequency curve.

The paper measured the overclockable Xeon W-3175X's curve experimentally:
"to get from 205 W to 305 W, we would need to increase the voltage from
0.90 V to 0.98 V", buying "23% higher frequency (compared to all-core
turbo)". :class:`VFCurve` interpolates/extrapolates linearly between
anchor points, which matches the near-linear V/F relationship silicon
exhibits over the narrow overclocking window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError, FrequencyError, VoltageError


@dataclass(frozen=True)
class VFPoint:
    """One measured (frequency, voltage) anchor."""

    frequency_ghz: float
    voltage_v: float


class VFCurve:
    """Piecewise-linear voltage as a function of frequency."""

    def __init__(self, points: Sequence[tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ConfigurationError("a V/F curve needs at least two anchor points")
        anchors = [VFPoint(float(f), float(v)) for f, v in points]
        anchors.sort(key=lambda p: p.frequency_ghz)
        for earlier, later in zip(anchors, anchors[1:]):
            if later.frequency_ghz <= earlier.frequency_ghz:
                raise ConfigurationError("V/F anchor frequencies must be distinct")
            if later.voltage_v < earlier.voltage_v:
                raise ConfigurationError("voltage must be non-decreasing in frequency")
        self._anchors = anchors

    @property
    def anchors(self) -> tuple[VFPoint, ...]:
        return tuple(self._anchors)

    @property
    def min_frequency_ghz(self) -> float:
        return self._anchors[0].frequency_ghz

    @property
    def max_frequency_ghz(self) -> float:
        return self._anchors[-1].frequency_ghz

    def voltage_at(self, frequency_ghz: float, offset_mv: float = 0.0) -> float:
        """Voltage required for ``frequency_ghz``, plus a mV offset.

        Frequencies outside the anchor span are extrapolated with the
        slope of the nearest segment (a small extrapolation is exactly
        how overclockers push past the last measured point).
        """
        if frequency_ghz <= 0:
            raise FrequencyError("frequency must be positive")
        anchors = self._anchors
        if frequency_ghz <= anchors[0].frequency_ghz:
            lo, hi = anchors[0], anchors[1]
        elif frequency_ghz >= anchors[-1].frequency_ghz:
            lo, hi = anchors[-2], anchors[-1]
        else:
            lo = anchors[0]
            hi = anchors[-1]
            for earlier, later in zip(anchors, anchors[1:]):
                if earlier.frequency_ghz <= frequency_ghz <= later.frequency_ghz:
                    lo, hi = earlier, later
                    break
        slope = (hi.voltage_v - lo.voltage_v) / (hi.frequency_ghz - lo.frequency_ghz)
        voltage = lo.voltage_v + slope * (frequency_ghz - lo.frequency_ghz)
        voltage += offset_mv / 1000.0
        if voltage <= 0:
            raise VoltageError(
                f"V/F curve produced non-positive voltage at {frequency_ghz} GHz"
            )
        return voltage


def w3175x_vf_curve() -> VFCurve:
    """The paper's experimentally measured Xeon W-3175X curve.

    Anchored at the all-core-turbo point (3.4 GHz, 0.90 V) and the +23%
    overclock point (4.18 GHz, 0.98 V).
    """
    return VFCurve([(3.4, 0.90), (3.4 * 1.23, 0.98)])


__all__ = ["VFCurve", "VFPoint", "w3175x_vf_curve"]
