"""Voltage–frequency curve.

The paper measured the overclockable Xeon W-3175X's curve experimentally:
"to get from 205 W to 305 W, we would need to increase the voltage from
0.90 V to 0.98 V", buying "23% higher frequency (compared to all-core
turbo)". :class:`VFCurve` interpolates/extrapolates linearly between
anchor points, which matches the near-linear V/F relationship silicon
exhibits over the narrow overclocking window.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from ..errors import ConfigurationError, FrequencyError, VoltageError


@dataclass(frozen=True)
class VFPoint:
    """One measured (frequency, voltage) anchor."""

    frequency_ghz: float
    voltage_v: float


class VFCurve:
    """Piecewise-linear voltage as a function of frequency."""

    def __init__(self, points: Sequence[tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ConfigurationError("a V/F curve needs at least two anchor points")
        anchors = [VFPoint(float(f), float(v)) for f, v in points]
        anchors.sort(key=lambda p: p.frequency_ghz)
        for earlier, later in zip(anchors, anchors[1:]):
            if later.frequency_ghz <= earlier.frequency_ghz:
                raise ConfigurationError("V/F anchor frequencies must be distinct")
            if later.voltage_v < earlier.voltage_v:
                raise ConfigurationError("voltage must be non-decreasing in frequency")
        self._anchors = anchors
        # Sweeps evaluate the same handful of (frequency, offset) pairs
        # thousands of times; the anchors never change after init, so a
        # per-instance memo is safe. Bound per instance, not class-wide.
        self._voltage_at_cached = lru_cache(maxsize=4096)(self._voltage_at_uncached)

    def __getstate__(self) -> dict:
        # The lru_cache wrapper cannot cross a process boundary; rebuild
        # it cold on unpickle so curves stay engine-task friendly.
        return {"anchors": self._anchors}

    def __setstate__(self, state: dict) -> None:
        self._anchors = state["anchors"]
        self._voltage_at_cached = lru_cache(maxsize=4096)(self._voltage_at_uncached)

    @property
    def anchors(self) -> tuple[VFPoint, ...]:
        return tuple(self._anchors)

    @property
    def min_frequency_ghz(self) -> float:
        return self._anchors[0].frequency_ghz

    @property
    def max_frequency_ghz(self) -> float:
        return self._anchors[-1].frequency_ghz

    def voltage_at(self, frequency_ghz: float, offset_mv: float = 0.0) -> float:
        """Voltage required for ``frequency_ghz``, plus a mV offset.

        Frequencies outside the anchor span are extrapolated with the
        slope of the nearest segment (a small extrapolation is exactly
        how overclockers push past the last measured point). Results are
        memoized per (frequency, offset) pair.
        """
        return self._voltage_at_cached(float(frequency_ghz), float(offset_mv))

    def voltage_cache_info(self):
        """Hit/miss statistics of the memoized lookup."""
        return self._voltage_at_cached.cache_info()

    def _voltage_at_uncached(self, frequency_ghz: float, offset_mv: float) -> float:
        if frequency_ghz <= 0:
            raise FrequencyError("frequency must be positive")
        anchors = self._anchors
        if frequency_ghz <= anchors[0].frequency_ghz:
            lo, hi = anchors[0], anchors[1]
        elif frequency_ghz >= anchors[-1].frequency_ghz:
            lo, hi = anchors[-2], anchors[-1]
        else:
            lo = anchors[0]
            hi = anchors[-1]
            for earlier, later in zip(anchors, anchors[1:]):
                if earlier.frequency_ghz <= frequency_ghz <= later.frequency_ghz:
                    lo, hi = earlier, later
                    break
        slope = (hi.voltage_v - lo.voltage_v) / (hi.frequency_ghz - lo.frequency_ghz)
        voltage = lo.voltage_v + slope * (frequency_ghz - lo.frequency_ghz)
        voltage += offset_mv / 1000.0
        if voltage <= 0:
            raise VoltageError(
                f"V/F curve produced non-positive voltage at {frequency_ghz} GHz"
            )
        return voltage


def w3175x_vf_curve() -> VFCurve:
    """The paper's experimentally measured Xeon W-3175X curve.

    Anchored at the all-core-turbo point (3.4 GHz, 0.90 V) and the +23%
    overclock point (4.18 GHz, 0.98 V).
    """
    return VFCurve([(3.4, 0.90), (3.4 * 1.23, 0.98)])


__all__ = ["VFCurve", "VFPoint", "w3175x_vf_curve"]
