"""Opportunistic turbo/overclock governor (paper Section IV, Figure 4).

Two observations from the paper drive this module:

* "Our analysis of Azure's production telemetry reveals opportunities to
  operate processors at even higher frequencies (overclocking domain)
  still with air cooling, depending on the number of active cores and
  their utilizations." — :class:`TurboGovernor` computes that
  opportunity: with few active cores the TDP budget concentrates on
  them, buying frequency; 2PIC converts the opportunity into a
  *guarantee* by lifting the thermal ceiling.
* "Such opportunities will diminish in future component generations
  with higher TDP values, as air cooling will reach its limits." —
  :func:`air_cooling_power_ceiling` and :func:`opportunity_vs_tdp`
  quantify the diminishing headroom as TDP grows under a fixed
  air heatsink.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import FREQUENCY_BIN_GHZ
from .cpu import CPU, round_to_bin
from .domains import Domain


@dataclass(frozen=True)
class TurboDecision:
    """The governor's outcome for one (active cores, utilization) state."""

    frequency_ghz: float
    domain: Domain
    power_watts: float
    junction_temp_c: float
    #: True when the frequency exceeds the rated turbo ceiling — only
    #: sustainable under liquid cooling.
    is_overclock: bool


class TurboGovernor:
    """Chooses the highest sustainable frequency for the active cores.

    The budget model: dynamic power scales with the active-core share
    and their utilization; leakage burns at the whole-die junction
    temperature. The governor walks frequency bins downward from the
    ceiling until both the power budget (TDP, or an explicit budget for
    overclockable parts) and the junction limit hold.
    """

    def __init__(
        self,
        cpu: CPU,
        power_budget_watts: float | None = None,
        tj_limit_c: float | None = None,
        allow_overclock: bool | None = None,
        stability_ceiling_ratio: float = 1.23,
    ) -> None:
        if stability_ceiling_ratio < 1.0:
            raise ConfigurationError("stability ceiling ratio must be >= 1")
        self.cpu = cpu
        self.power_budget_watts = (
            cpu.spec.tdp_watts if power_budget_watts is None else power_budget_watts
        )
        self.tj_limit_c = cpu.junction.tj_max_c if tj_limit_c is None else tj_limit_c
        self.allow_overclock = (
            cpu.spec.unlocked if allow_overclock is None else allow_overclock
        )
        #: The paper's stable envelope: +23% over all-core turbo showed
        #: no errors; the governor never ventures past it.
        self.stability_ceiling_ratio = stability_ceiling_ratio

    def _ceiling_ghz(self) -> float:
        domains = self.cpu.spec.domains
        if not self.allow_overclock:
            return domains.turbo_ghz
        stable = round_to_bin(domains.turbo_ghz * self.stability_ceiling_ratio)
        return min(domains.overclock_max_ghz, stable)

    def decide(self, active_cores: int, utilization: float = 1.0) -> TurboDecision:
        """Highest sustainable frequency with ``active_cores`` busy.

        ``utilization`` is the busy fraction of those active cores.
        """
        spec = self.cpu.spec
        if not 1 <= active_cores <= spec.cores:
            raise ConfigurationError(
                f"active_cores must be within [1, {spec.cores}]"
            )
        if not 0.0 < utilization <= 1.0:
            raise ConfigurationError("utilization must be in (0, 1]")
        from .power_model import solve_socket_power

        activity = (active_cores / spec.cores) * utilization
        frequency = self._ceiling_ghz()
        floor = spec.domains.min_ghz
        point = None
        while frequency >= floor:
            voltage = self.cpu.vf_curve.voltage_at(frequency)
            point = solve_socket_power(
                self.cpu.dynamic_model,
                self.cpu.leakage,
                self.cpu.junction,
                frequency,
                voltage,
                activity,
            )
            if (
                point.total_watts <= self.power_budget_watts
                and point.junction_temp_c <= self.tj_limit_c
            ):
                break
            frequency = round_to_bin(frequency - FREQUENCY_BIN_GHZ)
        else:
            # Even the floor violates a limit; report the floor state.
            frequency = floor
            voltage = self.cpu.vf_curve.voltage_at(frequency)
            point = solve_socket_power(
                self.cpu.dynamic_model,
                self.cpu.leakage,
                self.cpu.junction,
                frequency,
                voltage,
                activity,
            )
        return TurboDecision(
            frequency_ghz=frequency,
            domain=spec.domains.classify(frequency),
            power_watts=point.total_watts,
            junction_temp_c=point.junction_temp_c,
            is_overclock=frequency > spec.domains.turbo_ghz,
        )

    def opportunity_curve(self, utilization: float = 1.0) -> list[TurboDecision]:
        """Sustainable frequency for every active-core count (Fig. 4's
        'depending on the number of active cores')."""
        return [
            self.decide(active, utilization)
            for active in range(1, self.cpu.spec.cores + 1)
        ]


def air_cooling_power_ceiling(
    thermal_resistance_c_per_w: float = 0.22,
    reference_temp_c: float = 47.0,
    tj_max_c: float = 105.0,
) -> float:
    """Largest socket power a fixed air heatsink can hold below Tj,max.

    The intro's motivation: "manufacturers expect to produce CPUs and
    GPUs capable of drawing more than 500 W in just a few years" — far
    beyond this ceiling, which is why liquid cooling becomes mandatory.
    """
    headroom = tj_max_c - reference_temp_c
    if headroom <= 0:
        return 0.0
    return headroom / thermal_resistance_c_per_w


def opportunity_vs_tdp(
    tdp_sweep_watts: tuple[float, ...] = (205.0, 305.0, 400.0, 500.0),
    thermal_resistance_c_per_w: float = 0.22,
    reference_temp_c: float = 47.0,
    tj_max_c: float = 105.0,
    leakage_watts: float = 30.0,
) -> list[tuple[float, float]]:
    """All-core frequency headroom of future generations under fixed air.

    Each future part is modelled as a scaled generation: its dynamic
    power at base frequency equals ``TDP − leakage`` (bigger dies, same
    heatsink). The sustainable power is capped by the air-cooling
    junction ceiling, and frequency follows the cube-root law. Entries
    are ``(tdp, frequency_ratio)`` where 1.0 means the part holds its
    base frequency; below 1.0 air cooling cannot even deliver base —
    the paper's "TDP beyond the capabilities of air cooling".
    """
    ceiling = air_cooling_power_ceiling(
        thermal_resistance_c_per_w, reference_temp_c, tj_max_c
    )
    results = []
    for tdp in tdp_sweep_watts:
        if tdp <= leakage_watts:
            raise ConfigurationError("TDP must exceed leakage")
        sustainable = min(tdp, ceiling)
        dynamic_budget = max(0.0, sustainable - leakage_watts)
        ratio = (dynamic_budget / (tdp - leakage_watts)) ** (1.0 / 3.0)
        results.append((tdp, ratio))
    return results


__all__ = [
    "TurboDecision",
    "TurboGovernor",
    "air_cooling_power_ceiling",
    "opportunity_vs_tdp",
]
