"""Processor power model: dynamic switching power plus leakage.

Two components:

* **Dynamic power** follows the classic CMOS relation
  ``P_dyn ∝ C · V² · f``. We carry a calibrated reference point
  (``ref_watts`` at ``ref_frequency``/``ref_voltage``) and scale.
* **Leakage (static) power** grows exponentially with junction
  temperature. The paper measured ~11 W per socket of static savings
  when 2PIC lowered Tj by 17–22 °C on a 205 W Skylake socket; our
  default exponential (30 W at 90 °C with a 43.8 °C e-folding constant)
  reproduces 9.7–11.9 W over that exact range.

Because leakage depends on Tj and Tj depends on total power, the
combined solve in :func:`solve_socket_power` iterates the two-equation
fixed point; it converges in a handful of iterations since the loop gain
(R_th × dLeak/dT) is well below one for every configuration in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..thermal.junction import JunctionModel


@dataclass(frozen=True)
class LeakageModel:
    """Exponential-in-temperature static power: L(T) = L_ref · e^((T−T_ref)/θ)."""

    ref_watts: float = 30.0
    ref_temp_c: float = 90.0
    theta_c: float = 43.8

    def __post_init__(self) -> None:
        if self.ref_watts < 0:
            raise ConfigurationError("leakage reference power must be non-negative")
        if self.theta_c <= 0:
            raise ConfigurationError("leakage e-folding constant must be positive")

    def watts(self, junction_temp_c: float, voltage_v: float = 0.90) -> float:
        """Leakage at the given junction temperature and supply voltage.

        Leakage also scales roughly linearly with voltage over the narrow
        overclocking window (gate leakage is superlinear but the window
        is ±10%), so we include a first-order voltage factor normalized
        at 0.90 V.
        """
        if voltage_v <= 0:
            raise ConfigurationError("voltage must be positive")
        thermal = math.exp((junction_temp_c - self.ref_temp_c) / self.theta_c)
        voltage_factor = voltage_v / 0.90
        return self.ref_watts * thermal * voltage_factor

    def savings_watts(self, hot_temp_c: float, cold_temp_c: float, voltage_v: float = 0.90) -> float:
        """Static power reclaimed by cooling from ``hot`` to ``cold``."""
        return self.watts(hot_temp_c, voltage_v) - self.watts(cold_temp_c, voltage_v)


@dataclass(frozen=True)
class DynamicPowerModel:
    """P_dyn = ref_watts · (V/V_ref)² · (f/f_ref)."""

    ref_watts: float
    ref_frequency_ghz: float
    ref_voltage_v: float

    def __post_init__(self) -> None:
        if min(self.ref_watts, self.ref_frequency_ghz, self.ref_voltage_v) <= 0:
            raise ConfigurationError("dynamic power reference values must be positive")

    def watts(self, frequency_ghz: float, voltage_v: float) -> float:
        """Dynamic power at the given operating point (full activity)."""
        if frequency_ghz <= 0 or voltage_v <= 0:
            raise ConfigurationError("frequency and voltage must be positive")
        return (
            self.ref_watts
            * (voltage_v / self.ref_voltage_v) ** 2
            * (frequency_ghz / self.ref_frequency_ghz)
        )

    def frequency_for_budget(self, budget_watts: float, voltage_scales_with_f: bool = True) -> float:
        """Largest frequency whose dynamic power fits ``budget_watts``.

        With ``voltage_scales_with_f`` the voltage tracks frequency
        (V ∝ f), so power goes as f³ and the answer is a cube root; this
        is the turbo-solve used to reproduce Table III's "+1 frequency
        bin" result. Otherwise voltage is pinned at the reference and
        power is linear in f.
        """
        if budget_watts <= 0:
            raise ConfigurationError("power budget must be positive")
        ratio = budget_watts / self.ref_watts
        exponent = 1.0 / 3.0 if voltage_scales_with_f else 1.0
        return self.ref_frequency_ghz * ratio**exponent


@dataclass(frozen=True)
class SocketOperatingPoint:
    """Converged electro-thermal state of one socket."""

    frequency_ghz: float
    voltage_v: float
    dynamic_watts: float
    leakage_watts: float
    junction_temp_c: float

    @property
    def total_watts(self) -> float:
        return self.dynamic_watts + self.leakage_watts


def solve_socket_power(
    dynamic: DynamicPowerModel,
    leakage: LeakageModel,
    junction: JunctionModel,
    frequency_ghz: float,
    voltage_v: float,
    activity: float = 1.0,
    tolerance_c: float = 0.01,
    max_iterations: int = 100,
) -> SocketOperatingPoint:
    """Solve the coupled power/temperature fixed point for one socket.

    ``activity`` scales the dynamic component (0 = idle, 1 = fully busy);
    leakage always burns at the full junction temperature.
    """
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError("activity must be within [0, 1]")
    dynamic_watts = dynamic.watts(frequency_ghz, voltage_v) * activity
    junction_temp = junction.reference_temp_c
    for _ in range(max_iterations):
        leakage_watts = leakage.watts(junction_temp, voltage_v)
        total = dynamic_watts + leakage_watts
        new_temp = junction.junction_temp_c(total)
        if abs(new_temp - junction_temp) < tolerance_c:
            junction_temp = new_temp
            break
        junction_temp = new_temp
    leakage_watts = leakage.watts(junction_temp, voltage_v)
    return SocketOperatingPoint(
        frequency_ghz=frequency_ghz,
        voltage_v=voltage_v,
        dynamic_watts=dynamic_watts,
        leakage_watts=leakage_watts,
        junction_temp_c=junction.junction_temp_c(dynamic_watts + leakage_watts),
    )


__all__ = [
    "LeakageModel",
    "DynamicPowerModel",
    "SocketOperatingPoint",
    "solve_socket_power",
]
