"""GPU catalog, overclocking configurations (Table VIII), and power model.

Small tank #2 hosts an Nvidia RTX 2080 Ti (250 W TDP). The paper's
Table VIII defines a baseline and three progressively more aggressive
overclocks (OCG1–OCG3) that raise the core clocks, then the memory
clock, then the memory clock again with a higher power limit.

The GPU power model splits the draw into idle + core-dynamic +
memory-dynamic terms calibrated to the paper's VGG measurements
(baseline P99 ≈ 193 W, OCG3 P99 ≈ 231 W), and clamps at the
configuration's power limit (the board's power governor).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, FrequencyError


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU model."""

    name: str
    tdp_watts: float
    base_ghz: float
    turbo_ghz: float
    memory_ghz: float
    memory_gb: float
    nominal_voltage_v: float = 1.0
    idle_watts: float = 30.0
    #: Dynamic core power at (turbo_ghz, nominal voltage), full activity.
    core_dyn_ref_watts: float = 135.0
    #: Dynamic memory power at memory_ghz.
    memory_dyn_ref_watts: float = 28.0
    #: Fraction of a configured voltage offset that materializes as an
    #: average supply-voltage rise. The offset shifts the whole V/F
    #: curve, but the boost governor spends most time mid-curve, so the
    #: time-averaged rise is roughly half the configured offset.
    voltage_sensitivity: float = 0.5

    def __post_init__(self) -> None:
        if self.tdp_watts <= 0:
            raise ConfigurationError(f"{self.name}: TDP must be positive")
        if not 0 < self.base_ghz <= self.turbo_ghz:
            raise ConfigurationError(f"{self.name}: clock range is inconsistent")


RTX_2080TI = GPUSpec(
    name="Nvidia RTX 2080 Ti",
    tdp_watts=250.0,
    base_ghz=1.35,
    turbo_ghz=1.950,
    memory_ghz=6.8,
    memory_gb=11.0,
)


@dataclass(frozen=True)
class GPUConfig:
    """One row of Table VIII."""

    name: str
    power_limit_watts: float
    base_ghz: float
    turbo_ghz: float
    memory_ghz: float
    voltage_offset_mv: float

    def __post_init__(self) -> None:
        if self.power_limit_watts <= 0:
            raise ConfigurationError(f"{self.name}: power limit must be positive")
        if self.turbo_ghz < self.base_ghz:
            raise ConfigurationError(f"{self.name}: turbo below base")

    @property
    def is_overclocked(self) -> bool:
        return self.name != "Base"


GPU_BASE = GPUConfig(
    name="Base", power_limit_watts=250.0, base_ghz=1.35, turbo_ghz=1.950,
    memory_ghz=6.8, voltage_offset_mv=0.0,
)
OCG1 = GPUConfig(
    name="OCG1", power_limit_watts=250.0, base_ghz=1.55, turbo_ghz=2.085,
    memory_ghz=6.8, voltage_offset_mv=0.0,
)
OCG2 = GPUConfig(
    name="OCG2", power_limit_watts=300.0, base_ghz=1.55, turbo_ghz=2.085,
    memory_ghz=8.1, voltage_offset_mv=100.0,
)
OCG3 = GPUConfig(
    name="OCG3", power_limit_watts=300.0, base_ghz=1.55, turbo_ghz=2.085,
    memory_ghz=8.3, voltage_offset_mv=100.0,
)

GPU_CONFIGS: dict[str, GPUConfig] = {
    cfg.name: cfg for cfg in (GPU_BASE, OCG1, OCG2, OCG3)
}


class GPU:
    """An RTX-class GPU operating under a Table VIII configuration."""

    def __init__(self, spec: GPUSpec = RTX_2080TI, config: GPUConfig = GPU_BASE) -> None:
        self.spec = spec
        self.config = config
        self._validate()

    def _validate(self) -> None:
        if self.config.turbo_ghz > self.spec.turbo_ghz * 1.2:
            raise FrequencyError(
                f"{self.config.name}: {self.config.turbo_ghz} GHz is beyond "
                f"{self.spec.name}'s overclocking ceiling"
            )

    def reconfigure(self, config: GPUConfig) -> None:
        """Apply a different Table VIII configuration."""
        self.config = config
        self._validate()

    def voltage_v(self) -> float:
        """Effective (time-averaged) core voltage under the configured offset."""
        effective_offset = self.config.voltage_offset_mv * self.spec.voltage_sensitivity
        return self.spec.nominal_voltage_v + effective_offset / 1000.0

    def power_watts(self, core_activity: float = 1.0, memory_activity: float = 1.0) -> float:
        """Board power at the given activity factors, clamped at the limit."""
        if not 0.0 <= core_activity <= 1.0 or not 0.0 <= memory_activity <= 1.0:
            raise ConfigurationError("activity factors must be within [0, 1]")
        voltage_factor = (self.voltage_v() / self.spec.nominal_voltage_v) ** 2
        core = (
            self.spec.core_dyn_ref_watts
            * (self.config.turbo_ghz / self.spec.turbo_ghz)
            * voltage_factor
            * core_activity
        )
        memory = (
            self.spec.memory_dyn_ref_watts
            * (self.config.memory_ghz / self.spec.memory_ghz)
            * memory_activity
        )
        return min(self.spec.idle_watts + core + memory, self.config.power_limit_watts)


__all__ = [
    "GPUSpec",
    "GPU",
    "GPUConfig",
    "RTX_2080TI",
    "GPU_BASE",
    "OCG1",
    "OCG2",
    "OCG3",
    "GPU_CONFIGS",
]
