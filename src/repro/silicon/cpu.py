"""CPU catalog and electro-thermal CPU model.

The catalog carries the four processors the paper's prototypes use:

* **Xeon Platinum 8168** (24-core, 205 W) and **8180** (28-core, 205 W) —
  the locked server parts in the large tank, used for the Table III
  thermal characterization;
* **Xeon W-3175X** (28-core, 255 W, unlocked) — small tank #1, the
  overclocking workhorse behind Tables V/VII and Figures 9–16;
* **Core i9-9900K** (8-core, 95 W, unlocked) — small tank #2's host CPU
  for the GPU experiments.

:class:`CPU` composes a spec with a junction model and solves for the
TDP-limited all-core turbo frequency; the paper's "+1 frequency bin in
2PIC" result (Table III) falls out of the leakage reclaimed at the lower
junction temperature.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, FrequencyError
from ..thermal.chamber import ThermalChamber
from ..thermal.fluids import DielectricFluid
from ..thermal.junction import BECPlacement, JunctionModel, immersion_junction_model
from ..units import FREQUENCY_BIN_GHZ
from .domains import OperatingDomains
from .power_model import (
    DynamicPowerModel,
    LeakageModel,
    SocketOperatingPoint,
    solve_socket_power,
)
from .vf_curve import VFCurve, w3175x_vf_curve


@dataclass(frozen=True)
class CPUSpec:
    """Static description of a processor model."""

    name: str
    cores: int
    tdp_watts: float
    domains: OperatingDomains
    #: All-core turbo measured in the air-cooled baseline; the dynamic
    #: power model is calibrated at this point.
    allcore_turbo_air_ghz: float
    unlocked: bool
    #: Junction-to-air resistance measured in the thermal chamber (°C/W).
    air_thermal_resistance: float
    #: BEC placement used when the part is immersed (Table III).
    immersion_bec: BECPlacement
    nominal_voltage_v: float = 0.90
    die_area_cm2: float = 6.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"{self.name}: cores must be >= 1")
        if self.tdp_watts <= 0:
            raise ConfigurationError(f"{self.name}: TDP must be positive")


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
XEON_8168 = CPUSpec(
    name="Xeon Platinum 8168",
    cores=24,
    tdp_watts=205.0,
    domains=OperatingDomains(min_ghz=1.2, base_ghz=2.7, turbo_ghz=3.7, overclock_max_ghz=3.7),
    allcore_turbo_air_ghz=3.1,
    unlocked=False,
    air_thermal_resistance=0.22,
    immersion_bec=BECPlacement.COPPER_PLATE,
)

XEON_8180 = CPUSpec(
    name="Xeon Platinum 8180",
    cores=28,
    tdp_watts=205.0,
    domains=OperatingDomains(min_ghz=1.2, base_ghz=2.5, turbo_ghz=3.8, overclock_max_ghz=3.8),
    allcore_turbo_air_ghz=2.6,
    unlocked=False,
    air_thermal_resistance=0.21,
    immersion_bec=BECPlacement.CPU_IHS,
)

XEON_W3175X = CPUSpec(
    name="Xeon W-3175X",
    cores=28,
    tdp_watts=255.0,
    # All-core turbo 3.4 GHz (config B2); the overclocking ceiling of
    # 4.5 GHz is where the paper's prototypes became unstable.
    domains=OperatingDomains(min_ghz=1.2, base_ghz=3.1, turbo_ghz=3.4, overclock_max_ghz=4.5),
    allcore_turbo_air_ghz=3.4,
    unlocked=True,
    air_thermal_resistance=0.20,
    immersion_bec=BECPlacement.CPU_IHS,
)

CORE_I9900K = CPUSpec(
    name="Core i9-9900K",
    cores=8,
    tdp_watts=95.0,
    domains=OperatingDomains(min_ghz=0.8, base_ghz=3.6, turbo_ghz=4.7, overclock_max_ghz=5.1),
    allcore_turbo_air_ghz=4.7,
    unlocked=True,
    air_thermal_resistance=0.35,
    immersion_bec=BECPlacement.CPU_IHS,
)

CPU_CATALOG: dict[str, CPUSpec] = {
    spec.name: spec for spec in (XEON_8168, XEON_8180, XEON_W3175X, CORE_I9900K)
}


def round_to_bin(frequency_ghz: float, bin_ghz: float = FREQUENCY_BIN_GHZ) -> float:
    """Round a frequency to the nearest hardware bin (100 MHz).

    The result is quantized to 4 decimals so repeated bin arithmetic
    cannot accumulate float dust (3.4000000000000004 must compare equal
    to the 3.4 GHz domain boundary).
    """
    return round(round(frequency_ghz / bin_ghz) * bin_ghz, 4)


class CPU:
    """A processor operating under a specific cooling solution."""

    def __init__(
        self,
        spec: CPUSpec,
        junction: JunctionModel,
        leakage: LeakageModel | None = None,
        vf_curve: VFCurve | None = None,
    ) -> None:
        self.spec = spec
        self.junction = junction
        self.leakage = leakage if leakage is not None else LeakageModel()
        if vf_curve is not None:
            self.vf_curve = vf_curve
        elif spec.name == XEON_W3175X.name:
            self.vf_curve = w3175x_vf_curve()
        else:
            # Locked parts: flat-ish curve around nominal voltage through
            # the rated range.
            self.vf_curve = VFCurve(
                [
                    (spec.domains.min_ghz, spec.nominal_voltage_v - 0.15),
                    (spec.domains.turbo_ghz, spec.nominal_voltage_v),
                ]
            )
        self._dynamic = self._calibrate_dynamic_model()

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def _calibrate_dynamic_model(self) -> DynamicPowerModel:
        """Anchor dynamic power so the air-cooled part sustains its
        measured all-core turbo exactly at TDP."""
        chamber = ThermalChamber()
        air_junction = chamber.junction_model(self.spec.air_thermal_resistance)
        tj_at_tdp = air_junction.junction_temp_c(self.spec.tdp_watts)
        leak = self.leakage.watts(tj_at_tdp, self.spec.nominal_voltage_v)
        dynamic_budget = self.spec.tdp_watts - leak
        if dynamic_budget <= 0:
            raise ConfigurationError(
                f"{self.spec.name}: leakage exceeds TDP in calibration"
            )
        return DynamicPowerModel(
            ref_watts=dynamic_budget,
            ref_frequency_ghz=self.spec.allcore_turbo_air_ghz,
            ref_voltage_v=self.spec.nominal_voltage_v,
        )

    @property
    def dynamic_model(self) -> DynamicPowerModel:
        return self._dynamic

    # ------------------------------------------------------------------
    # Operating points
    # ------------------------------------------------------------------
    def allcore_turbo_ghz(self, power_budget_watts: float | None = None) -> float:
        """TDP-limited all-core turbo under this CPU's cooling.

        Reproduces Table III: cooler junctions leak less, freeing dynamic
        budget, which buys frequency bins. The result is clamped to the
        part's rated turbo ceiling (locked parts cannot exceed it).
        """
        budget = self.spec.tdp_watts if power_budget_watts is None else power_budget_watts
        tj = self.junction.junction_temp_c(budget)
        leak = self.leakage.watts(tj, self.spec.nominal_voltage_v)
        dynamic_budget = budget - leak
        if dynamic_budget <= 0:
            return self.spec.domains.min_ghz
        frequency = self._dynamic.frequency_for_budget(dynamic_budget)
        frequency = round_to_bin(frequency)
        return min(frequency, self.spec.domains.turbo_ghz)

    def operating_point(
        self, frequency_ghz: float, voltage_offset_mv: float = 0.0, activity: float = 1.0
    ) -> SocketOperatingPoint:
        """Converged power/thermal state at an explicit frequency.

        Raises :class:`FrequencyError` outside the operating domains and
        for overclocked frequencies on locked parts.
        """
        domain = self.spec.domains.validate(frequency_ghz)
        if not self.spec.unlocked and frequency_ghz > self.spec.domains.turbo_ghz:
            raise FrequencyError(
                f"{self.spec.name} is locked; cannot exceed "
                f"{self.spec.domains.turbo_ghz} GHz"
            )
        del domain
        voltage = self.vf_curve.voltage_at(frequency_ghz, voltage_offset_mv)
        return solve_socket_power(
            self._dynamic, self.leakage, self.junction, frequency_ghz, voltage, activity
        )

    def static_power_savings_vs(self, hotter: "CPU", power_watts: float | None = None) -> float:
        """Leakage saved by this (cooler) CPU vs ``hotter`` at equal power."""
        power = self.spec.tdp_watts if power_watts is None else power_watts
        hot_tj = hotter.junction.junction_temp_c(power)
        cold_tj = self.junction.junction_temp_c(power)
        return self.leakage.savings_watts(hot_tj, cold_tj, self.spec.nominal_voltage_v)


def air_cooled_cpu(spec: CPUSpec, chamber: ThermalChamber | None = None) -> CPU:
    """Build a CPU cooled by the (paper-default) thermal chamber."""
    chamber = chamber if chamber is not None else ThermalChamber()
    return CPU(spec, chamber.junction_model(spec.air_thermal_resistance))


def immersed_cpu(spec: CPUSpec, fluid: DielectricFluid) -> CPU:
    """Build a CPU submerged in a 2PIC pool of ``fluid``."""
    return CPU(spec, immersion_junction_model(fluid, bec=spec.immersion_bec))


__all__ = [
    "CPUSpec",
    "CPU",
    "XEON_8168",
    "XEON_8180",
    "XEON_W3175X",
    "CORE_I9900K",
    "CPU_CATALOG",
    "round_to_bin",
    "air_cooled_cpu",
    "immersed_cpu",
]
