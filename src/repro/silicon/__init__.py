"""Silicon substrate: CPUs, GPUs, memory, servers, and operating points.

Implements the paper's Section IV characterization machinery — operating
domains (Fig. 4), the measured W-3175X voltage/frequency curve, dynamic
and leakage power models, the Table III turbo solve, and the Table VII /
Table VIII experimental configurations.
"""

from .configs import (
    B1,
    B2,
    B3,
    B4,
    CONFIG_ORDER,
    FREQUENCY_CONFIGS,
    OC1,
    OC2,
    OC3,
    FrequencyConfig,
    config_by_name,
)
from .cpu import (
    CORE_I9900K,
    CPU,
    CPU_CATALOG,
    CPUSpec,
    XEON_8168,
    XEON_8180,
    XEON_W3175X,
    air_cooled_cpu,
    immersed_cpu,
    round_to_bin,
)
from .domains import Domain, OperatingDomains
from .gpu import (
    GPU,
    GPU_BASE,
    GPU_CONFIGS,
    GPUConfig,
    GPUSpec,
    OCG1,
    OCG2,
    OCG3,
    RTX_2080TI,
)
from .memory import DIMMSpec, MemorySystem, OCP_MEMORY, SMALL_TANK_MEMORY
from .power_model import (
    DynamicPowerModel,
    LeakageModel,
    SocketOperatingPoint,
    solve_socket_power,
)
from .turbo import (
    TurboDecision,
    TurboGovernor,
    air_cooling_power_ceiling,
    opportunity_vs_tdp,
)
from .server import (
    OCP_BLADE_8168,
    OCP_BLADE_8180,
    ServerPowerModel,
    ServerSpec,
    TANK1_SERVER,
)
from .vf_curve import VFCurve, VFPoint, w3175x_vf_curve

__all__ = [
    "TurboDecision",
    "TurboGovernor",
    "air_cooling_power_ceiling",
    "opportunity_vs_tdp",
    "FrequencyConfig",
    "B1",
    "B2",
    "B3",
    "B4",
    "OC1",
    "OC2",
    "OC3",
    "FREQUENCY_CONFIGS",
    "CONFIG_ORDER",
    "config_by_name",
    "CPU",
    "CPUSpec",
    "CPU_CATALOG",
    "XEON_8168",
    "XEON_8180",
    "XEON_W3175X",
    "CORE_I9900K",
    "air_cooled_cpu",
    "immersed_cpu",
    "round_to_bin",
    "Domain",
    "OperatingDomains",
    "GPU",
    "GPUSpec",
    "GPUConfig",
    "RTX_2080TI",
    "GPU_BASE",
    "OCG1",
    "OCG2",
    "OCG3",
    "GPU_CONFIGS",
    "DIMMSpec",
    "MemorySystem",
    "OCP_MEMORY",
    "SMALL_TANK_MEMORY",
    "DynamicPowerModel",
    "LeakageModel",
    "SocketOperatingPoint",
    "solve_socket_power",
    "ServerSpec",
    "ServerPowerModel",
    "OCP_BLADE_8168",
    "OCP_BLADE_8180",
    "TANK1_SERVER",
    "VFCurve",
    "VFPoint",
    "w3175x_vf_curve",
]
