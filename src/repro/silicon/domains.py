"""Processor operating-frequency domains (paper Figure 4).

Manufacturers define a *guaranteed* range (min to base frequency), a
*turbo* range that is entered opportunistically when thermal and power
budgets permit, and — beyond the rated envelope — an *overclocking*
domain. Past the overclocking ceiling lies the non-operating domain,
where the part crashes or is damaged.

The paper's key observation is that air cooling only reaches the turbo
domain reliably, while 2PIC provides *guaranteed* overclocking: the
whole overclocking domain becomes sustainable, irrespective of
utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError, FrequencyError


class Domain(Enum):
    """Which Figure 4 band a frequency falls into."""

    GUARANTEED = "guaranteed"
    TURBO = "turbo"
    OVERCLOCKING = "overclocking"
    NON_OPERATING = "non-operating"


@dataclass(frozen=True)
class OperatingDomains:
    """Frequency band boundaries for one processor, in GHz."""

    min_ghz: float
    base_ghz: float
    turbo_ghz: float
    overclock_max_ghz: float

    def __post_init__(self) -> None:
        if not self.min_ghz <= self.base_ghz <= self.turbo_ghz <= self.overclock_max_ghz:
            raise ConfigurationError(
                "domain boundaries must satisfy min <= base <= turbo <= overclock_max"
            )
        if self.min_ghz <= 0:
            raise ConfigurationError("minimum frequency must be positive")

    def classify(self, frequency_ghz: float) -> Domain:
        """Return the band containing ``frequency_ghz``.

        Frequencies below ``min_ghz`` and above ``overclock_max_ghz`` are
        both non-operating (the part will not run there).
        """
        if frequency_ghz < self.min_ghz or frequency_ghz > self.overclock_max_ghz:
            return Domain.NON_OPERATING
        if frequency_ghz <= self.base_ghz:
            return Domain.GUARANTEED
        if frequency_ghz <= self.turbo_ghz:
            return Domain.TURBO
        return Domain.OVERCLOCKING

    def validate(self, frequency_ghz: float) -> Domain:
        """Like :meth:`classify` but raises for non-operating frequencies."""
        domain = self.classify(frequency_ghz)
        if domain is Domain.NON_OPERATING:
            raise FrequencyError(
                f"{frequency_ghz:.2f} GHz is outside the operating range "
                f"[{self.min_ghz:.2f}, {self.overclock_max_ghz:.2f}] GHz"
            )
        return domain

    @property
    def overclock_headroom_fraction(self) -> float:
        """Fractional frequency gain of max overclock over turbo."""
        return self.overclock_max_ghz / self.turbo_ghz - 1.0

    def is_overclocked(self, frequency_ghz: float) -> bool:
        """True when ``frequency_ghz`` is beyond the rated turbo ceiling."""
        return self.validate(frequency_ghz) is Domain.OVERCLOCKING


__all__ = ["Domain", "OperatingDomains"]
