"""Experimental frequency configurations (paper Table VII).

Seven configurations of small tank #1's Xeon W-3175X, overclocking the
core, the uncore (last-level cache), and system memory independently:

* **B1** — base frequency, turbo disabled;
* **B2** — turbo enabled (the paper expects this to be "the
  configuration of most datacenters today");
* **B3/B4** — uncore then memory overclocked on top of B2;
* **OC1–OC3** — 4.1 GHz core overclock (+50 mV) with progressively
  overclocked uncore and memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FrequencyConfig:
    """One row of Table VII."""

    name: str
    core_ghz: float
    voltage_offset_mv: float
    #: None means "not applicable" (explicit overclock pins the clock);
    #: True/False is whether opportunistic turbo is enabled.
    turbo_enabled: bool | None
    llc_ghz: float
    memory_ghz: float

    def __post_init__(self) -> None:
        if min(self.core_ghz, self.llc_ghz, self.memory_ghz) <= 0:
            raise ConfigurationError(f"{self.name}: frequencies must be positive")

    @property
    def is_overclocked(self) -> bool:
        """True for the OC rows (explicitly pinned beyond turbo)."""
        return self.turbo_enabled is None

    def component_frequencies(self) -> dict[str, float]:
        """Frequencies keyed by the component names the workload models use."""
        return {"core": self.core_ghz, "llc": self.llc_ghz, "memory": self.memory_ghz}

    def speedups_over(self, baseline: "FrequencyConfig") -> dict[str, float]:
        """Per-component clock ratios relative to ``baseline``."""
        return {
            "core": self.core_ghz / baseline.core_ghz,
            "llc": self.llc_ghz / baseline.llc_ghz,
            "memory": self.memory_ghz / baseline.memory_ghz,
        }


B1 = FrequencyConfig("B1", core_ghz=3.1, voltage_offset_mv=0.0, turbo_enabled=False,
                     llc_ghz=2.4, memory_ghz=2.4)
B2 = FrequencyConfig("B2", core_ghz=3.4, voltage_offset_mv=0.0, turbo_enabled=True,
                     llc_ghz=2.4, memory_ghz=2.4)
B3 = FrequencyConfig("B3", core_ghz=3.4, voltage_offset_mv=0.0, turbo_enabled=True,
                     llc_ghz=2.8, memory_ghz=2.4)
B4 = FrequencyConfig("B4", core_ghz=3.4, voltage_offset_mv=0.0, turbo_enabled=True,
                     llc_ghz=2.8, memory_ghz=3.0)
OC1 = FrequencyConfig("OC1", core_ghz=4.1, voltage_offset_mv=50.0, turbo_enabled=None,
                      llc_ghz=2.4, memory_ghz=2.4)
OC2 = FrequencyConfig("OC2", core_ghz=4.1, voltage_offset_mv=50.0, turbo_enabled=None,
                      llc_ghz=2.8, memory_ghz=2.4)
OC3 = FrequencyConfig("OC3", core_ghz=4.1, voltage_offset_mv=50.0, turbo_enabled=None,
                      llc_ghz=2.8, memory_ghz=3.0)

FREQUENCY_CONFIGS: dict[str, FrequencyConfig] = {
    cfg.name: cfg for cfg in (B1, B2, B3, B4, OC1, OC2, OC3)
}

#: The order the paper plots them in (Figures 9–10).
CONFIG_ORDER: tuple[str, ...] = ("B1", "B2", "B3", "B4", "OC1", "OC2", "OC3")


def config_by_name(name: str) -> FrequencyConfig:
    """Look up a Table VII configuration by name."""
    try:
        return FREQUENCY_CONFIGS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown frequency configuration {name!r}; available: {CONFIG_ORDER}"
        ) from None


__all__ = [
    "FrequencyConfig",
    "B1",
    "B2",
    "B3",
    "B4",
    "OC1",
    "OC2",
    "OC3",
    "FREQUENCY_CONFIGS",
    "CONFIG_ORDER",
    "config_by_name",
]
