"""Per-host changepoint detection on machine-check rates.

A drifting part announces itself as a slow upward creep in its
correctable-error rate long before it crashes or corrupts work — but a
single-window threshold either fires on every Poisson fluctuation or
misses the creep entirely. The standard answer is a one-sided **CUSUM**
on the observed rate: accumulate only the *excess* over an allowed
reference (plus a slack that absorbs noise) and fire when the
accumulated excess-error mass crosses a threshold. The statistic is in
units of *errors above expectation*, so thresholds read as "fire after
~K surprising errors" — directly comparable across window sizes.

:class:`EwmaRateDetector` is the cheaper alternative (exponentially
weighted moving average of the rate with a fixed trip level); the
benchmark suite races both on throughput, and the fleet coordinator
takes either via the shared :meth:`observe` protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass
class DriftDetector:
    """One-sided CUSUM over per-window correctable-error counts.

    ``reference_rate_per_hour`` is the rate considered healthy (the
    background floor plus the envelope's expected ramp contribution);
    ``slack_per_hour`` is the tolerated excess before anything
    accumulates; ``threshold_errors`` is the accumulated excess-error
    mass at which the detector fires. The statistic never goes negative
    (healthy windows drain it to zero, not below), so a long quiet
    stretch cannot bank credit against a future ramp.
    """

    reference_rate_per_hour: float = 0.0
    slack_per_hour: float = 0.25
    threshold_errors: float = 4.0
    statistic: float = field(default=0.0, init=False)
    fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.reference_rate_per_hour < 0:
            raise ConfigurationError("reference rate cannot be negative")
        if self.slack_per_hour < 0:
            raise ConfigurationError("slack cannot be negative")
        if self.threshold_errors <= 0:
            raise ConfigurationError("threshold must be positive")

    def observe(self, window_hours: float, error_count: float) -> bool:
        """Fold one window's error count in; True when the CUSUM fires."""
        if window_hours <= 0:
            raise ConfigurationError("window must be positive")
        if error_count < 0:
            raise ConfigurationError("error count cannot be negative")
        allowed = (self.reference_rate_per_hour + self.slack_per_hour) * window_hours
        self.statistic = max(0.0, self.statistic + (error_count - allowed))
        if self.statistic > self.threshold_errors:
            self.fired += 1
            return True
        return False

    def reset(self) -> None:
        """Drain the statistic (after screening clears or retires a host)."""
        self.statistic = 0.0


@dataclass
class EwmaRateDetector:
    """EWMA of the per-window error rate with a fixed trip level.

    ``half_life_hours`` sets the smoothing horizon; the detector fires
    while the smoothed rate exceeds ``trip_rate_per_hour``. Cheaper than
    CUSUM per observation but slower to catch slow creeps that stay
    below the trip level — kept as the benchmark baseline.
    """

    trip_rate_per_hour: float = 1.0
    half_life_hours: float = 24.0
    statistic: float = field(default=0.0, init=False)
    fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.trip_rate_per_hour <= 0:
            raise ConfigurationError("trip rate must be positive")
        if self.half_life_hours <= 0:
            raise ConfigurationError("half life must be positive")

    def observe(self, window_hours: float, error_count: float) -> bool:
        """Fold one window's error count in; True while above trip level."""
        if window_hours <= 0:
            raise ConfigurationError("window must be positive")
        if error_count < 0:
            raise ConfigurationError("error count cannot be negative")
        rate = error_count / window_hours
        alpha = 1.0 - math.pow(0.5, window_hours / self.half_life_hours)
        self.statistic += alpha * (rate - self.statistic)
        if self.statistic > self.trip_rate_per_hour:
            self.fired += 1
            return True
        return False

    def reset(self) -> None:
        self.statistic = 0.0


__all__ = ["DriftDetector", "EwmaRateDetector"]
