"""Opportunistic margin screening for quarantined or idle hosts.

Quarantine answers "stop hurting the fleet"; screening answers "what is
this part actually good for now?". A screen runs a deterministic
test-vector sweep on a drained host: step the ratio, run the vectors,
watch the MCA counters. We model the sweep as a **bisection on the
part's true error-rate curve** — each probe asks "does ratio *r*
produce more than ``fail_rate_per_hour`` of correctable errors under
the vector load?" and halves the bracket, so ``ceil(log2(span /
resolution))`` probes pin the effective stable margin to within
``resolution``.

Because the error ramp is exponential with e-folding width *w*, the
rate at the bisection's upper estimate can exceed the floor by at most
``fail_rate`` — i.e. the estimate overshoots the true margin by at most
``w * ln(1 + fail_rate / base_rate)``. The published envelope subtracts
``guard_band``, which must dominate that overshoot plus the resolution;
the default parameters keep a ~2× cushion.

Screens take wall-clock time (``duration_hours``) and compete for a
bounded number of screening rigs (``max_concurrent``), so the scheduler
queues hosts FIFO and :meth:`poll` releases finished reports as
simulated time passes — capacity loss from screening is visible, not
free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..errors import ConfigurationError
from .part import SiliconPart


@dataclass(frozen=True)
class ScreenReport:
    """Outcome of one completed screening sweep."""

    host_id: str
    started_hours: float
    completed_hours: float
    #: Bisection estimate of the part's effective stable margin.
    estimated_stable_margin: float
    #: Number of bisection probes the sweep ran.
    probes: int
    #: The envelope handed to the guard: estimate minus the guard band,
    #: floored at 1.0 (stock). A part whose envelope is 1.0 has no
    #: overclock headroom left and is a retirement candidate.
    envelope_ratio: float


class ScreeningScheduler:
    """FIFO scheduler for margin-screening sweeps on drained hosts."""

    def __init__(
        self,
        parts: Mapping[str, SiliconPart],
        duration_hours: float = 4.0,
        resolution: float = 0.005,
        guard_band: float = 0.04,
        fail_rate_per_hour: float = 0.02,
        max_concurrent: int = 1,
        lo_ratio: float = 1.0,
        hi_ratio: float = 1.5,
    ) -> None:
        if duration_hours <= 0:
            raise ConfigurationError("screen duration must be positive")
        if resolution <= 0:
            raise ConfigurationError("resolution must be positive")
        if guard_band < 0:
            raise ConfigurationError("guard band cannot be negative")
        if fail_rate_per_hour <= 0:
            raise ConfigurationError("fail rate must be positive")
        if max_concurrent < 1:
            raise ConfigurationError("need at least one screening slot")
        if not lo_ratio < hi_ratio:
            raise ConfigurationError("need lo_ratio < hi_ratio")
        self._parts = dict(parts)
        self.duration_hours = duration_hours
        self.resolution = resolution
        self.guard_band = guard_band
        self.fail_rate_per_hour = fail_rate_per_hour
        self.max_concurrent = max_concurrent
        self.lo_ratio = lo_ratio
        self.hi_ratio = hi_ratio
        self._queue: list[tuple[str, float]] = []
        self._running: dict[str, tuple[float, float]] = {}
        self.screens_completed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def enqueue(self, host_id: str, time_hours: float) -> None:
        """Queue a drained host for screening (idempotent)."""
        if host_id not in self._parts:
            raise ConfigurationError(f"unknown host {host_id!r}")
        if host_id in self._running or any(h == host_id for h, _ in self._queue):
            return
        self._queue.append((host_id, time_hours))

    def pending(self, host_id: str) -> bool:
        """True while the host is queued or mid-screen."""
        return host_id in self._running or any(h == host_id for h, _ in self._queue)

    def poll(self, time_hours: float) -> list[ScreenReport]:
        """Advance to ``time_hours``: finish due screens, start queued ones.

        Returns reports for screens that completed by ``time_hours``,
        sorted by (completion time, host) for determinism.
        """
        done: list[ScreenReport] = []
        for host_id in sorted(self._running):
            started, due = self._running[host_id]
            if due <= time_hours:
                del self._running[host_id]
                done.append(self._screen(host_id, started, due))
        while self._queue and len(self._running) < self.max_concurrent:
            host_id, _ = self._queue.pop(0)
            self._running[host_id] = (time_hours, time_hours + self.duration_hours)
        done.sort(key=lambda r: (r.completed_hours, r.host_id))
        self.screens_completed += len(done)
        return done

    # ------------------------------------------------------------------
    # The sweep itself
    # ------------------------------------------------------------------
    def _screen(self, host_id: str, started: float, completed: float) -> ScreenReport:
        part = self._parts[host_id]
        lo, hi = self.lo_ratio, self.hi_ratio
        probes = 0
        # The margins are evaluated at screen completion time — the
        # part keeps aging while on the rig.
        if self._fails(part, lo, completed):
            # No headroom at all: even stock-plus-nothing errors.
            estimate = lo
        else:
            while hi - lo > self.resolution:
                mid = 0.5 * (lo + hi)
                probes += 1
                if self._fails(part, mid, completed):
                    hi = mid
                else:
                    lo = mid
            estimate = lo
        envelope = max(1.0, estimate - self.guard_band)
        return ScreenReport(
            host_id=host_id,
            started_hours=started,
            completed_hours=completed,
            estimated_stable_margin=estimate,
            probes=probes,
            envelope_ratio=envelope,
        )

    def _fails(self, part: SiliconPart, ratio: float, time_hours: float) -> bool:
        if part.crashes(ratio, time_hours):
            return True
        rate = part.correctable_error_rate_per_hour(ratio, time_hours)
        return rate - part.nominal.background_error_rate_per_hour > self.fail_rate_per_hour

    def max_overshoot(self, part: SiliconPart) -> float:
        """Worst-case excess of the estimate over the true margin.

        ``w * ln(1 + fail_rate / base_rate) + resolution`` — the sweep
        passes a probe while the ramp is still under ``fail_rate``, and
        bisection adds up to one resolution step. The guard band must
        exceed this for the published envelope to be conservative.
        """
        width = part.nominal.ramp_width
        ratio = self.fail_rate_per_hour / part.nominal.base_error_rate_per_hour
        return width * math.log1p(ratio) + self.resolution


__all__ = ["ScreenReport", "ScreeningScheduler"]
