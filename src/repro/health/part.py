"""Per-part silicon margins and the aging process that erodes them.

The paper characterizes *one* part per tank and reports a fleet-wide
stable envelope (+23% over all-core turbo). Real fleets are populations:
each part lands at a slightly different margin out of the fab (static
process spread), and margins *drift* downward over months of aggressive
operation (process-induced degradation — NBTI/HCI-style aging; cf. the
3.5D-package degradation work in PAPERS.md). A fleet controller that
assumes the characterized envelope forever will eventually operate its
weakest drifted parts beyond their true margin — first correctable
errors, then silent data corruption, then ungraceful crashes.

:class:`SiliconPart` models one host's true (latent) margins as an
offset-and-drift transform over the population
:class:`~repro.reliability.stability.StabilityModel`: evaluating the
part at ratio ``r`` and time ``t`` is exactly evaluating the population
model at the *shifted* ratio ``r - offset + drift(t)``, so every rate
keeps the population model's shape while the margins walk. Between the
(effective) stable margin and the crash margin lies the **SDC band**:
past ``sdc_onset`` of excess ratio, a fraction of the correctable-error
ramp goes undetected as silent corruption.

:func:`sample_fleet` draws a deterministic population from a master
seed via :func:`~repro.sim.random.split_seed` — per-host offsets, a
drift-prone minority, and per-host drift rates/onsets — so two runs of
the same seed see bit-identical silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..reliability.stability import DEFAULT_ERRORS_PER_CRASH, StabilityModel
from ..sim.random import RandomStreams, split_seed


@dataclass
class SiliconPart:
    """One host's true silicon margins, latent to every controller.

    ``margin_offset`` is the static process-spread term (positive =
    better-than-characterized part); ``drift_rate_per_khour`` is the
    stable-margin loss per 1000 hours of operation once
    ``drift_onset_hours`` has passed. ``injected_drift`` is extra margin
    loss applied by the ``silicon-margin-drift`` fault injector.
    """

    host_id: str
    nominal: StabilityModel = field(default_factory=StabilityModel)
    margin_offset: float = 0.0
    drift_rate_per_khour: float = 0.0
    drift_onset_hours: float = 0.0
    injected_drift: float = 0.0
    #: Excess ratio beyond the *effective* stable margin at which silent
    #: corruption begins (the detectable-CE ramp precedes the SDC band).
    sdc_onset: float = 0.02
    #: Silent corruptions per correctable error once inside the band.
    sdc_per_error: float = 0.05

    def __post_init__(self) -> None:
        if self.drift_rate_per_khour < 0:
            raise ConfigurationError("drift rate cannot be negative")
        if self.drift_onset_hours < 0:
            raise ConfigurationError("drift onset cannot be negative")
        if self.sdc_onset <= 0:
            raise ConfigurationError("sdc_onset must be positive")
        if self.sdc_per_error < 0:
            raise ConfigurationError("sdc_per_error cannot be negative")

    # ------------------------------------------------------------------
    # The margin walk
    # ------------------------------------------------------------------
    def drift_at(self, time_hours: float) -> float:
        """Total stable-margin loss (ratio units) at ``time_hours``."""
        if time_hours < 0:
            raise ConfigurationError("time cannot be negative")
        aged = max(0.0, time_hours - self.drift_onset_hours)
        return aged * self.drift_rate_per_khour / 1000.0 + self.injected_drift

    def inject_drift(self, magnitude: float) -> None:
        """Apply an instantaneous extra margin loss (fault injection)."""
        if magnitude <= 0:
            raise ConfigurationError("injected drift must be positive")
        self.injected_drift += magnitude

    def shifted_ratio(self, overclock_ratio: float, time_hours: float) -> float:
        """The population-model ratio equivalent to this part's state."""
        return overclock_ratio - self.margin_offset + self.drift_at(time_hours)

    def effective_stable_margin(self, time_hours: float) -> float:
        """The ratio at which *this* part starts erroring at ``time_hours``."""
        return self.nominal.stable_margin + self.margin_offset - self.drift_at(time_hours)

    def effective_crash_margin(self, time_hours: float) -> float:
        """The ratio at which *this* part crashes outright at ``time_hours``."""
        return self.nominal.crash_margin + self.margin_offset - self.drift_at(time_hours)

    # ------------------------------------------------------------------
    # Rates (the machine-check stream's physics)
    # ------------------------------------------------------------------
    def correctable_error_rate_per_hour(
        self, overclock_ratio: float, time_hours: float
    ) -> float:
        """Expected correctable errors per hour for this part, now."""
        shifted = self.shifted_ratio(overclock_ratio, time_hours)
        if shifted <= 0:
            return self.nominal.background_error_rate_per_hour
        return self.nominal.correctable_error_rate_per_hour(shifted)

    def crash_rate_per_hour(
        self,
        overclock_ratio: float,
        time_hours: float,
        errors_per_crash: float = DEFAULT_ERRORS_PER_CRASH,
    ) -> float:
        """Expected ungraceful crashes per hour for this part, now."""
        shifted = self.shifted_ratio(overclock_ratio, time_hours)
        if shifted <= 0:
            return 0.0
        return self.nominal.crash_rate_per_hour(shifted, errors_per_crash)

    def crashes(self, overclock_ratio: float, time_hours: float) -> bool:
        """True when the part cannot operate at this ratio at all."""
        return self.shifted_ratio(overclock_ratio, time_hours) >= self.nominal.crash_margin

    def sdc_rate_per_hour(self, overclock_ratio: float, time_hours: float) -> float:
        """Expected *silent* corruptions per hour for this part, now.

        Zero until the operating ratio exceeds the effective stable
        margin by ``sdc_onset``; beyond that, a ``sdc_per_error``
        fraction of the correctable-error ramp escapes detection.
        """
        shifted = self.shifted_ratio(overclock_ratio, time_hours)
        if shifted <= self.nominal.stable_margin + self.sdc_onset:
            return 0.0
        ramp = (
            self.nominal.correctable_error_rate_per_hour(shifted)
            - self.nominal.background_error_rate_per_hour
        )
        return ramp * self.sdc_per_error


@dataclass(frozen=True)
class FleetHeterogeneity:
    """How a sampled fleet's silicon spreads out and ages.

    ``offset_sigma`` is the static process spread (normal, clipped to
    ±3σ); a ``drift_prone_fraction`` minority of parts age at a rate
    uniform in ``[drift_rate_lo, drift_rate_hi]`` per 1000 h starting at
    an onset uniform in ``[onset_lo_hours, onset_hi_hours]``; the rest
    do not measurably drift.
    """

    offset_sigma: float = 0.008
    drift_prone_fraction: float = 0.25
    drift_rate_lo: float = 0.06
    drift_rate_hi: float = 0.14
    onset_lo_hours: float = 80.0
    onset_hi_hours: float = 400.0

    def __post_init__(self) -> None:
        if self.offset_sigma < 0:
            raise ConfigurationError("offset sigma cannot be negative")
        if not 0.0 <= self.drift_prone_fraction <= 1.0:
            raise ConfigurationError("drift-prone fraction must be in [0, 1]")
        if not 0 <= self.drift_rate_lo <= self.drift_rate_hi:
            raise ConfigurationError("need 0 <= drift_rate_lo <= drift_rate_hi")
        if not 0 <= self.onset_lo_hours <= self.onset_hi_hours:
            raise ConfigurationError("need 0 <= onset_lo_hours <= onset_hi_hours")


def sample_fleet(
    seed: int,
    host_ids: list[str] | tuple[str, ...],
    heterogeneity: FleetHeterogeneity | None = None,
    nominal: StabilityModel | None = None,
    sdc_onset: float = 0.02,
    sdc_per_error: float = 0.05,
) -> dict[str, SiliconPart]:
    """Deterministically sample one :class:`SiliconPart` per host.

    Each host draws from its own named stream derived from ``(seed,
    host_id)``, so adding hosts never perturbs the silicon of existing
    ones, and the sampled fleet is a pure function of the seed.
    """
    heterogeneity = heterogeneity if heterogeneity is not None else FleetHeterogeneity()
    nominal = nominal if nominal is not None else StabilityModel()
    streams = RandomStreams(split_seed(seed, "silicon-fleet"))
    parts: dict[str, SiliconPart] = {}
    for host_id in sorted(host_ids):
        sigma = heterogeneity.offset_sigma
        offset = 0.0
        generator = streams.get(f"part:{host_id}")
        if sigma > 0:
            offset = float(generator.normal(0.0, sigma))
            offset = max(-3.0 * sigma, min(3.0 * sigma, offset))
        drift_rate = 0.0
        onset = 0.0
        if float(generator.uniform(0.0, 1.0)) < heterogeneity.drift_prone_fraction:
            drift_rate = float(
                generator.uniform(heterogeneity.drift_rate_lo, heterogeneity.drift_rate_hi)
            )
            onset = float(
                generator.uniform(heterogeneity.onset_lo_hours, heterogeneity.onset_hi_hours)
            )
        parts[host_id] = SiliconPart(
            host_id=host_id,
            nominal=nominal,
            margin_offset=offset,
            drift_rate_per_khour=drift_rate,
            drift_onset_hours=onset,
            sdc_onset=sdc_onset,
            sdc_per_error=sdc_per_error,
        )
    return parts


__all__ = ["SiliconPart", "FleetHeterogeneity", "sample_fleet"]
