"""Deterministic machine-check event stream for a fleet of parts.

The paper's guardrail input is the machine-check architecture: cache
correctable-error counters, MCE logs, crash reports. This module turns
each host's latent :class:`~repro.health.part.SiliconPart` physics into
a *sampled* event stream — the only thing a real fleet controller gets
to see. Counts are Poisson in the window's expected rate, crashes are
Bernoulli in the window crash probability, and every draw comes from a
per-host named stream under ``split_seed(seed, "mce-stream")`` so the
stream is a pure function of ``(seed, fleet, operating points)`` and
independent of host iteration order elsewhere in the program.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import ConfigurationError
from ..reliability.stability import DEFAULT_ERRORS_PER_CRASH
from ..sim.random import RandomStreams, split_seed
from .part import SiliconPart


@dataclass(frozen=True)
class MachineCheckEvent:
    """One observed machine-check event.

    ``kind`` is ``"ce"`` (correctable errors, ``count`` of them in the
    window), ``"crash"`` (ungraceful crash), or ``"sdc"`` (silent data
    corruption — *not* visible to detectors, only to the experiment's
    ground-truth accounting and the duplicate-execution audit).
    """

    time_hours: float
    host_id: str
    kind: str
    count: int = 1
    detail: str = ""


class MachineCheckStream:
    """Samples per-host machine-check events window by window.

    :meth:`sample_window` advances one host one observation window and
    returns the events observed in it; :meth:`sample_fleet_window`
    advances every host in sorted order. Cumulative correctable-error
    counters (what a real MCA exposes) are kept per host and can be
    read back via :meth:`cumulative_errors`.
    """

    def __init__(
        self,
        seed: int,
        parts: Mapping[str, SiliconPart],
        errors_per_crash: float = DEFAULT_ERRORS_PER_CRASH,
    ) -> None:
        if seed < 0:
            raise ConfigurationError("seed cannot be negative")
        if errors_per_crash <= 0:
            raise ConfigurationError("errors_per_crash must be positive")
        self._parts = dict(parts)
        self._streams = RandomStreams(split_seed(seed, "mce-stream"))
        self._cumulative: dict[str, int] = {host: 0 for host in self._parts}
        self._injected_bursts: dict[str, int] = {}
        self.errors_per_crash = errors_per_crash

    @property
    def parts(self) -> Mapping[str, SiliconPart]:
        return self._parts

    def cumulative_errors(self, host_id: str) -> int:
        """The host's cumulative correctable-error counter (MCA view)."""
        return self._cumulative[host_id]

    def inject_burst(self, host_id: str, count: int) -> None:
        """Queue an ``mce-burst`` fault: ``count`` spurious correctable
        errors added to the host's next observation window.

        Bursts model non-silicon causes (firmware quirks, a marginal
        DIMM, a cosmic-ray shower) — the detector cannot tell them from
        a real ramp, which is exactly why the ladder needs screening and
        bounded re-arm rather than firing straight to retirement.
        """
        if host_id not in self._parts:
            raise ConfigurationError(f"unknown host {host_id!r}")
        if count <= 0:
            raise ConfigurationError("burst count must be positive")
        self._injected_bursts[host_id] = self._injected_bursts.get(host_id, 0) + count

    def sample_window(
        self,
        host_id: str,
        time_hours: float,
        window_hours: float,
        overclock_ratio: float,
    ) -> list[MachineCheckEvent]:
        """Sample one host's events for ``[time, time + window)``.

        The part's rates are evaluated at the window start — windows are
        short relative to the drift timescale, so the rectangle rule is
        adequate and keeps every draw a pure function of the inputs.
        """
        if window_hours <= 0:
            raise ConfigurationError("window must be positive")
        part = self._parts[host_id]
        events: list[MachineCheckEvent] = []
        end = time_hours + window_hours

        ce_rate = part.correctable_error_rate_per_hour(overclock_ratio, time_hours)
        ce_gen = self._streams.get(f"ce:{host_id}")
        ce_count = int(ce_gen.poisson(ce_rate * window_hours)) if ce_rate > 0 else 0
        burst = self._injected_bursts.pop(host_id, 0)
        ce_count += burst
        if ce_count > 0:
            self._cumulative[host_id] += ce_count
            detail = f"burst={burst}" if burst else ""
            events.append(
                MachineCheckEvent(end, host_id, "ce", count=ce_count, detail=detail)
            )

        sdc_rate = part.sdc_rate_per_hour(overclock_ratio, time_hours)
        sdc_gen = self._streams.get(f"sdc:{host_id}")
        sdc_count = int(sdc_gen.poisson(sdc_rate * window_hours)) if sdc_rate > 0 else 0
        if sdc_count > 0:
            events.append(MachineCheckEvent(end, host_id, "sdc", count=sdc_count))

        crash_gen = self._streams.get(f"crash:{host_id}")
        if part.crashes(overclock_ratio, time_hours):
            events.append(
                MachineCheckEvent(end, host_id, "crash", detail="beyond crash margin")
            )
        else:
            crash_rate = part.crash_rate_per_hour(
                overclock_ratio, time_hours, self.errors_per_crash
            )
            if crash_rate > 0:
                p_crash = -math.expm1(-crash_rate * window_hours)
                if float(crash_gen.uniform(0.0, 1.0)) < p_crash:
                    events.append(MachineCheckEvent(end, host_id, "crash"))

        return events

    def sample_fleet_window(
        self,
        time_hours: float,
        window_hours: float,
        operating_ratios: Mapping[str, float],
        hosts: Iterable[str] | None = None,
    ) -> list[MachineCheckEvent]:
        """Sample every (listed) host for one window, in sorted order.

        ``operating_ratios`` maps host → the ratio it actually ran at
        during the window (quarantined hosts run at 1.0 or are absent).
        """
        chosen = sorted(hosts) if hosts is not None else sorted(self._parts)
        events: list[MachineCheckEvent] = []
        for host_id in chosen:
            ratio = operating_ratios.get(host_id)
            if ratio is None:
                continue
            events.extend(self.sample_window(host_id, time_hours, window_hours, ratio))
        return events


__all__ = ["MachineCheckEvent", "MachineCheckStream"]
