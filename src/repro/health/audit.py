"""Duplicate-execution audit: the only way to *see* silent corruption.

A silently-corrupting part, by definition, raises no machine check —
the MCA stream is blind to it. The paper's characterization found no
silent errors inside the envelope, but a fleet that lets margins drift
cannot assume that forever; the standard production defense is to
**re-execute a sampled fraction of real work on a second host and
compare result signatures**. A mismatch proves one of the two hosts
corrupted the computation; a third tie-break execution identifies the
liar, and the mismatch is charged to that host's health record (which
feeds the drift detector via
:meth:`~repro.health.coordinator.FleetHealthCoordinator.charge_sdc`).

Sampling is **order-independent deterministic**: whether a request is
audited depends only on ``(audit seed, request id)`` via
:func:`~repro.sim.random.split_seed`, never on arrival order or a
shared generator's state — so enabling auditing cannot reshuffle any
other random stream, and replays sample the identical subset.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigurationError
from ..sim.random import split_seed

_SEED_SPAN = float(2**64)


@dataclass
class HostHealthRecord:
    """Audit bookkeeping for one host."""

    host_id: str
    audits: int = 0
    mismatches: int = 0


def result_signature(request_id: str, host_id: str, corrupted: bool) -> str:
    """Signature of one execution's result.

    A clean execution's signature depends only on the request (any
    correct host computes the same bytes); a corrupted one is salted
    with the corrupting host so two independently-corrupting hosts can
    never accidentally agree.
    """
    if corrupted:
        blob = f"corrupt:{host_id}:{request_id}"
    else:
        blob = f"ok:{request_id}"
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class SdcAuditor:
    """Samples requests for duplicate execution and charges mismatches."""

    def __init__(
        self,
        seed: int,
        fraction: float,
        on_mismatch: Callable[[str], None] | None = None,
    ) -> None:
        if seed < 0:
            raise ConfigurationError("seed cannot be negative")
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("audit fraction must be in [0, 1]")
        self._seed = seed
        self.fraction = fraction
        self._on_mismatch = on_mismatch
        self.records: dict[str, HostHealthRecord] = {}
        self.audits = 0
        self.mismatches = 0

    # ------------------------------------------------------------------
    # Deterministic draws
    # ------------------------------------------------------------------
    def _draw(self, key: str) -> float:
        return split_seed(self._seed, key) / _SEED_SPAN

    def should_audit(self, request_id: str) -> bool:
        """True when this request is in the audited sample."""
        if self.fraction <= 0.0:
            return False
        return self._draw(f"sample:{request_id}") < self.fraction

    def corrupts(self, host_id: str, request_id: str, probability: float) -> bool:
        """Deterministic per-(host, request) corruption draw.

        The *execution model* (service core or experiment) owns the
        probability — typically the part's SDC rate folded over the
        request's runtime; the auditor only guarantees the draw is a
        pure function of its inputs.
        """
        if probability <= 0.0:
            return False
        return self._draw(f"corrupt:{host_id}:{request_id}") < probability

    # ------------------------------------------------------------------
    # The audit itself
    # ------------------------------------------------------------------
    def audit(
        self,
        request_id: str,
        primary_host: str,
        secondary_host: str,
        primary_corrupted: bool,
        secondary_corrupted: bool,
    ) -> str | None:
        """Compare the two executions; return the charged host, if any.

        On mismatch the corrupted side is identified (modeling the
        third tie-break execution — the odd signature out loses) and
        charged; both hosts' records log the audit. When *both* sides
        corrupted, both are charged and the primary is returned.
        """
        if primary_host == secondary_host:
            raise ConfigurationError("duplicate execution requires a distinct host")
        self.audits += 1
        for host in (primary_host, secondary_host):
            self._record(host).audits += 1
        primary_sig = result_signature(request_id, primary_host, primary_corrupted)
        secondary_sig = result_signature(request_id, secondary_host, secondary_corrupted)
        if primary_sig == secondary_sig:
            return None
        self.mismatches += 1
        charged: str | None = None
        for host, corrupted in (
            (secondary_host, secondary_corrupted),
            (primary_host, primary_corrupted),
        ):
            if corrupted:
                self._record(host).mismatches += 1
                if self._on_mismatch is not None:
                    self._on_mismatch(host)
                charged = host
        return charged

    def _record(self, host_id: str) -> HostHealthRecord:
        record = self.records.get(host_id)
        if record is None:
            record = HostHealthRecord(host_id=host_id)
            self.records[host_id] = record
        return record


__all__ = ["HostHealthRecord", "SdcAuditor", "result_signature"]
