"""Fleet silicon-health subsystem.

Turns the paper's single-host guardrail ("monitor the rate of change
in correctable errors and back off", Section IV) into a fleet
pipeline: latent per-part margins and aging (:mod:`~repro.health.part`)
→ sampled machine-check telemetry (:mod:`~repro.health.mce`) →
per-host changepoint detection (:mod:`~repro.health.detector`) →
a staged derate/quarantine/screen/retire ladder
(:mod:`~repro.health.coordinator`) → margin re-screening
(:mod:`~repro.health.screening`) and the duplicate-execution SDC audit
(:mod:`~repro.health.audit`). See ``docs/health.md``.
"""

from .audit import HostHealthRecord, SdcAuditor, result_signature
from .coordinator import (
    HEALTH_DEFER,
    HEALTH_ESCALATE,
    HEALTH_RELAX,
    HEALTH_VERDICT,
    FleetHealthCoordinator,
    HealthLadderConfig,
    HealthStage,
)
from .detector import DriftDetector, EwmaRateDetector
from .mce import MachineCheckEvent, MachineCheckStream
from .part import FleetHeterogeneity, SiliconPart, sample_fleet
from .screening import ScreenReport, ScreeningScheduler

__all__ = [
    "HEALTH_DEFER",
    "HEALTH_ESCALATE",
    "HEALTH_RELAX",
    "HEALTH_VERDICT",
    "DriftDetector",
    "EwmaRateDetector",
    "FleetHealthCoordinator",
    "FleetHeterogeneity",
    "HealthLadderConfig",
    "HealthStage",
    "HostHealthRecord",
    "MachineCheckEvent",
    "MachineCheckStream",
    "ScreenReport",
    "ScreeningScheduler",
    "SdcAuditor",
    "SiliconPart",
    "result_signature",
    "sample_fleet",
]
