"""Fleet-wide health ladder: derate → quarantine → screen → verdict.

One :class:`~repro.emergency.ladder.StagedLadder` per host, driven by
that host's :class:`~repro.health.detector.DriftDetector` statistic.
The ladder's scalar margin is the *negated* CUSUM statistic (healthy =
0, sicker = more negative), so the shared hysteresis/escalation
machinery from the thermal and power ladders applies unchanged:

* **DERATE** — cut the host's published overclock envelope in place
  (cheap, reversible, host keeps serving).
* **QUARANTINE** — drain the host's VMs (via the AutoScaler callback)
  and take it out of service.
* **SCREEN** — hand the drained host to the
  :class:`~repro.health.screening.ScreeningScheduler` for a margin
  sweep; the ladder holds here until the verdict arrives.
* **RETIRE** — terminal. Entered when a screen finds no usable
  headroom or when the host has spent its re-arm budget
  (``max_rearms`` reinstatements) — a part that keeps coming back
  sick is not worth a third screening cycle.

A good verdict resets the detector; the margin returns to zero and the
ladder walks back **one rung per** ``relax_clean_ticks`` ticks —
screen released, then quarantine released (the host re-enters service
at its *screened* envelope via the reinstate callback), then derate
released. Reinstatement is deliberately slower than escalation, like
every other ladder in the repo.

Capacity loss is bounded: hosts at QUARANTINE or deeper (excluding
retirees, which are a permanent capacity decision) may not exceed
``max_out_of_service_fraction`` of the fleet. When the budget is
spent, further quarantines are *deferred* — the host is clamped at
DERATE (still serving, at a cut envelope) and counted, so the pressure
is visible in the counters instead of silently sinking the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from ..emergency.ladder import StagedLadder
from ..errors import ConfigurationError
from ..telemetry.counters import HealthCounters
from .detector import DriftDetector
from .mce import MachineCheckEvent
from .screening import ScreeningScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.timeline import FaultTimeline

#: Timeline kind recorded when a host's ladder steps up one rung.
HEALTH_ESCALATE = "health-escalate"

#: Timeline kind recorded when a host's ladder steps down one rung.
HEALTH_RELAX = "health-relax"

#: Timeline kind recorded when the capacity budget defers a quarantine.
HEALTH_DEFER = "health-defer"

#: Timeline kind recorded when a screening verdict lands.
HEALTH_VERDICT = "health-verdict"

#: Margin that pins a host's ladder at RETIRE forever.
_RETIRED_MARGIN = -1e9


class HealthStage(IntEnum):
    """Health ladder rungs, ordered by severity (and capacity cost)."""

    HEALTHY = 0
    DERATE = 1
    QUARANTINE = 2
    SCREEN = 3
    RETIRE = 4


@dataclass(frozen=True)
class HealthLadderConfig:
    """Thresholds and policy of the per-host health ladder.

    Thresholds are in the detector's units — accumulated correctable
    errors above expectation — and must be strictly increasing down
    the ladder (the ladder margin is their negation).
    """

    #: Excess-error mass at which the envelope is cut in place.
    derate_excess_errors: float = 2.0
    #: Excess-error mass at which the host drains out of service.
    quarantine_excess_errors: float = 6.0
    #: Excess-error mass at which screening engages (quarantined hosts
    #: are pushed here automatically once drained).
    screen_excess_errors: float = 9.0
    #: Hysteresis band (excess errors) a relaxing host must clear.
    hysteresis_errors: float = 1.0
    #: Consecutive clean ticks per relaxation rung.
    relax_clean_ticks: int = 3
    #: Ratio cut applied by DERATE relative to the nominal envelope.
    derate_step: float = 0.06
    #: Smallest screened envelope worth reinstating; below it, retire.
    min_reinstate_envelope: float = 1.02
    #: Reinstatements allowed before the next screen verdict retires
    #: the host instead (bounded re-arm).
    max_rearms: int = 2
    #: Largest fraction of the fleet allowed at QUARANTINE/SCREEN at
    #: once; beyond it quarantines are deferred to DERATE.
    max_out_of_service_fraction: float = 0.34
    #: Detector charge for an ungraceful crash (strong evidence: one
    #: crash should clear the quarantine threshold on its own).
    crash_equivalent_errors: float = 8.0
    #: Detector charge for an audit-confirmed silent corruption.
    sdc_charge_errors: float = 8.0

    def __post_init__(self) -> None:
        ordered = (
            self.derate_excess_errors,
            self.quarantine_excess_errors,
            self.screen_excess_errors,
        )
        if any(hi <= lo for lo, hi in zip(ordered, ordered[1:])):
            raise ConfigurationError(
                "excess-error thresholds must be strictly increasing "
                "(derate < quarantine < screen)"
            )
        if self.derate_excess_errors <= 0:
            raise ConfigurationError("derate threshold must be positive")
        if self.hysteresis_errors <= 0:
            raise ConfigurationError("hysteresis must be positive")
        if self.relax_clean_ticks < 1:
            raise ConfigurationError("relax_clean_ticks must be at least 1")
        if self.derate_step <= 0:
            raise ConfigurationError("derate step must be positive")
        if self.min_reinstate_envelope < 1.0:
            raise ConfigurationError("reinstate envelope cannot be below stock")
        if self.max_rearms < 0:
            raise ConfigurationError("max_rearms cannot be negative")
        if not 0.0 < self.max_out_of_service_fraction <= 1.0:
            raise ConfigurationError("out-of-service fraction must be in (0, 1]")
        if self.crash_equivalent_errors < 0 or self.sdc_charge_errors < 0:
            raise ConfigurationError("event charges cannot be negative")

    def thresholds(self) -> dict[HealthStage, float]:
        """Ladder thresholds (negated excess-error masses)."""
        return {
            HealthStage.DERATE: -self.derate_excess_errors,
            HealthStage.QUARANTINE: -self.quarantine_excess_errors,
            HealthStage.SCREEN: -self.screen_excess_errors,
            # RETIRE is never reached by statistic alone; only the
            # coordinator's verdict/pinning path drives a host this deep.
            HealthStage.RETIRE: _RETIRED_MARGIN / 10.0,
        }


class FleetHealthCoordinator:
    """Runs the per-host health ladders against machine-check telemetry.

    Call :meth:`tick` once per observation window with the window's
    machine-check events; read back per-host envelopes for the guard
    via :meth:`envelope`, in-service membership via :meth:`in_service`,
    and the capacity story via :meth:`out_of_service_fraction`.

    Callbacks (all optional, all returning a short deterministic
    description that lands in the timeline):

    * ``on_derate(host, envelope)`` — publish a cut (or restored)
      envelope toward the guard.
    * ``on_quarantine(host)`` — drain the host (AutoScaler hook).
    * ``on_reinstate(host, envelope)`` — host re-enters service.
    * ``on_retire(host)`` — permanent removal.
    """

    def __init__(
        self,
        host_ids: Iterable[str],
        config: HealthLadderConfig | None = None,
        detectors: Mapping[str, DriftDetector] | None = None,
        screening: ScreeningScheduler | None = None,
        nominal_envelope: float = 1.23,
        timeline: "FaultTimeline | None" = None,
        counters: HealthCounters | None = None,
        on_derate: Callable[[str, float], str] | None = None,
        on_quarantine: Callable[[str], str] | None = None,
        on_reinstate: Callable[[str, float], str] | None = None,
        on_retire: Callable[[str], str] | None = None,
    ) -> None:
        hosts = sorted(set(host_ids))
        if not hosts:
            raise ConfigurationError("the fleet cannot be empty")
        self.config = config if config is not None else HealthLadderConfig()
        self.counters = counters if counters is not None else HealthCounters()
        self.timeline = timeline
        self.screening = screening
        self.nominal_envelope = nominal_envelope
        self._hosts = hosts
        self._detectors = (
            dict(detectors)
            if detectors is not None
            else {host: DriftDetector() for host in hosts}
        )
        missing = [host for host in hosts if host not in self._detectors]
        if missing:
            raise ConfigurationError(f"hosts without detectors: {missing}")
        self._on_derate = on_derate
        self._on_quarantine = on_quarantine
        self._on_reinstate = on_reinstate
        self._on_retire = on_retire
        self._envelopes: dict[str, float] = {}
        self._screened: dict[str, float] = {}
        self._rearms: dict[str, int] = {host: 0 for host in hosts}
        self._retired: set[str] = set()
        self._awaiting_verdict: set[str] = set()
        self._pending_charges: dict[str, float] = {}
        self._now_hours = 0.0
        self._ladders: dict[str, StagedLadder] = {}
        for host in hosts:
            ladder = StagedLadder(
                stages=HealthStage,
                thresholds=self.config.thresholds(),
                hysteresis=self.config.hysteresis_errors,
                relax_clean_ticks=self.config.relax_clean_ticks,
                timeline=None,  # actions record host-tagged events below
                margin_format=lambda margin: f"excess={-margin:.2f}err",
            )
            self._wire(ladder, host)
            self._ladders[host] = ladder

    # ------------------------------------------------------------------
    # Rung actions (each records its own host-tagged timeline event)
    # ------------------------------------------------------------------
    def _wire(self, ladder: StagedLadder, host: str) -> None:
        ladder.register(
            HealthStage.DERATE,
            engage=lambda: self._engage_derate(host),
            release=lambda: self._release_derate(host),
        )
        ladder.register(
            HealthStage.QUARANTINE,
            engage=lambda: self._engage_quarantine(host),
            release=lambda: self._release_quarantine(host),
        )
        ladder.register(
            HealthStage.SCREEN,
            engage=lambda: self._engage_screen(host),
            release=lambda: self._record(HEALTH_RELAX, host, "screen complete"),
        )
        ladder.register(
            HealthStage.RETIRE,
            engage=lambda: self._engage_retire(host),
        )

    def _record(self, kind: str, host: str, detail: str) -> str:
        if self.timeline is not None:
            self.timeline.record(self._now_hours, kind, host, detail)
        return detail

    def _engage_derate(self, host: str) -> str:
        # Cut from the host's *current* published envelope: a screened
        # (already-lowered) envelope must never be raised by a derate.
        base = self._screened.get(host, self.nominal_envelope)
        envelope = max(1.0, base - self.config.derate_step)
        self._envelopes[host] = envelope
        self.counters.derates += 1
        detail = f"derate envelope={envelope:.3f}"
        if self._on_derate is not None:
            detail = f"{detail} {self._on_derate(host, envelope)}"
        return self._record(HEALTH_ESCALATE, host, detail)

    def _release_derate(self, host: str) -> str:
        screened = self._screened.get(host)
        if screened is not None:
            # The screen's verdict outranks the blanket derate cut —
            # keep the measured envelope rather than restoring nominal.
            self._envelopes[host] = screened
            detail = f"screened envelope {screened:.3f} retained"
        else:
            self._envelopes.pop(host, None)
            detail = "nominal envelope restored"
            if self._on_derate is not None:
                detail = f"{detail} {self._on_derate(host, self.nominal_envelope)}"
        return self._record(HEALTH_RELAX, host, detail)

    def _engage_quarantine(self, host: str) -> str:
        self.counters.quarantines += 1
        detail = "quarantine drained"
        if self._on_quarantine is not None:
            detail = f"quarantine {self._on_quarantine(host)}"
        return self._record(HEALTH_ESCALATE, host, detail)

    def _release_quarantine(self, host: str) -> str:
        envelope = self._screened.get(host, self._envelopes.get(host, 1.0))
        self.counters.reinstates += 1
        self._rearms[host] += 1
        detail = f"reinstated envelope={envelope:.3f} rearm={self._rearms[host]}"
        if self._on_reinstate is not None:
            detail = f"{detail} {self._on_reinstate(host, envelope)}"
        return self._record(HEALTH_RELAX, host, detail)

    def _engage_screen(self, host: str) -> str:
        self.counters.screens += 1
        self._awaiting_verdict.add(host)
        if self.screening is not None:
            self.screening.enqueue(host, self._now_hours)
            detail = "screen enqueued"
        else:
            detail = "no screening rig wired"
        return self._record(HEALTH_ESCALATE, host, detail)

    def _engage_retire(self, host: str) -> str:
        self._retired.add(host)
        self._awaiting_verdict.discard(host)
        self._envelopes[host] = 1.0
        self.counters.retires += 1
        detail = "retired"
        if self._on_retire is not None:
            detail = f"retired {self._on_retire(host)}"
        return self._record(HEALTH_ESCALATE, host, detail)

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def charge_sdc(self, host: str) -> None:
        """Charge an audit-confirmed silent corruption to ``host``."""
        if host not in self._ladders:
            raise ConfigurationError(f"unknown host {host!r}")
        self._pending_charges[host] = (
            self._pending_charges.get(host, 0.0) + self.config.sdc_charge_errors
        )

    def _fold_events(self, events: Iterable[MachineCheckEvent]) -> dict[str, float]:
        """Reduce a window's events to per-host detector charges."""
        charges: dict[str, float] = {}
        for event in events:
            if event.kind == "ce":
                self.counters.ce_events += 1
                self.counters.ce_errors += event.count
                charges[event.host_id] = charges.get(event.host_id, 0.0) + event.count
            elif event.kind == "crash":
                self.counters.crashes += 1
                charges[event.host_id] = (
                    charges.get(event.host_id, 0.0)
                    + self.config.crash_equivalent_errors
                )
            elif event.kind == "sdc":
                # Silent by definition: ground-truth accounting only.
                # Detectors hear about SDCs solely via charge_sdc()
                # when the duplicate-execution audit catches one.
                self.counters.sdc_events += event.count
        return charges

    # ------------------------------------------------------------------
    # The control tick
    # ------------------------------------------------------------------
    def tick(
        self,
        time_hours: float,
        window_hours: float,
        events: Iterable[MachineCheckEvent],
    ) -> None:
        """Fold one observation window into every host's ladder."""
        if window_hours <= 0:
            raise ConfigurationError("window must be positive")
        self._now_hours = time_hours
        charges = self._fold_events(events)
        self._poll_screening(time_hours)
        thresholds = self.config.thresholds()
        quarantine_margin = thresholds[HealthStage.QUARANTINE]
        screen_margin = thresholds[HealthStage.SCREEN]
        for host in self._hosts:
            ladder = self._ladders[host]
            if host in self._retired:
                ladder.observe(time_hours, _RETIRED_MARGIN)
                continue
            detector = self._detectors[host]
            if self.in_service(host):
                charge = charges.get(host, 0.0) + self._pending_charges.pop(host, 0.0)
                if detector.observe(window_hours, charge):
                    self.counters.detector_fires += 1
            margin = -detector.statistic
            if ladder.stage >= HealthStage.QUARANTINE and detector.statistic > 0:
                # Drained and still unexonerated: hold at the screen
                # rung (engaging it on the first such tick) until the
                # verdict resets the detector or retires the host.
                margin = min(margin, screen_margin)
            elif (
                ladder.stage < HealthStage.QUARANTINE
                and margin <= quarantine_margin
                and self._budget_spent()
            ):
                self.counters.quarantines_deferred += 1
                self._record(
                    HEALTH_DEFER, host, f"excess={-margin:.2f}err budget spent"
                )
                margin = quarantine_margin + 1e-9
            ladder.observe(time_hours, margin)

    def _poll_screening(self, time_hours: float) -> None:
        if self.screening is None:
            return
        for report in self.screening.poll(time_hours):
            host = report.host_id
            if host in self._retired or host not in self._awaiting_verdict:
                continue
            self.counters.screens_completed += 1
            healthy = report.envelope_ratio >= self.config.min_reinstate_envelope
            rearm_left = self._rearms[host] < self.config.max_rearms
            if healthy and rearm_left:
                self._screened[host] = report.envelope_ratio
                self._detectors[host].reset()
                self._awaiting_verdict.discard(host)
                verdict = f"reinstate envelope={report.envelope_ratio:.3f}"
            elif healthy:
                verdict = f"retire rearm budget spent ({self._rearms[host]})"
                self._retire_now(time_hours, host)
            else:
                verdict = f"retire envelope={report.envelope_ratio:.3f} too low"
                self._retire_now(time_hours, host)
            self._record(
                HEALTH_VERDICT,
                host,
                f"margin={report.estimated_stable_margin:.3f} "
                f"probes={report.probes} {verdict}",
            )

    def _retire_now(self, time_hours: float, host: str) -> None:
        """Pin the ladder at RETIRE immediately (verdict path)."""
        self._retired.add(host)
        self._ladders[host].observe(time_hours, _RETIRED_MARGIN)

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------
    def stage(self, host: str) -> HealthStage:
        return HealthStage(self._ladders[host].stage)

    def in_service(self, host: str) -> bool:
        """True while the host should be serving traffic."""
        return self._ladders[host].stage < HealthStage.QUARANTINE

    def serving_hosts(self) -> list[str]:
        return [host for host in self._hosts if self.in_service(host)]

    def envelope(self, host: str) -> float | None:
        """The host's published health envelope (None = nominal)."""
        return self._envelopes.get(host)

    def retired_hosts(self) -> frozenset[str]:
        return frozenset(self._retired)

    def rearms(self, host: str) -> int:
        return self._rearms[host]

    def _transient_out_of_service(self) -> int:
        return sum(
            1
            for host in self._hosts
            if host not in self._retired
            and self._ladders[host].stage >= HealthStage.QUARANTINE
        )

    def _budget_spent(self) -> bool:
        active = len(self._hosts) - len(self._retired)
        if active == 0:
            return True
        budget = self.config.max_out_of_service_fraction * active
        return (self._transient_out_of_service() + 1) > budget

    def out_of_service_fraction(self) -> float:
        """Fraction of the non-retired fleet currently drained."""
        active = len(self._hosts) - len(self._retired)
        if active == 0:
            return 0.0
        return self._transient_out_of_service() / active


__all__ = [
    "HEALTH_DEFER",
    "HEALTH_ESCALATE",
    "HEALTH_RELAX",
    "HEALTH_VERDICT",
    "FleetHealthCoordinator",
    "HealthLadderConfig",
    "HealthStage",
]
