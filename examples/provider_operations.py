#!/usr/bin/env python
"""Provider-side overclocking operations (paper Sections IV-V).

Walks the operational machinery a cloud provider needs around
guaranteed overclocking:

1. the power-delivery hierarchy: oversubscribed breakers, live breach
   detection, priority-aware capping;
2. the overclock guard: stability + lifetime + power checks before any
   frequency grant;
3. high-performance VM SKUs: green-band (lifetime-neutral) and red-band
   (credit-funded) offerings;
4. the overclock stop-gap: compensate a packing collision instantly,
   migrate the VM away, then restore nominal clocks.

Run:  python examples/provider_operations.py
"""

from repro.cluster import (
    GREEN_SKU,
    Host,
    MigrationManager,
    PowerCapGovernor,
    RED_SKU,
    RedBandSession,
    VMInstance,
    VMSpec,
    build_two_rack_row,
    overclock_stopgap_plan,
)
from repro.reliability import (
    OverclockGuard,
    StabilityMonitor,
    WearoutCounter,
    immersion_condition,
)
from repro.silicon import OC1, XEON_W3175X
from repro.sim import Simulator
from repro.thermal import HFE_7000, TWO_PHASE_IMMERSION


def loaded_host(host_id: str) -> Host:
    host = Host(host_id, cooling=TWO_PHASE_IMMERSION)
    host.set_config(OC1)
    for index in range(7):
        host.place(VMInstance(f"{host_id}-vm{index}", VMSpec(4, 8.0)))
    return host


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Power delivery: a row breaker oversubscribed by overclocking.
    # ------------------------------------------------------------------
    tree = build_two_rack_row(
        hosts_per_rack=1,
        make_host=loaded_host,
        rack_limit_watts=2000.0,
        row_limit_watts=450.0,
    )
    print("Power delivery (row limit 450 W):")
    print(f"  provisioned peak : {tree.root.provisioned_watts():.0f} W "
          f"({tree.root.oversubscription_ratio():.2f}x oversubscribed)")
    breaches = tree.find_breaches(utilization=1.0)
    print(f"  breaches at full load: {[b.node_name for b in breaches]}")
    results = tree.enforce(PowerCapGovernor(), utilization=1.0)
    for result in results:
        action = "capped" if result.capped else "kept"
        print(f"  {result.host_id}: {result.original_core_ghz:.1f} -> "
              f"{result.final_core_ghz:.1f} GHz ({action})")

    # ------------------------------------------------------------------
    # 2. The overclock guard.
    # ------------------------------------------------------------------
    nominal = immersion_condition(HFE_7000, 205.0, 0.90)
    overclocked = immersion_condition(HFE_7000, 305.0, 0.98)
    counter = WearoutCounter()
    counter.record(hours=4383.0, condition=nominal, utilization=0.4)  # half a year
    guard = OverclockGuard(
        monitor=StabilityMonitor(rate_threshold_per_hour=0.5),
        wearout=counter,
        overclocked_condition=overclocked,
        nominal_condition=nominal,
    )
    print("\nOverclock guard decisions:")
    for request, headroom in ((1.20, 500.0), (1.40, 500.0), (1.20, 20.0)):
        decision = guard.decide(request, power_headroom_watts=headroom)
        print(f"  request {request:.2f}x, headroom {headroom:4.0f} W -> "
              f"granted {decision.granted_ratio:.2f}x (limited by {decision.limited_by})")
    guard.observe_errors(0.0, 0.0)
    guard.observe_errors(1.0, 5.0)  # error burst!
    decision = guard.decide(1.20)
    print(f"  after an error-rate alarm -> granted {decision.granted_ratio:.2f}x "
          f"({decision.limited_by})")

    # ------------------------------------------------------------------
    # 3. High-performance SKUs.
    # ------------------------------------------------------------------
    domains = XEON_W3175X.domains
    print("\nHigh-performance VM SKUs on the W-3175X:")
    for sku in (GREEN_SKU, RED_SKU):
        print(f"  {sku.name}: {sku.frequency_ghz(domains):.2f} GHz "
              f"({sku.band} band, {sku.price_multiplier:.2f}x price)")
    red_condition = immersion_condition(HFE_7000, 340.0, 1.01)
    session = RedBandSession(counter, red_condition, nominal)
    print(f"  red-band budget: {session.affordable_hours():,.0f} hours from banked credit")
    spent = session.record(hours=24.0)
    print(f"  sold a 24 h red-band burst: {spent:.5f} lifetime damage, "
          f"{session.affordable_hours():,.0f} hours left")

    # ------------------------------------------------------------------
    # 4. The overclock stop-gap around live migration.
    # ------------------------------------------------------------------
    simulator = Simulator()
    manager = MigrationManager(simulator)
    crowded = Host("crowded", cooling=TWO_PHASE_IMMERSION, oversubscription_ratio=1.2)
    spare = Host("spare", cooling=TWO_PHASE_IMMERSION)
    victim = VMInstance("victim", VMSpec(4, 32.0))
    crowded.place(victim)
    record = overclock_stopgap_plan(simulator, manager, crowded, victim, spare)
    print(f"\nStop-gap: crowded host overclocked to {crowded.config.core_ghz:.1f} GHz "
          f"while a {record.plan.duration_s:.0f} s migration moves "
          f"{record.plan.memory_gb:.0f} GB")
    simulator.run(until=record.plan.duration_s + 1.0)
    print(f"  migration done; crowded host restored to "
          f"{crowded.config.core_ghz:.1f} GHz; VM now on "
          f"{'spare' if any(v.vm_id == 'victim' for v in spare.vms) else '???'}")


if __name__ == "__main__":
    main()
