#!/usr/bin/env python
"""Dense VM packing via overclocking-backed oversubscription (Section VI-C).

Shows the full economic chain:

1. Figure 12 — how many pcores SQL gives back when overclocked;
2. Figure 13 — mixed batch + latency scenarios under oversubscription;
3. packing density — VMs per host at 1:1 vs oversubscribed placement;
4. TCO — the resulting cost per virtual core (the paper's −13%).

Run:  python examples/oversubscription_packing.py
"""

from repro.cluster import Host, VMSpec, packing_density_gain
from repro.experiments.oversubscription import format_fig12, format_fig13
from repro.experiments.tco_experiments import format_oversubscription_tco, format_table6
from repro.silicon import OC1
from repro.thermal import TWO_PHASE_IMMERSION


def main() -> None:
    print(format_fig12())
    print()
    print(format_fig13())

    # ------------------------------------------------------------------
    # Packing density: 4-vcore VMs on 28-pcore hosts, 1:1 vs 1.2:1.
    # ------------------------------------------------------------------
    def make_host(host_id: str, ratio: float) -> Host:
        host = Host(
            host_id,
            cooling=TWO_PHASE_IMMERSION,
            oversubscription_ratio=ratio,
        )
        if ratio > 1.0:
            host.set_config(OC1)  # overclock to compensate the oversubscription
        return host

    gain = packing_density_gain(
        make_host,
        vm_spec=VMSpec(vcores=4, memory_gb=8.0),
        host_count=10,
        oversubscription_ratio=1.2,
    )
    print(f"\nPacking density: 20% core oversubscription packs {gain:+.0%} more VMs "
          "on the same hosts (paper: +20%).")

    print()
    print(format_table6())
    print()
    print(format_oversubscription_tco())


if __name__ == "__main__":
    main()
