#!/usr/bin/env python
"""Lifetime budgeting and stability guardrails (paper Section IV).

Demonstrates the operational side of sustained overclocking:

1. wear-out counters: a moderately-utilized server banks lifetime
   credit, which can be spent on overclocked hours;
2. the iso-lifetime overclock search: how hard each fluid lets you push
   while keeping the air-cooled 5-year rating;
3. the stability guardrail: a correctable-error-rate monitor that tells
   the controller when to back off.

Run:  python examples/lifetime_budgeting.py
"""

from repro.reliability import (
    CompositeLifetimeModel,
    StabilityModel,
    StabilityMonitor,
    WearoutCounter,
    immersion_condition,
    iso_lifetime_overclock_watts,
)
from repro.thermal import FC_3284, HFE_7000


def main() -> None:
    model = CompositeLifetimeModel()

    # ------------------------------------------------------------------
    # 1. Wear-out counters and lifetime credit.
    # ------------------------------------------------------------------
    counter = WearoutCounter(model)
    nominal = immersion_condition(HFE_7000, 205.0, 0.90)
    overclocked = immersion_condition(HFE_7000, 305.0, 0.98)

    # A year of moderate (40%) utilization at nominal conditions...
    counter.record(hours=8766.0, condition=nominal, utilization=0.40)
    credit = counter.lifetime_credit()
    budget = counter.affordable_overclock_hours(overclocked, nominal, utilization=0.9)
    print("After one year at 40% utilization in HFE-7000:")
    print(f"  damage accrued      : {counter.damage:.4f} of total life")
    print(f"  lifetime credit     : {credit:.4f} (vs worst-case schedule)")
    print(f"  overclock budget    : {budget:,.0f} hours at 305 W / 0.98 V")

    # ------------------------------------------------------------------
    # 2. Iso-lifetime overclocking headroom per fluid.
    # ------------------------------------------------------------------
    print("\nIso-lifetime overclock (5-year target, voltage tracks power):")
    for fluid in (FC_3284, HFE_7000):
        watts = iso_lifetime_overclock_watts(model, fluid, target_years=5.0)
        print(f"  {fluid.name:12s}: up to {watts:.0f} W per socket "
              f"(+{watts - 205:.0f} W over TDP)")

    # ------------------------------------------------------------------
    # 3. Stability guardrail.
    # ------------------------------------------------------------------
    stability = StabilityModel()
    monitor = StabilityMonitor(rate_threshold_per_hour=0.5)
    print("\nStability: expected correctable errors over 6 months:")
    for ratio in (1.10, 1.23, 1.28, 1.32):
        errors = stability.expected_errors(ratio, hours=183 * 24)
        print(f"  {ratio:.2f}x over turbo: {errors:8.1f} errors "
              f"({'stable' if errors < 1 else 'monitor closely'})")

    print("\nSimulated counter feed at an unstable setting:")
    cumulative = 0.0
    for hour in range(1, 7):
        cumulative += stability.correctable_error_rate_per_hour(1.30)
        alarm = monitor.observe(float(hour), cumulative)
        state = "ALARM -> back off one bin" if alarm else "ok"
        print(f"  t={hour}h cumulative={cumulative:6.1f} -> {state}")


if __name__ == "__main__":
    main()
