#!/usr/bin/env python
"""Fleet-level overclocking use-cases (paper Figures 6-7 and power capping).

1. **Buffer reduction** (Fig. 6) — replace static failover buffers with
   virtual ones: sell the buffer capacity, and on a host failure
   re-create the displaced VMs on survivors and overclock them.
2. **Capacity-crisis mitigation** (Fig. 7) — bridge a demand/supply gap
   by overclock-backed oversubscription of the existing fleet.
3. **Power capping** — overclocked hosts under an oversubscribed power
   budget, with priority-aware shedding.

Run:  python examples/fleet_scenarios.py
"""

from repro.cluster import (
    Fleet,
    Host,
    PowerCapGovernor,
    VMInstance,
    VMSpec,
    bridge_capacity_gap,
)
from repro.silicon import OC1
from repro.thermal import TWO_PHASE_IMMERSION


def build_hosts(count: int, prefix: str) -> list[Host]:
    return [
        Host(f"{prefix}-{index}", cooling=TWO_PHASE_IMMERSION, oversubscription_ratio=1.0)
        for index in range(count)
    ]


def main() -> None:
    vm_spec = VMSpec(vcores=4, memory_gb=8.0)

    # ------------------------------------------------------------------
    # 1. Buffer reduction: static buffer vs virtual (overclocked) buffer.
    # ------------------------------------------------------------------
    static_fleet = Fleet(build_hosts(10, "static"), buffer_hosts=2)
    virtual_fleet = Fleet(build_hosts(10, "virtual"), buffer_hosts=0)
    static_vms = static_fleet.fill_with(vm_spec, prefix="s")
    virtual_vms = virtual_fleet.fill_with(vm_spec, prefix="v")
    print("Buffer reduction (10 hosts, 28 pcores each):")
    print(f"  static buffer (2 hosts reserved): {static_vms} customer VMs")
    print(f"  virtual buffer (all hosts sold) : {virtual_vms} customer VMs "
          f"({virtual_vms / static_vms - 1:+.0%})")

    outcome = virtual_fleet.fail_host("virtual-0")
    print(f"  after failing virtual-0: {outcome.recreated_vms} VMs re-created, "
          f"{outcome.lost_vms} lost, hosts overclocked: {list(outcome.overclocked_hosts)}")

    # ------------------------------------------------------------------
    # 2. Capacity crisis: demand outruns the fleet by ~15%.
    # ------------------------------------------------------------------
    hosts = build_hosts(10, "crisis")
    demand = int(sum(h.vcore_capacity for h in hosts) * 1.15)
    plan = bridge_capacity_gap(hosts, demand_vcores=demand)
    print(f"\nCapacity crisis: demand {plan.demand_vcores} vcores vs supply "
          f"{plan.supply_vcores}:")
    print(f"  gap {plan.gap_vcores} vcores; bridged {plan.bridged_vcores} by "
          f"overclocking {plan.hosts_overclocked} hosts "
          f"({'fully bridged' if plan.fully_bridged else 'NOT fully bridged'})")

    # ------------------------------------------------------------------
    # 3. Power capping with priorities.
    # ------------------------------------------------------------------
    governor = PowerCapGovernor()
    capped_hosts = build_hosts(4, "cap")
    for host in capped_hosts:
        host.set_config(OC1)
        for index in range(7):  # 28 vcores — fully committed
            host.place(VMInstance(vm_id=f"{host.host_id}-vm{index}", spec=vm_spec))
    fleet_power = sum(h.power_watts(0.9) for h in capped_hosts)
    cap = fleet_power * 0.9
    print(f"\nPower capping: 4 overclocked hosts drawing {fleet_power:.0f} W, "
          f"cap {cap:.0f} W")
    results = governor.enforce_priority_aware(
        [(host, index) for index, host in enumerate(capped_hosts)], cap, utilization=0.9
    )
    for result in results:
        marker = "capped" if result.capped else "kept"
        print(f"  {result.host_id}: {result.original_core_ghz:.1f} -> "
              f"{result.final_core_ghz:.1f} GHz ({marker}, {result.final_watts:.0f} W)")


if __name__ == "__main__":
    main()
