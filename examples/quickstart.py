#!/usr/bin/env python
"""Quickstart: immerse a server, overclock it, and inspect the trade-offs.

Walks the paper's core story in a few steps:

1. build a two-phase immersion tank and submerge a Xeon;
2. compare the air-cooled and immersed operating points (Table III);
3. overclock the unlocked Xeon W-3175X and read power/voltage (§IV);
4. project processor lifetime under each condition (Table V).

Run:  python examples/quickstart.py
"""

from repro.reliability import (
    CompositeLifetimeModel,
    air_condition,
    immersion_condition,
)
from repro.silicon import XEON_8168, XEON_W3175X, air_cooled_cpu, immersed_cpu
from repro.thermal import FC_3284, HFE_7000, ImmersedLoad, small_tank_1


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A 2PIC tank with a server submerged in Novec HFE-7000.
    # ------------------------------------------------------------------
    tank = small_tank_1()
    tank.immerse(ImmersedLoad("xeon-server", power_watts=255.0))
    print(f"Tank {tank.name}: {tank.total_heat_watts:.0f} W dissipating into "
          f"{tank.fluid.name} (pool at {tank.fluid.pool_temperature_c():.0f} degC, "
          f"boiling {tank.circulation_rate_g_per_s():.1f} g/s)")

    # ------------------------------------------------------------------
    # 2. Air vs 2PIC for a locked server part (Table III).
    # ------------------------------------------------------------------
    air = air_cooled_cpu(XEON_8168)
    immersed = immersed_cpu(XEON_8168, FC_3284)
    print(f"\n{XEON_8168.name} at TDP ({XEON_8168.tdp_watts:.0f} W):")
    print(f"  air : Tj={air.junction.junction_temp_c(205):5.1f} degC, "
          f"all-core turbo {air.allcore_turbo_ghz():.1f} GHz")
    print(f"  2PIC: Tj={immersed.junction.junction_temp_c(205):5.1f} degC, "
          f"all-core turbo {immersed.allcore_turbo_ghz():.1f} GHz "
          f"(+{immersed.static_power_savings_vs(air):.0f} W leakage reclaimed)")

    # ------------------------------------------------------------------
    # 3. Overclock the unlocked W-3175X (the small tank #1 experiment).
    # ------------------------------------------------------------------
    xeon = immersed_cpu(XEON_W3175X, HFE_7000)
    nominal = xeon.operating_point(3.4)
    overclocked = xeon.operating_point(3.4 * 1.23)
    print(f"\n{XEON_W3175X.name} in {HFE_7000.name}:")
    print(f"  3.4 GHz: {nominal.voltage_v:.2f} V, {nominal.total_watts:.0f} W, "
          f"Tj {nominal.junction_temp_c:.0f} degC")
    print(f"  {3.4 * 1.23:.2f} GHz (+23%): {overclocked.voltage_v:.2f} V, "
          f"{overclocked.total_watts:.0f} W, Tj {overclocked.junction_temp_c:.0f} degC")

    # ------------------------------------------------------------------
    # 4. What does that do to lifetime? (Table V)
    # ------------------------------------------------------------------
    model = CompositeLifetimeModel()
    rows = [
        ("air, nominal", air_condition(205.0, 0.90)),
        ("air, overclocked", air_condition(305.0, 0.98)),
        (f"{HFE_7000.name}, nominal", immersion_condition(HFE_7000, 205.0, 0.90)),
        (f"{HFE_7000.name}, overclocked", immersion_condition(HFE_7000, 305.0, 0.98)),
    ]
    print("\nProjected lifetime:")
    for label, condition in rows:
        years = model.lifetime_years(condition)
        print(f"  {label:28s} Tj={condition.tj_max_c:5.1f} degC -> {years:5.1f} years")
    print("\nOverclocked in HFE-7000 matches the air-cooled baseline's 5 years —")
    print("immersion pays for the overclock (the paper's Takeaway 2).")


if __name__ == "__main__":
    main()
