#!/usr/bin/env python
"""Overclocking-enhanced auto-scaling demo (paper Section VI-D).

Runs a shortened version of the paper's Figure 16 experiment: a load
ramp against the M/G/k client-server application under the three
controller modes — Baseline (scale-out only), OC-E (overclock to hide
the 60 s deploy), and OC-A (overclock to avoid deploys) — and prints a
Table XI-style comparison plus a coarse utilization timeline.

Run:  python examples/autoscaling_demo.py
"""

from repro.autoscale import AutoScaler, AutoscalePolicy, ScalerMode
from repro.sim import OpenLoopSource, PiecewiseSchedule, Simulator


def run_mode(mode: ScalerMode, seed: int = 7):
    """One closed-loop run: 200->1600 QPS in +200 steps every 2 minutes."""
    simulator = Simulator(seed=seed)
    autoscaler = AutoScaler(
        simulator, AutoscalePolicy(mode=mode), initial_vms=1, warmup_s=20.0
    )
    schedule = PiecewiseSchedule.stepped(initial=200, step=200, period=120, count=8)
    source = OpenLoopSource(
        simulator, autoscaler.load_balancer.route, rate_per_second=200
    )
    simulator.every(
        5.0, lambda: source.set_rate(schedule.value_at(simulator.now))
    )
    simulator.run(until=120.0 * 8)
    return autoscaler.finish()


def sparkline(values, width: int = 60) -> str:
    """Render a trace as a coarse text sparkline."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    return "".join(blocks[min(len(blocks) - 1, int(v * (len(blocks) - 1)))] for v in sampled)


def main() -> None:
    results = {mode: run_mode(mode) for mode in ScalerMode}
    baseline = results[ScalerMode.BASELINE]

    print("Mode       P95 lat   Avg lat   MaxVMs  VMxh   AvgPower  Scale-outs")
    print("-" * 70)
    for mode, result in results.items():
        print(
            f"{mode.value:9s}  "
            f"{result.latency.p95() * 1000:6.1f}ms  "
            f"{result.latency.mean() * 1000:6.2f}ms  "
            f"{result.max_vms:5d}  "
            f"{result.vm_hours():5.2f}  "
            f"{result.power.average_watts():6.0f} W  "
            f"{result.scale_out_events:6d}"
        )

    print("\nNormalized to baseline:")
    for mode in (ScalerMode.OC_E, ScalerMode.OC_A):
        result = results[mode]
        print(
            f"  {mode.value:5s}: P95 x{result.latency.p95() / baseline.latency.p95():.2f}, "
            f"avg x{result.latency.mean() / baseline.latency.mean():.2f}, "
            f"power {result.power.average_watts() / baseline.power.average_watts() - 1:+.0%}"
        )

    print("\nUtilization timeline (0..100%):")
    for mode, result in results.items():
        values = [sample.value for sample in result.utilization_trace]
        print(f"  {mode.value:9s} |{sparkline(values)}|")

    print("\nFrequency timeline (3.4..4.1 GHz):")
    for mode, result in results.items():
        values = [
            (sample.value - 3.4) / 0.7 for sample in result.frequency_trace
        ]
        print(f"  {mode.value:9s} |{sparkline(values)}|")


if __name__ == "__main__":
    main()
