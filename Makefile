PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-smoke clean-cache

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/ -q

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ -q --benchmark-only

# Sweep-engine perf microbenchmark on a tiny grid: finishes in well
# under 30 s and still checks serial == parallel == cached output.
bench-smoke:
	REPRO_BENCH_SMOKE=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_perf_engine.py -q -m perf

clean-cache:
	rm -rf .repro_cache
