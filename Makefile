PYTHON ?= python
PYTHONPATH := src

.PHONY: test test-chaos bench bench-smoke clean-cache

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/ -q

# Chaos suite: worker-kill recovery, fault-plan determinism, and the
# failure-recovery experiment, repeated over a fixed seed matrix. The
# conftest arms a faulthandler watchdog (REPRO_TEST_TIMEOUT_S) so a hung
# pool dumps tracebacks and fails instead of wedging CI.
REPRO_CHAOS_SEEDS ?= 1 2 7
test-chaos:
	REPRO_CHAOS_SEEDS="$(REPRO_CHAOS_SEEDS)" REPRO_TEST_TIMEOUT_S=300 \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_faults.py \
		tests/test_engine_chaos.py -q

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ -q --benchmark-only

# Sweep-engine perf microbenchmark on a tiny grid: finishes in well
# under 30 s and still checks serial == parallel == cached output.
bench-smoke:
	REPRO_BENCH_SMOKE=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_perf_engine.py -q -m perf

clean-cache:
	rm -rf .repro_cache
