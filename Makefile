PYTHON ?= python
PYTHONPATH := src

.PHONY: test test-chaos test-safety test-control test-emergency test-power test-service test-health test-rollout lint bench bench-smoke clean-cache

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/ -q

# Chaos suite: worker-kill recovery, fault-plan determinism, WAL
# SIGKILL/resume, and the failure-recovery experiment, repeated over a
# fixed seed matrix. The conftest arms a faulthandler watchdog
# (REPRO_TEST_TIMEOUT_S) so a hung pool dumps tracebacks and fails
# instead of wedging CI; CHAOS_TIMEOUT (seconds) bounds both the
# watchdog and the subprocess waits inside the chaos tests.
REPRO_CHAOS_SEEDS ?= 1 2 7
CHAOS_TIMEOUT ?= 300
test-chaos:
	REPRO_CHAOS_SEEDS="$(REPRO_CHAOS_SEEDS)" \
		REPRO_TEST_TIMEOUT_S=$(CHAOS_TIMEOUT) CHAOS_TIMEOUT=$(CHAOS_TIMEOUT) \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_faults.py \
		tests/test_engine_chaos.py tests/test_journal.py -q

# Safety suite: sensor-fault transforms, robust fusion, the fail-safe
# supervisor, and the cross-module monotonicity properties.
test-safety:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_sensors.py \
		tests/test_safety.py tests/test_properties.py -q

# Control-plane suite: retry policy, circuit breaker, lossy channel,
# command bus, dead-man lease, reconciliation loop, and the
# partition-recovery acceptance contract (naive stays overclocked,
# robust reverts within the lease bound; signatures bit-identical)
# over the REPRO_CHAOS_SEEDS matrix.
test-control:
	REPRO_CHAOS_SEEDS="$(REPRO_CHAOS_SEEDS)" \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_control.py \
		tests/test_partition_recovery.py -q

# Emergency suite: the facility fault models, the degradation ladder,
# and the heat-wave ride-through acceptance contract (naive trips
# Tjmax, laddered rides through with zero violations and a bounded
# overclock restore; signatures bit-identical) over the
# REPRO_CHAOS_SEEDS matrix, under the same faulthandler watchdog as
# test-chaos.
test-emergency:
	REPRO_CHAOS_SEEDS="$(REPRO_CHAOS_SEEDS)" \
		REPRO_TEST_TIMEOUT_S=$(CHAOS_TIMEOUT) \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_emergency.py \
		tests/test_heatwave_ride_through.py -q

# Power suite: the delivery tree and breaker curves, the budget
# arbiter invariants (conservation, monotonicity), the vectorized
# rollup equivalence, and the oversubscription-crisis acceptance
# contract (naive trips the row breaker, arbitrated survives with zero
# trips; signatures bit-identical) over the REPRO_CHAOS_SEEDS matrix.
test-power:
	REPRO_CHAOS_SEEDS="$(REPRO_CHAOS_SEEDS)" \
		REPRO_TEST_TIMEOUT_S=$(CHAOS_TIMEOUT) \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_power_tree.py \
		tests/test_power_arbiter.py tests/test_oversubscription_crisis.py -q

# Live-service suite: the overload-control stack unit tests, the
# service WAL SIGKILL/resume chaos test, the in-process HTTP load test
# (>= 1k requests against a ticking server), and the overload-storm
# acceptance contract (naive goodput collapses, robust holds the p99
# SLO with a bounded queue; signatures bit-identical) over the
# REPRO_CHAOS_SEEDS matrix, under the same faulthandler watchdog as
# test-chaos.
test-service:
	REPRO_CHAOS_SEEDS="$(REPRO_CHAOS_SEEDS)" \
		REPRO_TEST_TIMEOUT_S=$(CHAOS_TIMEOUT) CHAOS_TIMEOUT=$(CHAOS_TIMEOUT) \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_service.py \
		tests/test_service_chaos.py tests/test_service_http.py \
		tests/test_overload_storm.py -q

# Silicon-health suite: the latent part/MCA/detector/screening/audit
# unit tests, the fleet health ladder (derate → quarantine → screen →
# reinstate-or-retire, capacity budget, bounded re-arm), and the SDC
# hunt acceptance contract (naive leaks silent corruptions and
# reboot-loops crashed hosts, the health pipeline holds zero escapes /
# zero crashes with bounded capacity loss; run signatures
# bit-identical) over the REPRO_CHAOS_SEEDS matrix.
test-health:
	REPRO_CHAOS_SEEDS="$(REPRO_CHAOS_SEEDS)" \
		REPRO_TEST_TIMEOUT_S=$(CHAOS_TIMEOUT) \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_health.py \
		tests/test_health_ladder.py tests/test_sdc_hunt.py -q

# Rollout suite: the wave planner / canary analyzer / controller unit
# tests (freeze gates, stall detection, staged retreat, snapshot and
# journal resume) and the envelope-rollout acceptance contract (naive
# big-bang crashes a fleet fraction and leaks SDCs, the canary rollout
# contains exposure to wave 0's blast budget, rolls back, and resumes
# bit-identically after a SIGKILL; run signatures bit-identical) over
# the REPRO_CHAOS_SEEDS matrix, under the same faulthandler watchdog
# as test-chaos.
test-rollout:
	REPRO_CHAOS_SEEDS="$(REPRO_CHAOS_SEEDS)" \
		REPRO_TEST_TIMEOUT_S=$(CHAOS_TIMEOUT) \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_rollout.py \
		tests/test_envelope_rollout.py -q

lint:
	ruff check src tests benchmarks

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ -q --benchmark-only

# Perf microbenchmarks that finish in well under 30 s: the sweep
# engine on a tiny grid (serial == parallel == cached output), the
# vectorized power-budget enforcement at 1k/10k/100k hosts (emits
# BENCH_power.json at the repo root), the scalar-vs-vector fleet
# rollup race (emits BENCH_fleet.json), and the health changepoint
# detectors (CUSUM vs EWMA throughput; emits BENCH_health.json).
bench-smoke:
	REPRO_BENCH_SMOKE=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_perf_engine.py benchmarks/test_perf_power.py \
		benchmarks/test_perf_fleet.py benchmarks/test_perf_health.py \
		-q -m perf

clean-cache:
	rm -rf .repro_cache
