"""Tests for Equation 1 and the auto-scaler policy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.autoscale import (
    AutoscalePolicy,
    PAPER_POLICY,
    ScalerMode,
    minimum_frequency_below,
    predicted_utilization,
)
from repro.errors import ConfigurationError


class TestEquation1:
    def test_fully_scalable_workload(self):
        """β=1: utilization scales exactly with the inverse clock ratio."""
        assert predicted_utilization(0.8, 1.0, 3.4, 4.1) == pytest.approx(0.8 * 3.4 / 4.1)

    def test_fully_stalled_workload(self):
        """β=0: frequency changes nothing (the memory-bound case)."""
        assert predicted_utilization(0.8, 0.0, 3.4, 4.1) == pytest.approx(0.8)

    def test_paper_blend(self):
        util = predicted_utilization(0.5, 0.85, 3.4, 4.1)
        assert util == pytest.approx(0.5 * (0.85 * 3.4 / 4.1 + 0.15))

    def test_downclock_raises_utilization(self):
        assert predicted_utilization(0.3, 0.85, 4.1, 3.4) > 0.3

    def test_clamped_at_one(self):
        assert predicted_utilization(0.99, 1.0, 4.1, 1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            predicted_utilization(1.5, 0.5, 3.4, 4.1)
        with pytest.raises(ConfigurationError):
            predicted_utilization(0.5, 1.5, 3.4, 4.1)
        with pytest.raises(ConfigurationError):
            predicted_utilization(0.5, 0.5, 0.0, 4.1)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=1.0, max_value=5.0),
        st.floats(min_value=1.0, max_value=5.0),
    )
    def test_monotone_in_target_frequency(self, util, beta, f0, f1):
        """Raising the target clock never raises predicted utilization."""
        higher = predicted_utilization(util, beta, f0, f1 + 0.5)
        lower = predicted_utilization(util, beta, f0, f1)
        assert higher <= lower + 1e-12

    @given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
    def test_identity_at_same_frequency(self, util, beta):
        assert predicted_utilization(util, beta, 3.4, 3.4) == pytest.approx(util)


class TestMinimumFrequencyBelow:
    LADDER = [3.4, 3.5, 3.6, 3.7, 3.8, 3.9, 4.0, 4.1]

    def test_picks_minimum_satisfying_bin(self):
        # util 0.44 at 3.4 with β=0.85: 3.8 GHz predicts ≤ 0.40.
        frequency = minimum_frequency_below(0.44, 0.85, 3.4, self.LADDER, 0.40)
        assert frequency in self.LADDER
        assert predicted_utilization(0.44, 0.85, 3.4, frequency) <= 0.40
        below = [f for f in self.LADDER if f < frequency]
        for candidate in below:
            assert predicted_utilization(0.44, 0.85, 3.4, candidate) > 0.40

    def test_falls_back_to_max_when_unreachable(self):
        frequency = minimum_frequency_below(0.95, 0.85, 3.4, self.LADDER, 0.40)
        assert frequency == 4.1

    def test_already_satisfied_picks_lowest(self):
        frequency = minimum_frequency_below(0.2, 0.85, 3.4, self.LADDER, 0.40)
        assert frequency == 3.4

    def test_memory_bound_cannot_be_helped(self):
        """β=0: no frequency helps, so the search returns the top bin."""
        frequency = minimum_frequency_below(0.6, 0.0, 3.4, self.LADDER, 0.40)
        assert frequency == 4.1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            minimum_frequency_below(0.5, 0.5, 3.4, [], 0.4)
        with pytest.raises(ConfigurationError):
            minimum_frequency_below(0.5, 0.5, 3.4, self.LADDER, 0.0)


class TestPolicy:
    def test_paper_policy_values(self):
        assert PAPER_POLICY.scale_out_threshold == 0.50
        assert PAPER_POLICY.scale_in_threshold == 0.20
        assert PAPER_POLICY.scale_up_threshold == 0.40
        assert PAPER_POLICY.scale_down_threshold == 0.20
        assert PAPER_POLICY.scale_out_window_s == 180.0
        assert PAPER_POLICY.scale_up_window_s == 30.0
        assert PAPER_POLICY.decision_interval_s == 3.0

    def test_frequency_ladder_is_8_bins(self):
        ladder = PAPER_POLICY.frequency_ladder()
        assert len(ladder) == 8
        assert ladder[0] == pytest.approx(3.4)
        assert ladder[-1] == pytest.approx(4.1)

    def test_with_mode(self):
        oc_a = PAPER_POLICY.with_mode(ScalerMode.OC_A)
        assert oc_a.mode is ScalerMode.OC_A
        assert oc_a.scale_out_threshold == PAPER_POLICY.scale_out_threshold

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(scale_in_threshold=0.6, scale_out_threshold=0.5)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(scale_up_threshold=0.6, scale_out_threshold=0.5)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_frequency_ghz=4.1, max_frequency_ghz=3.4)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_vms=0)
