"""Unit tests for the rollout subsystem: plan, analyzer, controller.

Covers wave derivation from the delivery tree (seeded canaries, blast
budget, partition invariants), the canary-vs-control decision rules,
the advance/halt/rollback ladder, freeze gating against the real
emergency/power/health coordinators, stall detection, snapshot/restore
round-trips, the rollout fault injectors through a real campaign, and
the command-bus actuator's emergency breaker bypass.
"""

from __future__ import annotations

import pytest

from repro.control import CommandBus, HostAgent, LossyChannel, RetryPolicy
from repro.emergency.ladder import EmergencyCoordinator
from repro.errors import ConfigurationError, FaultError, RolloutError
from repro.faults import (
    FaultCampaign,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RolloutFaultInjector,
    register_rollout_injectors,
)
from repro.faults.timeline import FaultTimeline
from repro.health import DriftDetector, FleetHealthCoordinator, MachineCheckEvent
from repro.power.ladder import PowerEmergencyCoordinator
from repro.power.tree import build_uniform_hierarchy
from repro.rollout import (
    PHASE_APPLYING,
    PHASE_BAKING,
    PHASE_COMPLETE,
    PHASE_PENDING,
    PHASE_ROLLED_BACK,
    BusEnvelopeActuator,
    CallbackEnvelopeActuator,
    CanaryAnalyzer,
    CanaryPolicy,
    CohortStats,
    EnvelopeChange,
    HostSignals,
    RolloutController,
    RolloutPlan,
    RolloutPlanConfig,
    RolloutStage,
    RolloutWave,
)
from repro.sim import Simulator
from repro.telemetry.counters import RolloutCounters

CHANGE = EnvelopeChange(change_id="test-change", from_ratio=1.23, to_ratio=1.27)


def hierarchy24():
    return build_uniform_hierarchy(
        hosts_per_rack=6, racks_per_row=2, rows_per_ups=2
    )


def manual_plan(bake_ticks=1, canary_bake_ticks=1):
    """A tiny two-wave plan over explicit host names."""
    return RolloutPlan(
        change=CHANGE,
        waves=(
            RolloutWave(0, "canary", ("a",), canary_bake_ticks),
            RolloutWave(1, "rest", ("b", "c", "d", "e", "f", "g", "h", "i", "j"), bake_ticks),
        ),
        config=RolloutPlanConfig(),
    )


def healthy_signals(hosts):
    return {h: HostSignals(goodput=100.0, p99_s=0.2) for h in hosts}


def crashing_signals(hosts, crashed):
    return {
        h: (
            HostSignals(crashes=1, guard_limited=True, goodput=0.0)
            if h in crashed
            else HostSignals(goodput=100.0, p99_s=0.2)
        )
        for h in hosts
    }


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
class TestRolloutPlan:
    def test_waves_partition_the_fleet_rack_first(self):
        hierarchy = hierarchy24()
        plan = RolloutPlan.from_hierarchy(hierarchy, CHANGE, seed=1)
        assert [w.name for w in plan.waves] == ["canary", "rack", "row", "fleet"]
        assert [len(w.hosts) for w in plan.waves] == [2, 4, 6, 12]
        # Exact partition: every host exactly once.
        assert sorted(plan.hosts) == list(hierarchy.hosts)
        assert plan.fleet_size == 24
        # Canary + rack-rest together are one rack-level failure domain.
        rack = {h.rsplit("/", 1)[0] for h in plan.waves[0].hosts + plan.waves[1].hosts}
        assert len(rack) == 1

    def test_canary_selection_is_seeded_and_stable(self):
        hierarchy = hierarchy24()
        first = RolloutPlan.from_hierarchy(hierarchy, CHANGE, seed=7)
        again = RolloutPlan.from_hierarchy(hierarchy, CHANGE, seed=7)
        other = RolloutPlan.from_hierarchy(hierarchy, CHANGE, seed=8)
        assert first.waves[0].hosts == again.waves[0].hosts
        # A different seed re-rolls the draw (for this fleet shape).
        assert first.waves[0].hosts != other.waves[0].hosts

    def test_blast_radius_budget_is_enforced(self):
        small = build_uniform_hierarchy(hosts_per_rack=4, racks_per_row=2)
        with pytest.raises(ConfigurationError, match="blast-radius"):
            RolloutPlan.from_hierarchy(small, CHANGE, seed=1)
        # Loosening the budget admits the same shape.
        plan = RolloutPlan.from_hierarchy(
            small, CHANGE, config=RolloutPlanConfig(max_blast_radius_fraction=0.5)
        )
        assert plan.blast_radius_fraction == pytest.approx(0.25)

    def test_overlapping_waves_rejected(self):
        with pytest.raises(ConfigurationError, match="more than one wave"):
            RolloutPlan(
                change=CHANGE,
                waves=(
                    RolloutWave(0, "one", ("a",), 1),
                    RolloutWave(1, "two", ("a", "b", "c", "d", "e", "f", "g", "h", "i", "j"), 1),
                ),
            )

    def test_wave_indices_must_be_consecutive(self):
        with pytest.raises(ConfigurationError, match="consecutive"):
            RolloutPlan(
                change=CHANGE,
                waves=(RolloutWave(1, "one", tuple("abcdefghij"), 1),),
                config=RolloutPlanConfig(max_blast_radius_fraction=1.0),
            )

    def test_change_validation(self):
        with pytest.raises(ConfigurationError):
            EnvelopeChange(change_id="", from_ratio=1.2, to_ratio=1.3)
        with pytest.raises(ConfigurationError):
            EnvelopeChange(change_id="x", from_ratio=0.9, to_ratio=1.3)
        with pytest.raises(ConfigurationError):
            EnvelopeChange(change_id="x", from_ratio=1.3, to_ratio=1.3)

    def test_describe_names_every_wave(self):
        plan = RolloutPlan.from_hierarchy(hierarchy24(), CHANGE, seed=1)
        text = plan.describe()
        for wave in plan.waves:
            assert wave.name in text


# ----------------------------------------------------------------------
# Analyzer
# ----------------------------------------------------------------------
class TestCanaryAnalyzer:
    def test_clean_cohorts_are_healthy(self):
        analyzer = CanaryAnalyzer()
        analysis = analyzer.observe(
            CohortStats(hosts=2, ce_errors=0.0, goodput=200.0, p99_s=0.2),
            CohortStats(hosts=20, ce_errors=2.0, goodput=2000.0, p99_s=0.2),
        )
        assert analysis.healthy
        assert analysis.margin == pytest.approx(1.0)
        assert analysis.reasons == ()

    def test_canary_crash_is_rollback_grade(self):
        analyzer = CanaryAnalyzer()
        analysis = analyzer.observe(
            CohortStats(hosts=2, crashes=1), CohortStats(hosts=20)
        )
        assert "crash" in analysis.reasons
        assert analysis.margin <= -0.5

    def test_ce_excess_accumulates_through_the_cusum(self):
        policy = CanaryPolicy(window_hours=1.0)
        analyzer = CanaryAnalyzer(policy)
        # 2 excess CE/host/window over a 1h window charges 2 - 0.25
        # each time; the 4.0 threshold trips on the third window.
        for window in range(2):
            analysis = analyzer.observe(
                CohortStats(hosts=2, ce_errors=4.0), CohortStats(hosts=20)
            )
            assert "ce-drift" not in analysis.reasons
        analysis = analyzer.observe(
            CohortStats(hosts=2, ce_errors=4.0), CohortStats(hosts=20)
        )
        assert "ce-drift" in analysis.reasons
        assert analysis.margin <= -0.5

    def test_control_rate_excuses_environmental_ce(self):
        # Canary and control both noisy: no excess, no drift charge.
        policy = CanaryPolicy(window_hours=1.0)
        analyzer = CanaryAnalyzer(policy)
        for _ in range(10):
            analysis = analyzer.observe(
                CohortStats(hosts=2, ce_errors=4.0),
                CohortStats(hosts=20, ce_errors=40.0),
            )
        assert "ce-drift" not in analysis.reasons
        assert analyzer.drift_statistic == pytest.approx(0.0)

    def test_soft_signals_stack_to_halt_not_rollback(self):
        analyzer = CanaryAnalyzer()
        analysis = analyzer.observe(
            CohortStats(hosts=2, p99_s=1.0, goodput=20.0),
            CohortStats(hosts=20, p99_s=0.2, goodput=2000.0),
        )
        assert set(analysis.reasons) == {"p99", "goodput"}
        assert analysis.margin == pytest.approx(0.0)  # halt-grade
        assert analysis.margin > -0.5  # but not rollback-grade

    def test_guard_limited_fraction_rule(self):
        analyzer = CanaryAnalyzer()
        analysis = analyzer.observe(
            CohortStats(hosts=2, guard_limited=1), CohortStats(hosts=20)
        )
        assert "guard-limited" in analysis.reasons
        assert analysis.margin == pytest.approx(0.0)

    def test_snapshot_restore_round_trips_detector_state(self):
        policy = CanaryPolicy(window_hours=1.0)
        analyzer = CanaryAnalyzer(policy)
        for _ in range(2):
            analyzer.observe(CohortStats(hosts=2, ce_errors=4.0), CohortStats(hosts=20))
        state = analyzer.snapshot()
        fresh = CanaryAnalyzer(policy)
        fresh.restore(state)
        # The restored CUSUM fires exactly where the original would.
        a = analyzer.observe(CohortStats(hosts=2, ce_errors=4.0), CohortStats(hosts=20))
        b = fresh.observe(CohortStats(hosts=2, ce_errors=4.0), CohortStats(hosts=20))
        assert a.reasons == b.reasons
        assert a.window == b.window

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            CanaryPolicy(window_hours=0.0)
        with pytest.raises(ConfigurationError):
            CanaryPolicy(p99_regression_ratio=1.0)
        with pytest.raises(ConfigurationError):
            CanaryPolicy(goodput_drop_fraction=1.0)


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------
def make_controller(plan=None, **kwargs):
    plan = plan if plan is not None else manual_plan()
    ratios: dict[str, float] = {h: CHANGE.from_ratio for h in plan.hosts}
    actuator = CallbackEnvelopeActuator(
        lambda host, ratio: ratios.__setitem__(host, ratio)
    )
    timeline = kwargs.pop("timeline", FaultTimeline())
    controller = RolloutController(
        plan,
        actuator,
        analyzer=CanaryAnalyzer(CanaryPolicy(window_hours=1.0)),
        counters=RolloutCounters(),
        timeline=timeline,
        **kwargs,
    )
    return controller, actuator, ratios, timeline


class TestRolloutController:
    def test_healthy_rollout_completes_every_wave(self):
        controller, _, ratios, _ = make_controller()
        hosts = controller.plan.hosts
        for tick in range(1, 12):
            phase = controller.tick(float(tick), healthy_signals(hosts))
            if phase == PHASE_COMPLETE:
                break
        assert controller.phase == PHASE_COMPLETE
        assert all(r == CHANGE.to_ratio for r in ratios.values())
        c = controller.counters
        assert c.waves_started == c.waves_completed == 2
        assert c.envelope_pushes == 10
        assert c.completes == 1
        assert c.rollbacks == 0
        assert c.analyses_unhealthy == 0

    def test_crashing_canary_rolls_back_only_exposed_hosts(self):
        controller, actuator, ratios, timeline = make_controller()
        hosts = controller.plan.hosts
        controller.tick(1.0, healthy_signals(hosts))  # wave 0 pushed
        assert controller.phase == PHASE_APPLYING
        assert ratios["a"] == CHANGE.to_ratio
        phase = controller.tick(2.0, crashing_signals(hosts, {"a"}))
        assert phase == PHASE_ROLLED_BACK
        assert controller.done
        # Only the canary was ever exposed; everyone is back on from_ratio.
        assert controller.exposed_hosts == ("a",)
        assert all(r == CHANGE.from_ratio for r in ratios.values())
        c = controller.counters
        assert c.rollbacks == 1
        assert c.rollback_pushes == 1
        assert c.halts == 1  # the ladder walked through HALT on the way
        kinds = [e.kind for e in timeline.events]
        assert "rollout-escalate" in kinds
        # Ticking a finished rollout is a no-op.
        assert controller.tick(3.0, healthy_signals(hosts)) == PHASE_ROLLED_BACK

    def test_transient_soft_regression_halts_then_resumes(self):
        plan = manual_plan(canary_bake_ticks=8)
        controller, _, _, _ = make_controller(plan)
        hosts = plan.hosts
        soft = {
            h: (
                HostSignals(p99_s=1.0, goodput=20.0)
                if h == "a"
                else HostSignals(p99_s=0.2, goodput=100.0)
            )
            for h in hosts
        }
        controller.tick(1.0, healthy_signals(hosts))  # push wave 0
        controller.tick(2.0, soft)  # halt-grade margin (0.0)
        assert controller.ladder.stage is RolloutStage.HALT
        assert controller.counters.halts == 1
        baked_at_halt = controller.bake_progress
        controller.tick(3.0, soft)  # still halted: no bake credit
        assert controller.bake_progress == baked_at_halt
        # Two clean windows relax the halt (relax_clean_ticks=2)...
        controller.tick(4.0, healthy_signals(hosts))
        controller.tick(5.0, healthy_signals(hosts))
        assert controller.ladder.stage is RolloutStage.NORMAL
        assert controller.counters.resumes == 1
        # ...and baking continues to completion.
        for tick in range(6, 30):
            if controller.tick(float(tick), healthy_signals(hosts)) == PHASE_COMPLETE:
                break
        assert controller.phase == PHASE_COMPLETE

    def test_emergency_ladder_freezes_advance(self):
        emergency = EmergencyCoordinator()
        controller, _, ratios, timeline = make_controller(emergency=emergency)
        hosts = controller.plan.hosts
        emergency.observe(0.0, 1.0)  # deep thermal emergency
        assert emergency.emergency
        controller.tick(1.0, healthy_signals(hosts))
        assert controller.frozen
        assert controller.phase == PHASE_PENDING  # wave 0 never pushed
        assert all(r == CHANGE.from_ratio for r in ratios.values())
        assert controller.counters.freezes_emergency == 1
        assert controller.counters.frozen_ticks == 1
        assert [e.kind for e in timeline.events if "rollout" in e.kind] == [
            "rollout-freeze"
        ]
        # The emergency clears (hysteresis + clean dwell) and the
        # rollout thaws and proceeds.
        for step in range(2, 40):
            emergency.observe(float(step), 50.0)
        assert not emergency.emergency
        controller.tick(40.0, healthy_signals(hosts))
        assert not controller.frozen
        assert controller.phase == PHASE_APPLYING
        assert any(e.kind == "rollout-unfreeze" for e in timeline.events)

    def test_power_ladder_freeze_counts_per_tick(self):
        power = PowerEmergencyCoordinator()
        controller, _, _, _ = make_controller(power=power)
        hosts = controller.plan.hosts
        power.observe(0.0, 0.10)  # below the 12% cap threshold
        assert power.emergency
        for tick in range(1, 4):
            controller.tick(float(tick), healthy_signals(hosts))
        assert controller.counters.freezes_power == 3
        assert controller.counters.frozen_ticks == 3
        assert controller.counters.waves_started == 0

    def test_rollback_still_fires_while_frozen(self):
        # Freeze blocks advance, never retreat: a canary crashing during
        # a fleet emergency must still be rolled back immediately.
        power = PowerEmergencyCoordinator()
        controller, _, ratios, _ = make_controller(power=power)
        hosts = controller.plan.hosts
        controller.tick(1.0, healthy_signals(hosts))  # wave 0 pushed
        power.observe(1.5, 0.10)  # emergency starts after the push
        phase = controller.tick(2.0, crashing_signals(hosts, {"a"}))
        assert phase == PHASE_ROLLED_BACK
        assert ratios["a"] == CHANGE.from_ratio
        assert controller.counters.frozen_ticks == 1
        assert controller.counters.rollbacks == 1

    def test_operator_hold_freezes_without_counters(self):
        controller, _, _, _ = make_controller()
        hosts = controller.plan.hosts
        controller.hold()
        controller.tick(1.0, healthy_signals(hosts))
        assert controller.frozen
        assert controller.counters.waves_started == 0
        assert controller.counters.frozen_ticks == 1
        controller.release()
        controller.tick(2.0, healthy_signals(hosts))
        assert not controller.frozen
        assert controller.counters.waves_started == 1

    def test_quarantined_hosts_are_excluded_from_waves_and_cohorts(self):
        hosts = tuple("abcdefghij")
        health = FleetHealthCoordinator(
            hosts, detectors={h: DriftDetector() for h in hosts}
        )
        # Quarantine one wave-1 host (a 20-CE spike goes straight past
        # QUARANTINE) — it must be skipped by pushes and cohorts alike.
        health.tick(1.0, 1.0, [MachineCheckEvent(0.0, "c", "ce", count=20)])
        assert not health.in_service("c")
        controller, _, ratios, _ = make_controller(health=health)
        for tick in range(1, 12):
            if controller.tick(float(tick), healthy_signals(hosts)) == PHASE_COMPLETE:
                break
        assert controller.phase == PHASE_COMPLETE
        assert "c" not in controller.exposed_hosts
        assert ratios["c"] == CHANGE.from_ratio  # never pushed
        assert controller.counters.envelope_pushes == 9
        assert controller.counters.cohort_excluded_hosts > 0

    def test_health_budget_breach_freezes(self):
        hosts = tuple("abcdefghij")
        health = FleetHealthCoordinator(
            hosts, detectors={h: DriftDetector() for h in hosts}
        )
        # Drain 3/10 hosts (the coordinator's own gating stops there):
        # past the rollout's default freeze line of half the 34% budget.
        health.tick(
            1.0,
            1.0,
            [MachineCheckEvent(0.0, h, "ce", count=20) for h in "cdef"],
        )
        assert health.out_of_service_fraction() >= 0.17
        controller, _, _, _ = make_controller(health=health)
        controller.tick(1.0, healthy_signals(hosts))
        assert controller.frozen
        assert controller.counters.freezes_health == 1
        assert controller.counters.waves_started == 0

    def test_stalled_wave_rolls_back(self):
        controller, actuator, ratios, timeline = make_controller()
        hosts = controller.plan.hosts
        actuator.inject_stall("a", ticks=10)
        controller.tick(1.0, healthy_signals(hosts))  # push wedges
        assert actuator.pending_hosts() == ("a",)
        controller.tick(2.0, healthy_signals(hosts))
        controller.tick(3.0, healthy_signals(hosts))
        phase = controller.tick(4.0, healthy_signals(hosts))
        # max_apply_ticks=3 unconfirmed ticks after the push: the stall
        # forced the rollback rung.
        assert phase == PHASE_ROLLED_BACK
        assert controller.counters.stalls == 1
        assert any(e.kind == "rollout-stalled" for e in timeline.events)
        # The emergency rollback punched through the wedged agent.
        assert ratios["a"] == CHANGE.from_ratio
        assert actuator.pending_hosts() == ()

    def test_short_stall_is_tolerated(self):
        controller, actuator, _, timeline = make_controller()
        hosts = controller.plan.hosts
        actuator.inject_stall("a", ticks=1)
        for tick in range(1, 12):
            if controller.tick(float(tick), healthy_signals(hosts)) == PHASE_COMPLETE:
                break
        assert controller.phase == PHASE_COMPLETE
        assert controller.counters.stalls == 0
        assert not any(e.kind == "rollout-stalled" for e in timeline.events)

    def test_snapshot_restore_round_trip_is_bit_identical(self):
        first, _, _, _ = make_controller()
        hosts = first.plan.hosts
        for tick in range(1, 4):
            first.tick(float(tick), healthy_signals(hosts))
        state = first.snapshot()

        second, _, _, _ = make_controller()
        second.restore(state)
        assert second.snapshot() == state
        # Both controllers evolve identically from the restore point.
        for tick in range(4, 12):
            a = first.tick(float(tick), healthy_signals(hosts))
            b = second.tick(float(tick), healthy_signals(hosts))
            assert a == b
        assert first.snapshot() == second.snapshot()

    def test_restore_rejects_foreign_change(self):
        controller, _, _, _ = make_controller()
        state = controller.snapshot()
        state["change_id"] = "someone-elses-change"
        with pytest.raises(RolloutError, match="someone-elses-change"):
            controller.restore(state)

    def test_resume_without_journal_is_an_error(self):
        controller, _, _, _ = make_controller()
        with pytest.raises(RolloutError, match="journal"):
            controller.resume()

    def test_dedup_push_is_not_a_second_actuation(self):
        applied = []
        actuator = CallbackEnvelopeActuator(lambda h, r: applied.append((h, r)))
        assert actuator.push("a", 1.27) is True
        assert actuator.push("a", 1.27) is False
        assert applied == [("a", 1.27)]
        assert actuator.dedup_hits == 1

    def test_stall_validation(self):
        actuator = CallbackEnvelopeActuator(lambda h, r: None)
        with pytest.raises(RolloutError):
            actuator.inject_stall("a", ticks=0)


# ----------------------------------------------------------------------
# Fault injectors
# ----------------------------------------------------------------------
class TestRolloutInjectors:
    def _campaign(self, specs, seed=3):
        simulator = Simulator(seed=seed)
        plan = FaultPlan(seed=seed, scenario="rollout-test", specs=tuple(specs))
        return simulator, FaultCampaign(simulator, plan)

    def test_bad_envelope_fires_callback_and_timeline(self):
        simulator, campaign = self._campaign(
            [
                FaultSpec(
                    kind=FaultKind.BAD_ENVELOPE,
                    target="fleet",
                    at_s=5.0,
                    magnitude=0.07,
                )
            ]
        )
        fired = []
        register_rollout_injectors(
            campaign,
            on_bad_envelope=lambda target, magnitude: fired.append(
                (simulator.now, target, magnitude)
            ),
            on_stall=lambda target, duration: None,
        )
        campaign.arm()
        simulator.run(until=10.0)
        assert fired == [(5.0, "fleet", 0.07)]
        events = campaign.timeline.of_kind(FaultKind.BAD_ENVELOPE.value)
        assert len(events) == 1
        assert "+0.07" in events[0].detail

    def test_rollout_stall_fires_with_duration(self):
        simulator, campaign = self._campaign(
            [
                FaultSpec(
                    kind=FaultKind.ROLLOUT_STALL,
                    target="host-3",
                    at_s=2.0,
                    duration_s=4.0,
                )
            ]
        )
        stalls = []
        register_rollout_injectors(
            campaign,
            on_bad_envelope=lambda target, magnitude: None,
            on_stall=lambda target, duration: stalls.append((target, duration)),
        )
        campaign.arm()
        simulator.run(until=10.0)
        assert stalls == [("host-3", 4.0)]
        assert len(campaign.timeline.of_kind(FaultKind.ROLLOUT_STALL.value)) == 1

    def test_spec_validation(self):
        simulator, campaign = self._campaign(
            [FaultSpec(kind=FaultKind.BAD_ENVELOPE, target="fleet", at_s=1.0)]
        )
        register_rollout_injectors(
            campaign,
            on_bad_envelope=lambda target, magnitude: None,
            on_stall=lambda target, duration: None,
        )
        with pytest.raises(FaultError):
            campaign.arm()  # bad-envelope without a magnitude

    def test_injector_rejects_foreign_kinds(self):
        with pytest.raises(FaultError):
            RolloutFaultInjector(
                FaultKind.VM_CRASH, on_bad_envelope=lambda t, m: None
            )


# ----------------------------------------------------------------------
# Bus actuator
# ----------------------------------------------------------------------
def make_bus_actuator(hosts=("h0", "h1"), seed=1, **bus_kwargs):
    simulator = Simulator(seed=seed)
    channel = LossyChannel(simulator, seed=seed)
    bus = CommandBus(simulator, channel, seed=seed, **bus_kwargs)
    applied = []
    for host in hosts:
        bus.attach(
            HostAgent(
                simulator,
                host,
                channel,
                base_frequency_ghz=1.0,
                apply_frequency=lambda ratio, h=host: applied.append((h, ratio)),
                counters=bus.counters,
            )
        )
    return simulator, channel, bus, BusEnvelopeActuator(bus), applied


class TestBusEnvelopeActuator:
    def test_push_confirms_through_the_ack_path(self):
        simulator, _, bus, actuator, applied = make_bus_actuator()
        assert actuator.push("h0", 1.27) is True
        assert actuator.pending_hosts() == ("h0",)
        simulator.run(until=1.0)
        assert actuator.pending_hosts() == ()
        assert actuator.confirmed_ratio("h0") == pytest.approx(1.27)
        assert applied == [("h0", 1.27)]

    def test_confirmed_repush_is_deduplicated(self):
        simulator, _, _, actuator, applied = make_bus_actuator()
        actuator.push("h0", 1.27)
        simulator.run(until=1.0)
        assert actuator.push("h0", 1.27) is False
        assert actuator.dedup_hits == 1
        assert len(applied) == 1

    def test_emergency_rollback_bypasses_an_open_breaker(self):
        simulator, channel, bus, actuator, applied = make_bus_actuator(
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_threshold=2,
            breaker_open_s=1000.0,
        )
        channel.partition("h0", duration_s=20.0)
        for _ in range(3):
            actuator.push("h0", 1.27)
            simulator.run(until=simulator.now + 5.0)
        assert bus.breaker_for("h0").is_open
        assert actuator.failures >= 1
        # Non-emergency pushes fast-fail on the open breaker; the
        # emergency rollback goes out regardless and lands post-heal.
        simulator.run(until=25.0)  # partition healed, breaker still open
        actuator.push("h0", 1.23, emergency=True)
        simulator.run(until=30.0)
        assert bus.counters.emergency_bypasses >= 1
        assert actuator.confirmed_ratio("h0") == pytest.approx(1.23)
        assert ("h0", 1.23) in applied
