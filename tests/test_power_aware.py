"""Tests for the shared-power-budget frequency arbitration."""

import pytest

from repro.autoscale import FrequencyRequest, PowerBudgetCoordinator
from repro.errors import ConfigurationError, PowerBudgetExceeded


def request(group, priority, ghz=4.1, cores=8.0):
    return FrequencyRequest(group=group, priority=priority, requested_ghz=ghz, busy_cores=cores)


class TestPowerBudgetCoordinator:
    def test_generous_budget_grants_everything(self):
        coordinator = PowerBudgetCoordinator(budget_watts=500.0)
        grants = coordinator.arbitrate([request("a", 0), request("b", 10)])
        assert all(g.granted_ghz == pytest.approx(4.1) for g in grants)
        assert not any(g.throttled for g in grants)

    def test_low_priority_sheds_first(self):
        coordinator = PowerBudgetCoordinator(budget_watts=185.0)
        grants = {g.group: g for g in coordinator.arbitrate(
            [request("critical", 10), request("batch", 0)]
        )}
        assert grants["critical"].granted_ghz == pytest.approx(4.1)
        assert grants["batch"].granted_ghz < 4.1
        assert grants["batch"].throttled
        assert not grants["critical"].throttled

    def test_projection_respects_budget(self):
        coordinator = PowerBudgetCoordinator(budget_watts=185.0)
        requests = [request("critical", 10), request("batch", 0)]
        grants = coordinator.arbitrate(requests)
        projected = coordinator.projected_watts(
            {g.group: g.granted_ghz for g in grants}, requests
        )
        assert projected <= 185.0

    def test_tight_budget_sheds_both(self):
        coordinator = PowerBudgetCoordinator(budget_watts=172.0)
        grants = {g.group: g for g in coordinator.arbitrate(
            [request("critical", 10), request("batch", 0)]
        )}
        assert grants["batch"].granted_ghz == pytest.approx(3.4)
        assert grants["critical"].granted_ghz < 4.1

    def test_impossible_budget_raises(self):
        coordinator = PowerBudgetCoordinator(budget_watts=100.0)
        with pytest.raises(PowerBudgetExceeded):
            coordinator.arbitrate([request("a", 0), request("b", 1)])

    def test_requests_clamped_into_ladder(self):
        coordinator = PowerBudgetCoordinator(budget_watts=500.0)
        grants = coordinator.arbitrate([request("a", 0, ghz=5.0)])
        assert grants[0].granted_ghz == pytest.approx(4.1)
        grants = coordinator.arbitrate([request("a", 0, ghz=1.0)])
        assert grants[0].granted_ghz == pytest.approx(3.4)

    def test_empty_request_list(self):
        assert PowerBudgetCoordinator(budget_watts=100.0).arbitrate([]) == []

    def test_duplicate_groups_rejected(self):
        coordinator = PowerBudgetCoordinator(budget_watts=500.0)
        with pytest.raises(ConfigurationError):
            coordinator.arbitrate([request("a", 0), request("a", 1)])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerBudgetCoordinator(budget_watts=0.0)
        with pytest.raises(ConfigurationError):
            FrequencyRequest("a", 0, requested_ghz=0.0, busy_cores=1.0)
        with pytest.raises(ConfigurationError):
            FrequencyRequest("a", 0, requested_ghz=3.4, busy_cores=-1.0)

    def test_idle_groups_cost_nothing_extra(self):
        coordinator = PowerBudgetCoordinator(budget_watts=120.0)
        grants = coordinator.arbitrate(
            [request("idle", 0, cores=0.0), request("busy", 1, cores=4.0)]
        )
        by_group = {g.group: g for g in grants}
        assert by_group["busy"].granted_ghz == pytest.approx(4.1)
