"""Tests for the DES resource primitives (Resource, Store)."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import Resource, Simulator, Store


class TestResource:
    def test_grants_within_capacity_immediately(self):
        simulator = Simulator()
        resource = Resource(simulator, capacity=2)
        grants = []
        resource.acquire(lambda: grants.append("a"))
        resource.acquire(lambda: grants.append("b"))
        simulator.run()
        assert grants == ["a", "b"]
        assert resource.in_use == 2
        assert resource.available == 0

    def test_queues_beyond_capacity(self):
        simulator = Simulator()
        resource = Resource(simulator, capacity=1)
        grants = []
        resource.acquire(lambda: grants.append("first"))
        resource.acquire(lambda: grants.append("second"))
        simulator.run()
        assert grants == ["first"]
        assert resource.queue_length == 1
        resource.release()
        simulator.run()
        assert grants == ["first", "second"]

    def test_fifo_order(self):
        simulator = Simulator()
        resource = Resource(simulator, capacity=1)
        grants = []
        resource.acquire(lambda: grants.append(0))
        for index in range(1, 4):
            resource.acquire(lambda i=index: grants.append(i))
        simulator.run()
        for _ in range(3):
            resource.release()
            simulator.run()
        assert grants == [0, 1, 2, 3]

    def test_multi_unit_acquisition(self):
        simulator = Simulator()
        resource = Resource(simulator, capacity=4)
        grants = []
        resource.acquire(lambda: grants.append("big"), amount=3)
        resource.acquire(lambda: grants.append("blocked"), amount=2)
        simulator.run()
        assert grants == ["big"]
        resource.release(amount=3)
        simulator.run()
        assert grants == ["big", "blocked"]

    def test_cancelled_waiter_skipped(self):
        simulator = Simulator()
        resource = Resource(simulator, capacity=1)
        grants = []
        resource.acquire(lambda: grants.append("holder"))
        waiter = resource.acquire(lambda: grants.append("cancelled"))
        resource.acquire(lambda: grants.append("next"))
        simulator.run()
        waiter.cancelled = True
        resource.release()
        simulator.run()
        assert grants == ["holder", "next"]

    def test_over_release_rejected(self):
        simulator = Simulator()
        resource = Resource(simulator, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_validation(self):
        simulator = Simulator()
        with pytest.raises(ConfigurationError):
            Resource(simulator, capacity=0)
        resource = Resource(simulator, capacity=2)
        with pytest.raises(ConfigurationError):
            resource.acquire(lambda: None, amount=3)

    def test_grant_counter(self):
        simulator = Simulator()
        resource = Resource(simulator, capacity=2)
        resource.acquire(lambda: None)
        resource.acquire(lambda: None)
        simulator.run()
        assert resource.total_grants == 2


class TestStore:
    def test_put_then_get(self):
        simulator = Simulator()
        store = Store(simulator)
        received = []
        store.put("x")
        store.get(received.append)
        simulator.run()
        assert received == ["x"]

    def test_get_then_put_wakes_consumer(self):
        simulator = Simulator()
        store = Store(simulator)
        received = []
        store.get(received.append)
        simulator.run()
        assert received == []
        store.put("late")
        simulator.run()
        assert received == ["late"]

    def test_fifo_items(self):
        simulator = Simulator()
        store = Store(simulator)
        for item in ("a", "b", "c"):
            store.put(item)
        received = []
        for _ in range(3):
            store.get(received.append)
        simulator.run()
        assert received == ["a", "b", "c"]

    def test_bounded_store_drops(self):
        simulator = Simulator()
        store = Store(simulator, max_items=1)
        assert store.put("kept")
        assert not store.put("dropped")
        assert store.dropped == 1
        assert len(store) == 1

    def test_validation(self):
        simulator = Simulator()
        with pytest.raises(ConfigurationError):
            Store(simulator, max_items=0)
