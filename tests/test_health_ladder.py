"""Tests for the fleet health ladder (derate → quarantine → screen → verdict).

Drives :class:`~repro.health.coordinator.FleetHealthCoordinator` with
synthetic machine-check windows so every transition is scripted: the
full walk down and back, the screened-envelope precedence over blanket
derates (a regression test for the derate-raises-envelope bug), the
bounded re-arm budget, the out-of-service capacity budget, and the
audit charge path.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.timeline import FaultTimeline
from repro.health import (
    HEALTH_DEFER,
    HEALTH_VERDICT,
    DriftDetector,
    FleetHealthCoordinator,
    HealthLadderConfig,
    HealthStage,
    MachineCheckEvent,
    ScreeningScheduler,
    SiliconPart,
)
from repro.reliability.stability import StabilityModel
from repro.telemetry.counters import HealthCounters

MODEL = StabilityModel(
    stable_margin=1.23,
    crash_margin=1.35,
    base_error_rate_per_hour=0.5,
    ramp_width=0.02,
    background_error_rate_per_hour=0.0127,
)

HOSTS = ("a", "b", "c", "d")


def _coordinator(offsets=None, config=None, hosts=HOSTS):
    """A 4-host coordinator over scripted silicon with a 1 h window."""
    offsets = offsets or {}
    parts = {
        host: SiliconPart(host, nominal=MODEL, margin_offset=offsets.get(host, 0.0))
        for host in hosts
    }
    timeline = FaultTimeline()
    counters = HealthCounters()
    calls: list[tuple] = []
    coordinator = FleetHealthCoordinator(
        hosts,
        config=config,
        detectors={host: DriftDetector() for host in hosts},
        screening=ScreeningScheduler(parts),
        nominal_envelope=1.23,
        timeline=timeline,
        counters=counters,
        on_derate=lambda host, envelope: calls.append(("derate", host, envelope)) or "",
        on_quarantine=lambda host: calls.append(("quarantine", host)) or "drained",
        on_reinstate=lambda host, envelope: calls.append(("reinstate", host, envelope))
        or "",
        on_retire=lambda host: calls.append(("retire", host)) or "",
    )
    return coordinator, timeline, counters, calls


def _ce(host, count, t=0.0):
    return [MachineCheckEvent(t, host, "ce", count=count)]


def _run_quiet(coordinator, start, ticks):
    """Advance ``ticks`` clean 1 h windows from ``start``."""
    for step in range(ticks):
        coordinator.tick(start + step + 1.0, 1.0, [])
    return start + ticks


class TestFullWalk:
    def test_spike_escalates_straight_to_screen(self):
        coordinator, timeline, counters, calls = _coordinator()
        coordinator.tick(1.0, 1.0, _ce("a", 20))
        assert coordinator.stage("a") is HealthStage.SCREEN
        assert not coordinator.in_service("a")
        assert coordinator.serving_hosts() == ["b", "c", "d"]
        assert counters.detector_fires == 1
        assert counters.derates == 1
        assert counters.quarantines == 1
        assert counters.screens == 1
        # Every rung's action fired on the way down, in order.
        assert [call[0] for call in calls] == ["derate", "quarantine"]
        # The blanket derate cut from nominal.
        assert coordinator.envelope("a") == pytest.approx(1.23 - 0.06)

    def test_verdict_reinstates_at_the_screened_envelope(self):
        coordinator, timeline, counters, calls = _coordinator()
        coordinator.tick(1.0, 1.0, _ce("a", 20))
        # The screen starts on the next poll (t=2) and takes 4 h; the
        # ladder holds at SCREEN while the statistic is unresolved, and
        # the verdict lands on the t=6 tick.
        _run_quiet(coordinator, 1.0, 5)
        assert coordinator.stage("a") is HealthStage.SCREEN
        verdicts = [e for e in timeline.events if e.kind == HEALTH_VERDICT]
        assert len(verdicts) == 1
        assert verdicts[0].target == "a"
        assert "reinstate" in verdicts[0].detail
        assert counters.screens_completed == 1
        # Relaxation walks one rung per 3 clean ticks: screen at t=8,
        # quarantine (reinstate) at t=11, derate at t=14.
        _run_quiet(coordinator, 6.0, 8)
        assert coordinator.stage("a") is HealthStage.HEALTHY
        assert coordinator.in_service("a")
        assert counters.reinstates == 1
        assert coordinator.rearms("a") == 1
        screened = coordinator.envelope("a")
        # The screened envelope survives the derate release and sits a
        # guard band under the (healthy) part's true margin.
        assert screened is not None
        assert 1.15 < screened < 1.23
        reinstate = [call for call in calls if call[0] == "reinstate"]
        assert reinstate == [("reinstate", "a", pytest.approx(screened))]

    def test_relaxation_restores_nominal_when_never_screened(self):
        coordinator, _, counters, _ = _coordinator()
        # A mild blip: derate only (statistic 4.75 stays under 6).
        coordinator.tick(1.0, 1.0, _ce("a", 5))
        assert coordinator.stage("a") is HealthStage.DERATE
        assert coordinator.in_service("a")
        # Slack drains 0.25 err/tick; the statistic reaches the
        # hysteresis band (<= 1.0) after 15 quiet ticks and the derate
        # releases to nominal after 3 more clean ticks.
        _run_quiet(coordinator, 1.0, 20)
        assert coordinator.stage("a") is HealthStage.HEALTHY
        assert coordinator.envelope("a") is None


class TestScreenedEnvelopePrecedence:
    def _walk_to_screened(self, coordinator):
        coordinator.tick(1.0, 1.0, _ce("a", 20))
        _run_quiet(coordinator, 1.0, 13)
        assert coordinator.stage("a") is HealthStage.HEALTHY
        screened = coordinator.envelope("a")
        assert screened is not None
        return screened

    def test_a_rederate_never_raises_a_screened_envelope(self):
        # Regression: _engage_derate once cut from the *nominal*
        # envelope, so a re-derate on a heavily-drifted screened host
        # RAISED its published envelope back into the danger band.
        coordinator, _, _, _ = _coordinator(offsets={"a": -0.10})
        screened = self._walk_to_screened(coordinator)
        assert screened == pytest.approx(1.09, abs=0.02)
        coordinator.tick(20.0, 1.0, _ce("a", 4))
        assert coordinator.stage("a") is HealthStage.DERATE
        derated = coordinator.envelope("a")
        assert derated <= screened
        assert derated == pytest.approx(max(1.0, screened - 0.06))

    def test_derate_release_retains_the_screened_envelope(self):
        coordinator, _, _, _ = _coordinator(offsets={"a": -0.10})
        screened = self._walk_to_screened(coordinator)
        coordinator.tick(20.0, 1.0, _ce("a", 4))
        _run_quiet(coordinator, 20.0, 15)
        assert coordinator.stage("a") is HealthStage.HEALTHY
        assert coordinator.envelope("a") == pytest.approx(screened)


class TestVerdicts:
    def test_rearm_budget_spent_retires_instead_of_reinstating(self):
        coordinator, timeline, counters, calls = _coordinator(
            config=HealthLadderConfig(max_rearms=0)
        )
        coordinator.tick(1.0, 1.0, _ce("a", 20))
        _run_quiet(coordinator, 1.0, 5)
        assert coordinator.stage("a") is HealthStage.RETIRE
        assert coordinator.retired_hosts() == frozenset({"a"})
        assert counters.retires == 1
        assert counters.reinstates == 0
        assert ("retire", "a") in calls
        verdict = [e for e in timeline.events if e.kind == HEALTH_VERDICT][0]
        assert "rearm budget spent" in verdict.detail

    def test_no_headroom_verdict_retires(self):
        # Effective margin 1.03: the screen estimate minus the guard
        # band lands at 1.0 < min_reinstate_envelope.
        coordinator, timeline, counters, _ = _coordinator(offsets={"a": -0.20})
        coordinator.tick(1.0, 1.0, _ce("a", 20))
        _run_quiet(coordinator, 1.0, 5)
        assert coordinator.stage("a") is HealthStage.RETIRE
        verdict = [e for e in timeline.events if e.kind == HEALTH_VERDICT][0]
        assert "too low" in verdict.detail
        assert coordinator.envelope("a") == 1.0

    def test_retired_is_pinned_forever(self):
        coordinator, _, counters, _ = _coordinator(
            config=HealthLadderConfig(max_rearms=0)
        )
        coordinator.tick(1.0, 1.0, _ce("a", 20))
        _run_quiet(coordinator, 1.0, 30)
        assert coordinator.stage("a") is HealthStage.RETIRE
        assert not coordinator.in_service("a")
        assert counters.retires == 1  # no re-retirement churn
        # Retirees are a permanent capacity decision, not a transient
        # out-of-service excursion.
        assert coordinator.out_of_service_fraction() == 0.0


class TestCapacityBudget:
    def test_quarantine_beyond_budget_is_deferred_to_derate(self):
        coordinator, timeline, counters, _ = _coordinator(hosts=("a", "b", "c"))
        coordinator.tick(1.0, 1.0, _ce("a", 20))
        assert coordinator.stage("a") is HealthStage.SCREEN
        # Budget is 0.34 * 3 ≈ 1 host: b's quarantine must defer.
        coordinator.tick(2.0, 1.0, _ce("b", 20))
        assert coordinator.stage("b") is HealthStage.DERATE
        assert coordinator.in_service("b")
        assert counters.quarantines_deferred >= 1
        defers = [e for e in timeline.events if e.kind == HEALTH_DEFER]
        assert defers and defers[0].target == "b"
        assert "budget spent" in defers[0].detail
        assert coordinator.out_of_service_fraction() <= 0.34

    def test_deferred_host_drains_once_the_budget_frees(self):
        coordinator, _, counters, _ = _coordinator(hosts=("a", "b", "c"))
        coordinator.tick(1.0, 1.0, _ce("a", 20))
        coordinator.tick(2.0, 1.0, _ce("b", 20))
        assert coordinator.stage("b") is HealthStage.DERATE
        # a's screen verdict reinstates it; once a walks below
        # QUARANTINE the budget frees and b's held statistic drains it.
        _run_quiet(coordinator, 2.0, 12)
        assert coordinator.stage("a") < HealthStage.QUARANTINE
        assert coordinator.stage("b") >= HealthStage.QUARANTINE


class TestChargesAndEvents:
    def test_audit_charges_escalate_like_error_mass(self):
        coordinator, _, counters, _ = _coordinator()
        coordinator.charge_sdc("a")  # 8 equivalent errors
        coordinator.tick(1.0, 1.0, [])
        assert counters.detector_fires == 1
        assert coordinator.stage("a") >= HealthStage.QUARANTINE

    def test_crashes_charge_their_equivalent_error_mass(self):
        coordinator, _, counters, _ = _coordinator()
        coordinator.tick(1.0, 1.0, [MachineCheckEvent(1.0, "a", "crash")])
        assert counters.crashes == 1
        # One crash (8 equivalent errors) clears quarantine on its own.
        assert coordinator.stage("a") >= HealthStage.QUARANTINE

    def test_sdc_events_are_ground_truth_only(self):
        coordinator, _, counters, _ = _coordinator()
        coordinator.tick(1.0, 1.0, [MachineCheckEvent(1.0, "a", "sdc", count=3)])
        assert counters.sdc_events == 3
        # Silent by definition: the detector heard nothing.
        assert coordinator.stage("a") is HealthStage.HEALTHY
        assert counters.detector_fires == 0

    def test_timeline_events_are_host_tagged(self):
        coordinator, timeline, _, _ = _coordinator()
        coordinator.tick(1.0, 1.0, _ce("a", 20))
        assert timeline.events
        assert all(event.target == "a" for event in timeline.events)

    def test_charge_unknown_host_is_rejected(self):
        coordinator, _, _, _ = _coordinator()
        with pytest.raises(ConfigurationError):
            coordinator.charge_sdc("zz")


class TestValidation:
    def test_thresholds_must_be_strictly_increasing(self):
        with pytest.raises(ConfigurationError):
            HealthLadderConfig(derate_excess_errors=6.0, quarantine_excess_errors=6.0)
        with pytest.raises(ConfigurationError):
            HealthLadderConfig(max_out_of_service_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HealthLadderConfig(min_reinstate_envelope=0.9)
        with pytest.raises(ConfigurationError):
            HealthLadderConfig(max_rearms=-1)

    def test_fleet_and_detector_wiring_validated(self):
        with pytest.raises(ConfigurationError):
            FleetHealthCoordinator([])
        with pytest.raises(ConfigurationError):
            FleetHealthCoordinator(
                ["a", "b"], detectors={"a": DriftDetector()}
            )
        coordinator, _, _, _ = _coordinator()
        with pytest.raises(ConfigurationError):
            coordinator.tick(1.0, 0.0, [])
