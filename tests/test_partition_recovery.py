"""Chaos acceptance: the partition-recovery experiment's guarantees.

Under a seeded partition that swallows the spike-end down-clock, the
naive stack must leave host-1 overclocked far past the lease window
while the robust stack reverts within ``lease_misses x
heartbeat_interval`` (plus one check tick) — asserted across a seed
matrix. The fault-timeline signature is the reproducibility contract:
the same seed must reproduce it bit-identically, including through the
``python -m repro partition --seed N`` CLI path.
"""

import os

import pytest

from repro.cli import main as cli_main
from repro.experiments.partition_recovery import (
    BASE_GHZ,
    HEARTBEAT_INTERVAL_S,
    LEASE_MISSES,
    PARTITION_AT_S,
    run_partition_mode,
    run_partition_recovery,
)

SEEDS = tuple(
    int(token) for token in os.environ.get("REPRO_CHAOS_SEEDS", "1 2 7").split()
)

#: The dead-man guarantee, in simulated seconds after the partition
#: opens: lease_misses missed heartbeats plus one lease-check tick.
LEASE_BOUND_S = (LEASE_MISSES + 1) * HEARTBEAT_INTERVAL_S


@pytest.mark.parametrize("seed", SEEDS)
def test_naive_stays_overclocked_while_robust_reverts(seed):
    comparison = run_partition_recovery(seed=seed)
    naive, robust = comparison.naive, comparison.robust

    # Naive: the down-clock fell into the partition and nothing else
    # exists to undo the overclock — host-1 stays hot past the lease
    # window (in fact to the end of the run) and the deploy is lost.
    assert naive.lease_reverts == 0
    assert naive.reconcile_repairs == 0
    assert naive.deploy_landed_at_s is None
    if naive.host1_revert_at_s is not None:
        assert naive.host1_revert_at_s > PARTITION_AT_S + LEASE_BOUND_S
    assert naive.excess_overclock_s > LEASE_BOUND_S

    # Robust: the dead-man lease fires within its bound, the breaker
    # records the dark host, and the reconciler re-lands the deploy.
    assert robust.lease_reverts >= 1
    assert robust.host1_revert_at_s is not None
    assert robust.host1_revert_at_s <= PARTITION_AT_S + LEASE_BOUND_S
    assert robust.breaker_opens >= 1
    assert robust.reconcile_repairs >= 1
    assert robust.deploy_landed_at_s is not None
    assert robust.excess_overclock_s < naive.excess_overclock_s


@pytest.mark.parametrize("seed", SEEDS)
def test_timeline_signature_is_bit_identical_across_reruns(seed):
    first = run_partition_mode(robust=True, seed=seed)
    again = run_partition_mode(robust=True, seed=seed)
    assert first.timeline_signature == again.timeline_signature
    assert first.timeline == again.timeline
    # The naive run sees different machinery, hence a different story.
    naive = run_partition_mode(robust=False, seed=seed)
    assert naive.timeline_signature != first.timeline_signature


def test_reseeding_rerolls_nothing_structural():
    """Different seeds change jitter draws, never the guarantees."""
    reverts = set()
    for seed in SEEDS:
        robust = run_partition_mode(robust=True, seed=seed)
        assert robust.host1_revert_at_s is not None
        reverts.add(robust.host1_revert_at_s)
        assert robust.host1_revert_at_s <= PARTITION_AT_S + LEASE_BOUND_S
    # The lease clock is heartbeat-driven, so the revert instant is the
    # same in every seed — the partition timing, not the jitter, owns it.
    assert len(reverts) == 1


def test_host1_lands_back_on_base_frequency():
    robust = run_partition_mode(robust=True, seed=1)
    assert robust.timeline  # the campaign actually recorded events
    kinds = {event.kind for event in robust.timeline}
    assert {"cmd-partition", "lease-expired", "breaker-open"} <= kinds
    # The lease fired before the scripted down-clock even happened
    # (partition at t=100 + 12 s bound < spike end at t=120), so host-1
    # spends zero seconds overclocked past the down-clock.
    assert robust.host1_revert_at_s is not None
    assert robust.host1_revert_at_s < 120.0
    assert robust.excess_overclock_s == pytest.approx(0.0, abs=1e-9)


def test_cli_partition_output_is_reproducible(capsys):
    """`python -m repro partition --seed N` byte-identical across runs."""
    assert cli_main(["partition", "--seed", "3"]) == 0
    first = capsys.readouterr().out
    assert cli_main(["partition", "--seed", "3"]) == 0
    again = capsys.readouterr().out
    assert first == again
    assert "Partition recovery" in first
    assert "naive timeline (signature" in first
    assert "robust timeline (signature" in first
    # A different seed re-rolls the jittered retry schedule, which shows
    # up in the rendered timelines' signatures.
    assert cli_main(["partition", "--seed", "4"]) == 0
    other = capsys.readouterr().out
    assert other != first


def test_excess_overclock_integration_uses_base_ghz():
    naive = run_partition_mode(robust=False, seed=1)
    # Naive host-1 never reverts: overclocked from the swallowed
    # down-clock (t=120) to the horizon (t=300).
    assert naive.excess_overclock_s == pytest.approx(180.0, abs=1.0)
    assert BASE_GHZ < 4.0
