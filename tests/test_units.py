"""Tests for unit conversions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_celsius_kelvin_roundtrip():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert units.kelvin_to_celsius(373.15) == pytest.approx(100.0)


@given(st.floats(min_value=-200, max_value=2000))
def test_celsius_kelvin_inverse(temp):
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(temp)) == pytest.approx(temp)


def test_frequency_conversions():
    assert units.ghz_to_mhz(3.4) == pytest.approx(3400.0)
    assert units.mhz_to_ghz(3400.0) == pytest.approx(3.4)


@given(st.floats(min_value=0.001, max_value=100))
def test_frequency_inverse(freq):
    assert units.mhz_to_ghz(units.ghz_to_mhz(freq)) == pytest.approx(freq)


def test_year_conversions():
    assert units.years_to_hours(1.0) == pytest.approx(8766.0)
    assert units.hours_to_years(8766.0) == pytest.approx(1.0)
    assert units.years_to_seconds(1.0) == pytest.approx(8766.0 * 3600.0)


def test_energy_conversions():
    assert units.watt_seconds_to_kwh(3.6e6) == pytest.approx(1.0)
    assert units.kwh_to_joules(2.0) == pytest.approx(7.2e6)


def test_time_helpers():
    assert units.minutes(3) == 180.0
    assert units.hours(2) == 7200.0


def test_frequency_bins_endpoints_and_count():
    bins = units.frequency_bins(3.4, 4.1, 8)
    assert len(bins) == 8
    assert bins[0] == pytest.approx(3.4)
    assert bins[-1] == pytest.approx(4.1)
    # evenly spaced
    gaps = [b - a for a, b in zip(bins, bins[1:])]
    assert all(math.isclose(g, gaps[0]) for g in gaps)


def test_frequency_bins_validation():
    with pytest.raises(ValueError):
        units.frequency_bins(3.4, 4.1, 1)
    with pytest.raises(ValueError):
        units.frequency_bins(4.1, 3.4, 4)


@given(
    st.floats(min_value=0.5, max_value=5.0),
    st.floats(min_value=0.01, max_value=3.0),
    st.integers(min_value=2, max_value=32),
)
def test_frequency_bins_monotone(low, span, count):
    bins = units.frequency_bins(low, low + span, count)
    assert all(b > a for a, b in zip(bins, bins[1:]))
    assert len(bins) == count
