"""Write-ahead journal: chain validation, torn tails, SIGKILL resume.

The headline chaos test SIGKILLs a journaled campaign subprocess
mid-sweep, then resumes it in-process and checks the recovered results
are pickle-identical to an uninterrupted run — the crash-safety
contract of ``python -m repro sweep --resume``.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import RunJournal, SweepEngine, SweepTask, journal_path
from repro.engine.journal import GENESIS, _chain_digest
from repro.errors import JournalError

from . import walhelper

#: Watchdog for the subprocess chaos test (seconds); CI can widen it.
CHAOS_TIMEOUT_S = float(os.environ.get("CHAOS_TIMEOUT", "60"))


def _fast(x, seed=0):
    return x * 10 + seed % 7


def _tasks(n=4):
    return [
        SweepTask(fn=_fast, params={"x": i}, key=f"t{i}", seed_param="seed")
        for i in range(n)
    ]


class TestJournalBasics:
    def test_fresh_journal_records_and_replays(self, tmp_path):
        path = journal_path(tmp_path, "run1")
        with RunJournal(path, "run1") as journal:
            journal.record("key-a", "t0", {"v": 1})
            journal.record("key-b", "t1", [1, 2, 3])
            assert len(journal) == 2
        with RunJournal(path, "run1") as journal:
            assert journal.replayed == {"key-a": {"v": 1}, "key-b": [1, 2, 3]}

    def test_requires_run_id(self, tmp_path):
        with pytest.raises(JournalError):
            RunJournal(tmp_path / "x.wal", "")

    def test_record_requires_open(self, tmp_path):
        journal = RunJournal(tmp_path / "x.wal", "r")
        with pytest.raises(JournalError):
            journal.record("k", "t", 1)

    def test_double_open_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "x.wal", "r")
        journal.open()
        try:
            with pytest.raises(JournalError):
                journal.open()
        finally:
            journal.close()

    def test_run_id_mismatch_rejected(self, tmp_path):
        path = tmp_path / "x.wal"
        with RunJournal(path, "alpha"):
            pass
        with pytest.raises(JournalError, match="belongs to run"):
            RunJournal(path, "beta").open()


class TestChainValidation:
    def _write_journal(self, tmp_path, records=2):
        path = tmp_path / "chain.wal"
        with RunJournal(path, "chained") as journal:
            for i in range(records):
                journal.record(f"key{i}", f"t{i}", i)
        return path

    def test_chain_digests_link(self, tmp_path):
        path = self._write_journal(tmp_path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        chain = GENESIS
        for record in lines:
            expected = _chain_digest(chain, record["type"], record["body"])
            assert record["sha256"] == expected
            chain = expected

    def test_tampered_body_detected(self, tmp_path):
        path = self._write_journal(tmp_path, records=3)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["body"] = record["body"].replace("key0", "key9")
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="chain validation"):
            RunJournal(path, "chained").open()

    def test_reordered_records_detected(self, tmp_path):
        path = self._write_journal(tmp_path, records=3)
        lines = path.read_text().splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="chain validation"):
            RunJournal(path, "chained").open()

    def test_torn_final_line_truncated_and_resumes(self, tmp_path):
        path = self._write_journal(tmp_path, records=2)
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"type": "result", "body": "{\\"k')
        with RunJournal(path, "chained") as journal:
            assert set(journal.replayed) == {"key0", "key1"}
            journal.record("key2", "t2", 2)
        # The file is whole again: replay sees all three records.
        with RunJournal(path, "chained") as journal:
            assert set(journal.replayed) == {"key0", "key1", "key2"}

    def test_mid_file_garbage_rejected(self, tmp_path):
        path = self._write_journal(tmp_path, records=3)
        lines = path.read_text().splitlines()
        lines[1] = "not json at all"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            RunJournal(path, "chained").open()

    def test_killed_during_creation_starts_fresh(self, tmp_path):
        path = tmp_path / "torn.wal"
        path.write_bytes(b'{"type": "hea')  # torn header, no valid records
        with RunJournal(path, "fresh") as journal:
            assert journal.replayed == {}
            journal.record("k", "t", 1)
        with RunJournal(path, "fresh") as journal:
            assert journal.replayed == {"k": 1}


class TestEngineIntegration:
    def test_journal_replays_across_engine_runs(self, tmp_path):
        path = journal_path(tmp_path, "camp")
        with RunJournal(path, "camp") as journal:
            engine = SweepEngine(max_workers=1, journal=journal)
            first = engine.run(_tasks(), master_seed=5)
            assert engine.last_report.journal_records == 4
        with RunJournal(path, "camp") as journal:
            engine = SweepEngine(max_workers=1, journal=journal)
            second = engine.run(_tasks(), master_seed=5)
            assert engine.last_report.journal_hits == 4
            assert engine.last_report.executed == 0
        assert first == second

    def test_journal_key_tracks_master_seed(self, tmp_path):
        path = journal_path(tmp_path, "camp")
        with RunJournal(path, "camp") as journal:
            engine = SweepEngine(max_workers=1, journal=journal)
            engine.run(_tasks(), master_seed=5)
        with RunJournal(path, "camp") as journal:
            engine = SweepEngine(max_workers=1, journal=journal)
            engine.run(_tasks(), master_seed=6)
            # Different master seed -> different content keys -> no replay.
            assert engine.last_report.journal_hits == 0
            assert engine.last_report.executed == 4


@pytest.mark.chaos
class TestSigkillResume:
    def test_sigkilled_campaign_resumes_bit_identically(self, tmp_path):
        """Kill the driver mid-campaign; resume must be bit-identical."""
        run_id = "chaos-run"
        wal = journal_path(tmp_path, run_id)
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src"), str(repo_root)]
        )
        child = subprocess.Popen(
            [sys.executable, "-m", "tests.walhelper", str(tmp_path), run_id],
            env=env,
            cwd=repo_root,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until at least two points are durably journaled (but
            # not all of them), then kill -9 the driver mid-sweep.
            deadline = time.monotonic() + CHAOS_TIMEOUT_S
            while time.monotonic() < deadline:
                if wal.exists():
                    records = wal.read_bytes().count(b'"result"')
                    if records >= 2:
                        break
                if child.poll() is not None:
                    pytest.fail("campaign finished before it could be killed")
                time.sleep(0.01)
            else:
                pytest.fail("journal never accumulated enough records")
            child.kill()  # SIGKILL: no cleanup, no atexit, no flush
            child.wait(timeout=CHAOS_TIMEOUT_S)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=CHAOS_TIMEOUT_S)

        # The WAL survived a hard kill: chain must validate on replay.
        with RunJournal(wal, run_id) as journal:
            replayed = len(journal.replayed)
        assert 2 <= replayed < walhelper.POINTS

        # Resume the campaign in-process from the surviving WAL.
        resumed = walhelper.run_campaign(str(tmp_path), run_id)
        # An uninterrupted reference campaign in a separate journal.
        reference = walhelper.run_campaign(str(tmp_path), "reference")
        assert pickle.dumps(resumed) == pickle.dumps(reference)

    def test_resumed_run_skips_replayed_points(self, tmp_path):
        run_id = "skip-run"
        with RunJournal(journal_path(tmp_path, run_id), run_id) as journal:
            engine = SweepEngine(max_workers=1, journal=journal)
            engine.run(_tasks(6)[:3], master_seed=9)
        with RunJournal(journal_path(tmp_path, run_id), run_id) as journal:
            engine = SweepEngine(max_workers=1, journal=journal)
            engine.run(_tasks(6), master_seed=9)
            report = engine.last_report
            assert report.journal_hits == 3
            assert report.executed == 6 - 3


class TestSignalHandling:
    def test_sigkill_constant_exists(self):
        # Guard against platforms without SIGKILL (the chaos test would
        # need skipping there); this repo targets Linux CI.
        assert signal.SIGKILL is not None
