"""Tests for the oversubscription interference model (Figures 12–13)."""

import pytest

from repro.cluster import OversubscribedHost, ScenarioInstance
from repro.errors import ConfigurationError
from repro.experiments.oversubscription import SCENARIO_NAMES, table10_scenario
from repro.silicon import B2, OC3
from repro.workloads import BI, SQL, TERASORT


class TestScenarioInstance:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioInstance(SQL, 0)
        with pytest.raises(ConfigurationError):
            ScenarioInstance(SQL, 4, duty=0.0)
        with pytest.raises(ConfigurationError):
            ScenarioInstance(SQL, 4, duty=1.5)


class TestOversubscribedHost:
    def test_no_contention_below_capacity(self):
        host = OversubscribedHost(pcores=16)
        instances = [ScenarioInstance(BI, 4, duty=1.0)]
        outcomes = host.evaluate(instances, B2, B2)
        assert outcomes[0].contention == pytest.approx(1.0)
        assert outcomes[0].speed == pytest.approx(1.0)

    def test_overcommit_slows_everything(self):
        host = OversubscribedHost(pcores=8)
        instances = [
            ScenarioInstance(BI, 4, duty=1.0, instance_id="a"),
            ScenarioInstance(BI, 4, duty=1.0, instance_id="b"),
            ScenarioInstance(BI, 4, duty=1.0, instance_id="c"),
        ]
        outcomes = host.evaluate(instances, B2, B2)
        for outcome in outcomes:
            assert outcome.speed < 1.0

    def test_latency_sensitive_amplified(self):
        host = OversubscribedHost(pcores=8)
        instances = [
            ScenarioInstance(SQL, 4, duty=1.0, latency_sensitive=True, instance_id="lat"),
            ScenarioInstance(BI, 4, duty=1.0, instance_id="batch"),
            ScenarioInstance(BI, 4, duty=1.0, instance_id="batch2"),
        ]
        outcomes = {o.instance.instance_id: o for o in host.evaluate(instances, B2, B2)}
        assert outcomes["lat"].speed < outcomes["batch"].speed

    def test_overclocking_erases_contention(self):
        """OC3 shrinks demand enough to undo a mild overcommit."""
        host = OversubscribedHost(pcores=16)
        instances = table10_scenario("Scenario 2")
        b2 = host.evaluate(instances, B2, B2)
        oc3 = host.evaluate(instances, OC3, B2)
        assert max(o.contention for o in b2) > 1.0
        assert max(o.contention for o in oc3) == pytest.approx(1.0, abs=0.02)

    def test_disk_saturation_caps_terasort(self):
        """Two TeraSorts saturate the shared disk: clocks stop helping."""
        host = OversubscribedHost(pcores=32)  # plenty of CPU
        two_ts = [
            ScenarioInstance(TERASORT, 4, instance_id="ts0"),
            ScenarioInstance(TERASORT, 4, instance_id="ts1"),
        ]
        one_ts = [ScenarioInstance(TERASORT, 4, instance_id="ts0")]
        capped = host.evaluate(two_ts, OC3, B2)[0].clock_speedup
        free = host.evaluate(one_ts, OC3, B2)[0].clock_speedup
        assert capped < free
        assert capped < 1.06

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OversubscribedHost(pcores=0)
        with pytest.raises(ConfigurationError):
            OversubscribedHost(pcores=4, disk_capacity=0.0)
        assert OversubscribedHost(pcores=4).evaluate([], B2) == []


class TestFig13Reproduction:
    """The paper's Figure 13 claims, scenario by scenario."""

    @pytest.fixture(scope="class")
    def results(self):
        host = OversubscribedHost(pcores=16)
        out = {}
        for name in SCENARIO_NAMES:
            instances = table10_scenario(name)
            out[name] = {
                "B2": host.compare(instances, B2, baseline_pcores=20),
                "OC3": host.compare(instances, OC3, baseline_pcores=20),
            }
        return out

    def test_b2_oversubscription_degrades_everything(self, results):
        for name in SCENARIO_NAMES:
            for instance, improvement in results[name]["B2"].items():
                assert improvement < 0.0, f"{name}/{instance}"

    def test_latency_apps_degrade_most_under_b2(self, results):
        for name in SCENARIO_NAMES:
            by_instance = results[name]["B2"]
            worst_latency = min(
                v for k, v in by_instance.items() if "SQL" in k or "SPECJBB" in k
            )
            best_batch = max(
                v for k, v in by_instance.items() if "BI" in k or "TeraSort" in k
            )
            assert worst_latency <= best_batch

    def test_oc3_improves_everything(self, results):
        for name in SCENARIO_NAMES:
            for instance, improvement in results[name]["OC3"].items():
                assert improvement > 0.0, f"{name}/{instance}"

    def test_oc3_improvements_up_to_about_17_percent(self, results):
        best = max(
            improvement
            for name in SCENARIO_NAMES
            for improvement in results[name]["OC3"].values()
        )
        assert 0.15 <= best <= 0.25

    def test_all_at_least_6_percent_except_terasort_scenario1(self, results):
        for name in SCENARIO_NAMES:
            for instance, improvement in results[name]["OC3"].items():
                if name == "Scenario 1" and "TeraSort" in instance:
                    assert improvement < 0.06, "TeraSort S1 should be the exception"
                else:
                    assert improvement >= 0.06, f"{name}/{instance}"

    def test_scenarios_have_20_vcores(self):
        for name in SCENARIO_NAMES:
            assert sum(i.vcores for i in table10_scenario(name)) == 20

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            table10_scenario("Scenario 9")
