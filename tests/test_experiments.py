"""Integration tests over the experiment entry points (fast ones).

The slow closed-loop experiments (Figures 15–16) have their own test
module; here we verify the analytical experiments end-to-end and the
table renderer.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import render_table
from repro.experiments.characterization import (
    format_fig4,
    format_power_savings,
    format_table1,
    format_table2,
    format_table3,
    format_table5,
    run_fig4,
    run_power_savings,
    run_table1,
    run_table3,
    run_table5,
)
from repro.experiments.highperf_vms import run_fig9, run_fig10, run_fig11
from repro.experiments.oversubscription import run_fig12, run_fig13
from repro.experiments.tco_experiments import (
    format_oversubscription_tco,
    format_table6,
)


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bb"], [["1", "22"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a"], [["1", "2"]])
        with pytest.raises(ConfigurationError):
            render_table([], [])


class TestCharacterization:
    def test_table1_has_six_rows_ordered_by_pue(self):
        rows = run_table1()
        assert len(rows) == 6
        pues = [row[1] for row in rows]
        assert pues == sorted(pues, reverse=True)

    def test_table3_turbo_gain(self):
        rows = {(r.platform, r.cooling): r for r in run_table3()}
        for platform in ("Xeon Platinum 8168", "Xeon Platinum 8180"):
            air = rows[(platform, "Air")]
            immersed = rows[(platform, "2PIC")]
            assert immersed.max_turbo_ghz == pytest.approx(air.max_turbo_ghz + 0.1)
            assert immersed.tj_max_c < air.tj_max_c - 10

    def test_table5_has_six_rows(self):
        assert len(run_table5()) == 6

    def test_power_savings_total(self):
        assert run_power_savings().total_watts == pytest.approx(182.0, abs=3.0)

    def test_fig4_bands_contiguous(self):
        bands = run_fig4()
        for (_, _, hi), (_, lo, _) in zip(bands, bands[1:]):
            assert hi == lo

    def test_formatters_render(self):
        for formatter in (
            format_table1,
            format_table2,
            format_table3,
            format_table5,
            format_power_savings,
            format_fig4,
        ):
            text = formatter()
            assert len(text.splitlines()) >= 4


class TestHighPerfExperiments:
    def test_fig9_covers_all_cells(self):
        cells = run_fig9()
        assert len(cells) == 8 * 7  # 8 apps x 7 configs
        by_app_config = {(c.application, c.config): c for c in cells}
        assert by_app_config[("SQL", "B2")].normalized_metric == pytest.approx(1.0)

    def test_fig9_power_rises_with_overclock(self):
        cells = {(c.application, c.config): c for c in run_fig9()}
        for app in ("SQL", "BI", "SPECJBB"):
            assert (
                cells[(app, "OC3")].average_power_watts
                > cells[(app, "B2")].average_power_watts
            )
            assert cells[(app, "OC3")].p99_power_watts >= cells[(app, "OC3")].average_power_watts

    def test_fig10_has_28_cells(self):
        assert len(run_fig10()) == 4 * 7

    def test_fig11_has_24_cells(self):
        assert len(run_fig11()) == 6 * 4


class TestOversubscriptionExperiments:
    def test_fig12_sweep_shape(self):
        points = run_fig12()
        assert len(points) == 2 * 5  # B2/OC3 x pcores {8,10,12,14,16}
        b2 = [p for p in points if p.config == "B2"]
        oc3 = [p for p in points if p.config == "OC3"]
        for b, o in zip(b2, oc3):
            assert o.p95_latency_ms < b.p95_latency_ms
            assert o.average_power_watts > b.average_power_watts

    def test_fig13_rows(self):
        rows = run_fig13()
        assert len(rows) == 15  # 5 instances x 3 scenarios
        assert all(row.b2_improvement < 0 for row in rows)
        assert all(row.oc3_improvement > 0 for row in rows)


class TestTCOExperiments:
    def test_table6_renders_with_totals(self):
        text = format_table6()
        assert "Cost per physical core" in text
        assert "-7%" in text and "-4%" in text

    def test_oversubscription_renders(self):
        text = format_oversubscription_tco()
        assert "-12" in text or "-13" in text
