"""Tests for the cluster substrate: VMs, hosts, placement, capping, fleet."""

import pytest

from repro.cluster import (
    CapacityGapPlan,
    Fleet,
    Host,
    PlacementEngine,
    PlacementPolicy,
    PowerCapGovernor,
    VMInstance,
    VMSpec,
    VMState,
    bridge_capacity_gap,
    packing_density_gain,
)
from repro.errors import (
    CapacityError,
    ConfigurationError,
    FrequencyError,
    PlacementError,
    PowerBudgetExceeded,
)
from repro.silicon import OC1, OCP_BLADE_8168
from repro.thermal import DIRECT_EVAPORATIVE, TWO_PHASE_IMMERSION


def make_host(host_id="h0", ratio=1.0, cooling=TWO_PHASE_IMMERSION):
    return Host(host_id, cooling=cooling, oversubscription_ratio=ratio)


class TestVM:
    def test_lifecycle_transitions(self):
        vm = VMInstance("vm-1", VMSpec(4, 8.0), created_at=10.0)
        assert vm.state is VMState.CREATING
        assert vm.is_active
        vm.mark_running(70.0)
        assert vm.state is VMState.RUNNING
        vm.mark_deleted(100.0)
        assert not vm.is_active
        assert vm.running_seconds(200.0) == pytest.approx(30.0)

    def test_running_seconds_ongoing(self):
        vm = VMInstance("vm-1", VMSpec(4, 8.0))
        vm.mark_running(50.0)
        assert vm.running_seconds(80.0) == pytest.approx(30.0)

    def test_invalid_transitions(self):
        vm = VMInstance("vm-1", VMSpec(4, 8.0))
        vm.mark_running(0.0)
        with pytest.raises(ConfigurationError):
            vm.mark_running(1.0)
        vm.mark_deleted(2.0)
        with pytest.raises(ConfigurationError):
            vm.mark_deleted(3.0)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            VMSpec(0, 8.0)
        with pytest.raises(ConfigurationError):
            VMSpec(4, 0.0)


class TestHost:
    def test_capacity_accounting(self):
        host = make_host()
        assert host.vcore_capacity == 28
        host.place(VMInstance("a", VMSpec(4, 8.0)))
        assert host.committed_vcores == 4
        assert host.free_vcores == 24
        host.evict("a")
        assert host.committed_vcores == 0

    def test_oversubscription_expands_capacity(self):
        host = make_host(ratio=1.2)
        assert host.vcore_capacity == int(28 * 1.2)

    def test_memory_dimension_enforced(self):
        host = make_host()
        host.place(VMInstance("big", VMSpec(4, 120.0)))
        assert not host.fits(VMSpec(4, 16.0))
        with pytest.raises(CapacityError):
            host.place(VMInstance("more", VMSpec(4, 16.0)))

    def test_overclock_requires_liquid_cooling(self):
        air_host = make_host(cooling=DIRECT_EVAPORATIVE)
        with pytest.raises(FrequencyError):
            air_host.set_config(OC1)
        liquid_host = make_host()
        liquid_host.set_config(OC1)
        assert liquid_host.is_overclocked

    def test_locked_cpu_cannot_overclock(self):
        host = Host("locked", spec=OCP_BLADE_8168, cooling=TWO_PHASE_IMMERSION)
        with pytest.raises(FrequencyError):
            host.set_config(OC1)

    def test_power_rises_with_commitment_and_overclock(self):
        host = make_host()
        idle = host.power_watts(0.0)
        host.place(VMInstance("a", VMSpec(8, 16.0)))
        busy = host.power_watts(1.0)
        host.set_config(OC1)
        overclocked = host.power_watts(1.0)
        assert idle < busy < overclocked

    def test_busy_cores_capped_at_pcores(self):
        host = make_host(ratio=1.2)
        for index in range(8):
            host.place(VMInstance(f"vm{index}", VMSpec(4, 8.0)))
        assert host.committed_vcores == 32  # oversubscribed past 28 pcores
        assert host.power_watts(1.0) == host.power_model.watts(host.config, 28.0)

    def test_duplicate_vm_rejected(self):
        host = make_host()
        host.place(VMInstance("a", VMSpec(4, 8.0)))
        with pytest.raises(ConfigurationError):
            host.place(VMInstance("a", VMSpec(4, 8.0)))


class TestPlacement:
    def test_best_fit_packs_tight(self):
        hosts = [make_host("h0"), make_host("h1")]
        hosts[0].place(VMInstance("pre", VMSpec(24, 24.0)))
        engine = PlacementEngine(hosts, PlacementPolicy.BEST_FIT)
        target = engine.place(VMInstance("new", VMSpec(4, 8.0)))
        assert target.host_id == "h0"  # fills the nearly-full host

    def test_worst_fit_spreads(self):
        hosts = [make_host("h0"), make_host("h1")]
        hosts[0].place(VMInstance("pre", VMSpec(24, 24.0)))
        engine = PlacementEngine(hosts, PlacementPolicy.WORST_FIT)
        target = engine.place(VMInstance("new", VMSpec(4, 8.0)))
        assert target.host_id == "h1"

    def test_placement_error_when_full(self):
        engine = PlacementEngine([make_host()])
        engine.place(VMInstance("a", VMSpec(28, 28.0)))
        with pytest.raises(PlacementError):
            engine.place(VMInstance("b", VMSpec(1, 1.0)))

    def test_evict_frees_capacity(self):
        engine = PlacementEngine([make_host()])
        engine.place(VMInstance("a", VMSpec(28, 28.0)))
        engine.evict("a")
        engine.place(VMInstance("b", VMSpec(28, 28.0)))

    def test_stats(self):
        engine = PlacementEngine([make_host("h0"), make_host("h1")])
        engine.place(VMInstance("a", VMSpec(4, 8.0)))
        stats = engine.stats()
        assert stats.hosts == 2
        assert stats.hosts_used == 1
        assert stats.vms == 1
        assert stats.total_vcores_placed == 4
        assert stats.total_pcores == 56

    def test_packing_density_gain_about_20_percent(self):
        """The paper's '+20% VM packing density' claim."""

        def factory(host_id, ratio):
            return make_host(host_id, ratio)

        gain = packing_density_gain(
            factory, VMSpec(4, 8.0), host_count=5, oversubscription_ratio=1.2
        )
        assert gain == pytest.approx(0.19, abs=0.05)


class TestFleet:
    def test_buffer_hosts_not_sellable(self):
        with_buffer = Fleet([make_host(f"h{i}") for i in range(10)], buffer_hosts=2)
        without = Fleet([make_host(f"g{i}") for i in range(10)], buffer_hosts=0)
        assert without.sellable_vcores > with_buffer.sellable_vcores

    def test_virtual_buffer_sells_more_vms(self):
        static = Fleet([make_host(f"s{i}") for i in range(6)], buffer_hosts=1)
        virtual = Fleet([make_host(f"v{i}") for i in range(6)], buffer_hosts=0)
        spec = VMSpec(4, 8.0)
        assert virtual.fill_with(spec) > static.fill_with(spec)

    def test_failover_recreates_and_overclocks(self):
        """Sell 1:1 capacity, keep the 1.2:1 ceiling as failover headroom."""
        hosts = [make_host(f"h{i}", ratio=1.2) for i in range(4)]
        fleet = Fleet(hosts, buffer_hosts=0, policy=PlacementPolicy.WORST_FIT)
        for index in range(6 * 4):  # 6 VMs per host = 24 of 28 pcores
            fleet.place(VMInstance(f"vm{index}", VMSpec(4, 8.0)))
        outcome = fleet.fail_host("h0")
        assert outcome.recreated_vms == 6
        assert outcome.lost_vms == 0
        # Survivors absorbed VMs beyond their pcores and overclocked.
        assert len(outcome.overclocked_hosts) == 3
        for host_id in outcome.overclocked_hosts:
            assert fleet.host_by_id(host_id).is_overclocked

    def test_failover_never_recreates_on_the_dead_host(self):
        fleet = Fleet([make_host(f"h{i}", ratio=1.2) for i in range(3)], buffer_hosts=0)
        fleet.place(VMInstance("vm0", VMSpec(4, 8.0)))  # best-fit lands on h0
        outcome = fleet.fail_host("h0")
        assert outcome.recreated_vms == 1
        dead = fleet.host_by_id("h0")
        assert dead.committed_vcores == 0
        survivors = [h for h in fleet.hosts if h.host_id != "h0"]
        assert sum(h.committed_vcores for h in survivors) == 4

    def test_failover_with_static_buffer_absorbs_without_overclock(self):
        fleet = Fleet([make_host(f"h{i}") for i in range(5)], buffer_hosts=2)
        fleet.fill_with(VMSpec(4, 8.0))
        outcome = fleet.fail_host("h0")
        assert outcome.lost_vms == 0

    def test_double_failure_rejected(self):
        fleet = Fleet([make_host(f"h{i}") for i in range(3)], buffer_hosts=0)
        fleet.fail_host("h0")
        with pytest.raises(ConfigurationError):
            fleet.fail_host("h0")

    def test_failover_recreates_in_flight_deploys(self):
        """VMs still CREATING when their host dies are displaced too.

        A deploy that has not reached RUNNING is still customer state —
        the failover path must re-create it on a survivor exactly like a
        running VM, not silently drop it because it never booted.
        """
        fleet = Fleet([make_host(f"h{i}", ratio=1.2) for i in range(3)], buffer_hosts=0)
        running = VMInstance("vm-running", VMSpec(4, 8.0))
        running.mark_running(5.0)
        in_flight = VMInstance("vm-creating", VMSpec(4, 8.0))
        assert in_flight.state is VMState.CREATING and in_flight.is_active
        fleet.host_by_id("h0").place(running)
        fleet.host_by_id("h0").place(in_flight)

        outcome = fleet.fail_host("h0")
        assert outcome.recreated_vms == 2
        assert outcome.lost_vms == 0
        survivors = [h for h in fleet.hosts if h.host_id != "h0"]
        recreated_ids = {vm.vm_id for host in survivors for vm in host.vms}
        assert recreated_ids == {"vm-running", "vm-creating"}

    def test_failover_ignores_deleted_vms(self):
        """Only active VMs are displaced; deleted ones stay dead."""
        fleet = Fleet([make_host(f"h{i}") for i in range(2)], buffer_hosts=0)
        dead = VMInstance("vm-dead", VMSpec(4, 8.0))
        dead.mark_running(1.0)
        fleet.host_by_id("h0").place(dead)
        dead.mark_deleted(2.0)
        outcome = fleet.fail_host("h0")
        assert outcome.recreated_vms == 0
        assert outcome.lost_vms == 0

    def test_failover_counts_lost_vms_when_survivors_full(self):
        """With survivors packed solid, displaced VMs are lost, not hung."""
        fleet = Fleet([make_host(f"h{i}") for i in range(2)], buffer_hosts=0)
        fleet.host_by_id("h1").place(VMInstance("full", VMSpec(28, 28.0)))
        doomed = VMInstance("vm-doomed", VMSpec(4, 8.0))
        fleet.host_by_id("h0").place(doomed)
        outcome = fleet.fail_host("h0")
        assert outcome.recreated_vms == 0
        assert outcome.lost_vms == 1
        assert outcome.overclocked_hosts == ()


class TestCapacityCrisis:
    def test_gap_bridged_by_overclocking(self):
        hosts = [make_host(f"h{i}") for i in range(10)]
        supply = sum(h.vcore_capacity for h in hosts)
        plan = bridge_capacity_gap(hosts, demand_vcores=int(supply * 1.1))
        assert plan.fully_bridged
        assert plan.hosts_overclocked > 0

    def test_no_gap_no_action(self):
        hosts = [make_host(f"h{i}") for i in range(2)]
        plan = bridge_capacity_gap(hosts, demand_vcores=10)
        assert plan.gap_vcores == 0
        assert plan.hosts_overclocked == 0

    def test_air_fleet_cannot_bridge(self):
        hosts = [make_host(f"h{i}", cooling=DIRECT_EVAPORATIVE) for i in range(3)]
        supply = sum(h.vcore_capacity for h in hosts)
        plan = bridge_capacity_gap(hosts, demand_vcores=supply + 50)
        assert not plan.fully_bridged
        assert plan.hosts_overclocked == 0

    def test_partial_bridge_reports_not_fully_bridged(self):
        """A gap larger than the whole fleet's overclock headroom: every
        host overclocks, yet the plan must still say fully_bridged=False
        and report exactly how much capacity it did reclaim."""
        hosts = [make_host(f"h{i}") for i in range(3)]
        supply = sum(h.vcore_capacity for h in hosts)
        headroom = sum(int(h.spec.pcores * 0.2) for h in hosts)
        plan = bridge_capacity_gap(hosts, demand_vcores=supply + headroom + 10)
        assert not plan.fully_bridged
        assert plan.hosts_overclocked == len(hosts)
        assert plan.bridged_vcores == headroom
        assert plan.gap_vcores == headroom + 10
        for host in hosts:
            assert host.is_overclocked

    def test_unit_extra_ratio_bridges_nothing(self):
        """extra_ratio 1.0 reclaims zero vcores, so nothing overclocks."""
        hosts = [make_host(f"h{i}") for i in range(2)]
        supply = sum(h.vcore_capacity for h in hosts)
        plan = bridge_capacity_gap(
            hosts, demand_vcores=supply + 5, extra_ratio_when_overclocked=1.0
        )
        assert not plan.fully_bridged
        assert plan.hosts_overclocked == 0
        assert plan.bridged_vcores == 0
        assert isinstance(plan, CapacityGapPlan)


class TestPowerCap:
    def _loaded_host(self):
        host = make_host()
        host.set_config(OC1)
        for index in range(7):
            host.place(VMInstance(f"vm{index}", VMSpec(4, 8.0)))
        return host

    def test_no_cap_needed_leaves_frequency(self):
        host = self._loaded_host()
        governor = PowerCapGovernor()
        result = governor.enforce(host, cap_watts=10_000.0)
        assert not result.capped
        assert host.config.core_ghz == OC1.core_ghz

    def test_cap_steps_frequency_down(self):
        host = self._loaded_host()
        before = host.power_watts(1.0)
        governor = PowerCapGovernor()
        result = governor.enforce(host, cap_watts=before - 20.0)
        assert result.capped
        assert result.final_core_ghz < OC1.core_ghz
        assert host.power_watts(1.0) <= before - 20.0

    def test_impossible_cap_raises(self):
        host = self._loaded_host()
        governor = PowerCapGovernor()
        with pytest.raises(PowerBudgetExceeded):
            governor.enforce(host, cap_watts=10.0)

    def test_priority_aware_sheds_low_priority_first(self):
        low, high = self._loaded_host(), self._loaded_host()
        governor = PowerCapGovernor()
        total = low.power_watts(1.0) + high.power_watts(1.0)
        results = governor.enforce_priority_aware(
            [(low, 0), (high, 10)], total_cap_watts=total - 30.0
        )
        by_id = {r.host_id: r for r in results}
        del by_id
        assert results[0].capped          # low priority shed first
        assert not results[1].capped      # high priority untouched
