"""Unit tests for the sweep engine: tasks, cache, fallback, CLI."""

from __future__ import annotations

import time

import pytest

import repro
from repro.engine import (
    ResultCache,
    SweepEngine,
    SweepTask,
    canonicalize,
    content_key,
)
from repro.engine.cache import _package_version
from repro.errors import EngineError
from repro.sim.random import split_seed


def _square(x):
    return x * x


def _echo_seed(seed):
    return seed


def _fail():
    raise ValueError("boom")


def _slow_square(x):
    time.sleep(0.08)
    return x * x


class TestSweepTask:
    def test_seed_injection_matches_split_seed(self):
        task = SweepTask(fn=_echo_seed, params={}, key="point-a", seed_param="seed")
        params = task.resolved_params(master_seed=42)
        assert params["seed"] == split_seed(42, "point-a")

    def test_seed_depends_on_key_not_order(self):
        a = SweepTask(fn=_echo_seed, params={}, key="a", seed_param="seed")
        b = SweepTask(fn=_echo_seed, params={}, key="b", seed_param="seed")
        assert a.resolved_params(1)["seed"] != b.resolved_params(1)["seed"]
        assert a.resolved_params(1)["seed"] == a.resolved_params(1)["seed"]

    def test_no_seed_param_leaves_params_untouched(self):
        task = SweepTask(fn=_square, params={"x": 3}, key="sq")
        assert task.resolved_params(99) == {"x": 3}


class TestEngineExecution:
    def test_serial_run(self):
        engine = SweepEngine()
        results = engine.run([SweepTask(_square, {"x": n}, key=str(n)) for n in range(5)])
        assert results == {str(n): n * n for n in range(5)}
        assert engine.last_report.serial_tasks == 5
        assert engine.last_report.parallel_tasks == 0

    def test_parallel_matches_serial(self):
        tasks = lambda: [SweepTask(_square, {"x": n}, key=str(n)) for n in range(6)]
        serial = SweepEngine(max_workers=1).run(tasks())
        parallel = SweepEngine(max_workers=3).run(tasks())
        assert serial == parallel

    def test_result_order_follows_task_order(self):
        engine = SweepEngine(max_workers=2)
        keys = ["z", "a", "m"]
        results = engine.run([SweepTask(_square, {"x": 1}, key=k) for k in keys])
        assert list(results) == keys

    def test_duplicate_keys_rejected(self):
        engine = SweepEngine()
        with pytest.raises(EngineError, match="duplicate"):
            engine.run(
                [SweepTask(_square, {"x": 1}, key="k"), SweepTask(_square, {"x": 2}, key="k")]
            )

    def test_non_picklable_task_falls_back_to_serial(self):
        engine = SweepEngine(max_workers=2)
        results = engine.run(
            [
                SweepTask(lambda x=4: x * x, {}, key="lambda"),
                SweepTask(_square, {"x": 3}, key="plain"),
            ]
        )
        assert results == {"lambda": 16, "plain": 9}
        assert engine.last_report.serial_tasks == 1
        assert engine.last_report.parallel_tasks == 1

    def test_worker_exception_propagates(self):
        engine = SweepEngine(max_workers=2)
        with pytest.raises(ValueError, match="boom"):
            engine.run([SweepTask(_fail, {}, key="bad")])

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(EngineError):
            SweepEngine(max_workers=0)


class TestAutoSerial:
    """The dispatch-overhead probe that demotes cheap sweeps to serial."""

    def test_cheap_tasks_demote_to_serial(self):
        tasks = [SweepTask(_square, {"x": n}, key=str(n)) for n in range(6)]
        engine = SweepEngine(max_workers=3, auto_serial_threshold_s=0.05)
        results = engine.run(tasks)
        report = engine.last_report
        assert report.auto_serial is True
        assert report.probe_seconds is not None
        assert report.probe_seconds < 0.05
        assert report.parallel_tasks == 0
        assert report.serial_tasks == len(tasks)
        # The demotion is invisible in the results themselves.
        assert results == SweepEngine(max_workers=1).run(tasks)

    def test_expensive_tasks_stay_parallel(self):
        tasks = [SweepTask(_slow_square, {"x": n}, key=str(n)) for n in range(3)]
        engine = SweepEngine(max_workers=2, auto_serial_threshold_s=0.05)
        results = engine.run(tasks)
        report = engine.last_report
        assert report.auto_serial is False
        assert report.probe_seconds is not None
        assert report.probe_seconds >= 0.05
        # The probe itself ran in-process; the rest fanned out.
        assert report.serial_tasks == 1
        assert report.parallel_tasks == len(tasks) - 1
        assert results == {str(n): n * n for n in range(3)}

    def test_disabled_by_default(self):
        engine = SweepEngine(max_workers=2)
        engine.run([SweepTask(_square, {"x": n}, key=str(n)) for n in range(3)])
        report = engine.last_report
        assert report.auto_serial is False
        assert report.probe_seconds is None
        assert report.parallel_tasks == 3

    def test_negative_threshold_rejected(self):
        with pytest.raises(EngineError):
            SweepEngine(auto_serial_threshold_s=-0.01)

    def test_probe_respects_serial_only_engine(self):
        # max_workers=1 never builds a parallel batch, so no probe runs.
        engine = SweepEngine(max_workers=1, auto_serial_threshold_s=0.05)
        engine.run([SweepTask(_square, {"x": 2}, key="sq")])
        assert engine.last_report.probe_seconds is None
        assert engine.last_report.auto_serial is False


class TestResultCache:
    def test_second_run_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        tasks = lambda: [SweepTask(_square, {"x": n}, key=str(n)) for n in range(4)]
        first = engine.run(tasks())
        assert engine.last_report.executed == 4
        second = engine.run(tasks())
        assert second == first
        assert engine.last_report.executed == 0
        assert engine.last_report.cache_hits == 4

    def test_no_cache_always_executes(self):
        engine = SweepEngine()
        engine.run([SweepTask(_square, {"x": 2}, key="k")])
        engine.run([SweepTask(_square, {"x": 2}, key="k")])
        assert engine.stats.executed == 2
        assert engine.stats.cache_hits == 0

    def test_key_covers_parameters(self):
        assert content_key(_square, {"x": 1}) != content_key(_square, {"x": 2})
        assert content_key(_square, {"x": 1}) == content_key(_square, {"x": 1})

    def test_key_covers_function(self):
        assert content_key(_square, {"x": 1}) != content_key(_echo_seed, {"x": 1})

    def test_key_covers_package_version(self, monkeypatch):
        before = content_key(_square, {"x": 1})
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert content_key(_square, {"x": 1}) != before
        assert _package_version() == "999.0.0"

    def test_cacheable_false_skips_cache(self, tmp_path):
        engine = SweepEngine(cache=ResultCache(tmp_path))
        task = lambda: [SweepTask(_square, {"x": 5}, key="k", cacheable=False)]
        engine.run(task())
        engine.run(task())
        assert engine.stats.executed == 2
        assert len(engine.cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        engine.run([SweepTask(_square, {"x": 7}, key="k")])
        (entry,) = list(tmp_path.glob("*/*.pkl"))
        entry.write_bytes(b"not a pickle")
        results = SweepEngine(cache=ResultCache(tmp_path)).run(
            [SweepTask(_square, {"x": 7}, key="k")]
        )
        assert results["k"] == 49

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepEngine(cache=cache).run([SweepTask(_square, {"x": n}, key=str(n)) for n in range(3)])
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0


class TestCanonicalize:
    def test_dataclasses_and_enums(self):
        from repro.autoscale.policy import ScalerMode
        from repro.silicon.configs import B2

        first = canonicalize({"mode": ScalerMode.OC_A, "config": B2, "n": 3})
        second = canonicalize({"mode": ScalerMode.OC_A, "config": B2, "n": 3})
        assert first == second

    def test_float_precision_distinguishes_values(self):
        assert canonicalize(0.1) != canonicalize(0.1 + 1e-12)
        assert canonicalize(0.1) == canonicalize(0.1)

    def test_mapping_order_is_irrelevant(self):
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})

    def test_identity_repr_rejected(self):
        class Opaque:
            pass

        with pytest.raises(EngineError):
            canonicalize(Opaque())


class TestCLISweep:
    def test_sweep_listing(self, capsys):
        from repro.cli import main

        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "reliability" in out and "autoscaler" in out

    def test_sweep_unknown_name(self, capsys):
        from repro.cli import main

        assert main(["sweep", "nope"]) == 2

    def test_sweep_tco_runs(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["sweep", "tco", "--workers", "1", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "TCO sensitivity" in out
        assert "[engine]" in out
        # Second invocation replays from the cache.
        assert main(["sweep", "tco", "--workers", "1", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "13 cache hit(s)" in out

    def test_sweep_no_cache_flag(self, capsys):
        from repro.cli import main

        assert main(["sweep", "tco", "--no-cache"]) == 0
        assert "cache disabled" in capsys.readouterr().out
