"""Tests for the reliability substrate: lifetime, stability, wear-out."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ReliabilityError, StabilityError
from repro.reliability import (
    DEFAULT_ERRORS_PER_CRASH,
    SIX_MONTHS_HOURS,
    CompositeLifetimeModel,
    Electromigration,
    GateOxideBreakdown,
    OperatingCondition,
    StabilityModel,
    StabilityMonitor,
    ThermalCycling,
    WearoutCounter,
    air_condition,
    immersion_condition,
    iso_lifetime_overclock_watts,
    project_table5,
)
from repro.thermal import FC_3284, HFE_7000


class TestFailureModes:
    def test_table4_dependencies(self):
        oxide, em, cycling = GateOxideBreakdown(), Electromigration(), ThermalCycling()
        assert oxide.depends_on_temperature and oxide.depends_on_voltage
        assert not oxide.depends_on_delta_t
        assert em.depends_on_temperature
        assert not em.depends_on_voltage and not em.depends_on_delta_t
        assert cycling.depends_on_delta_t
        assert not cycling.depends_on_temperature and not cycling.depends_on_voltage

    def test_oxide_voltage_acceleration(self):
        oxide = GateOxideBreakdown()
        nominal = OperatingCondition(85.0, 20.0, 0.90)
        overvolted = OperatingCondition(85.0, 20.0, 0.98)
        assert oxide.lifetime_years(overvolted) < oxide.lifetime_years(nominal)

    def test_em_arrhenius(self):
        em = Electromigration()
        hot = OperatingCondition(101.0, 20.0, 0.9)
        cold = OperatingCondition(60.0, 20.0, 0.9)
        assert em.lifetime_years(cold) > 5 * em.lifetime_years(hot)

    def test_cycling_power_law(self):
        cycling = ThermalCycling()
        wide = OperatingCondition(85.0, 20.0, 0.9)     # ΔT = 65
        narrow = OperatingCondition(74.0, 50.0, 0.9)   # ΔT = 24
        assert cycling.lifetime_years(narrow) > cycling.lifetime_years(wide)

    def test_cycling_zero_swing_is_infinite(self):
        cycling = ThermalCycling()
        steady = OperatingCondition(60.0, 60.0, 0.9)
        assert math.isinf(cycling.lifetime_years(steady))

    def test_condition_validation(self):
        with pytest.raises(ReliabilityError):
            OperatingCondition(50.0, 60.0, 0.9)
        with pytest.raises(ReliabilityError):
            OperatingCondition(60.0, 50.0, 0.0)


class TestTable5:
    """Row-by-row reproduction of the paper's Table V."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {(r.cooling, r.overclocked): r for r in project_table5()}

    def test_air_nominal_is_5_years(self, rows):
        row = rows[("Air cooling", False)]
        assert row.tj_max_c == pytest.approx(85.0, abs=0.5)
        assert row.lifetime_years == pytest.approx(5.0, abs=0.5)
        assert row.lifetime_label == "5 years"

    def test_air_overclocked_under_1_year(self, rows):
        row = rows[("Air cooling", True)]
        assert row.tj_max_c == pytest.approx(101.0, abs=0.5)
        assert row.lifetime_years < 1.0
        assert row.lifetime_label == "< 1 year"

    def test_fc3284_nominal_over_10_years(self, rows):
        row = rows[("3M FC-3284", False)]
        assert row.tj_max_c == pytest.approx(66.0, abs=1.0)
        assert row.lifetime_years > 10.0
        assert row.lifetime_label == "> 10 years"

    def test_fc3284_overclocked_about_4_years(self, rows):
        row = rows[("3M FC-3284", True)]
        assert row.tj_max_c == pytest.approx(74.0, abs=1.0)
        assert row.lifetime_years == pytest.approx(4.0, abs=0.7)

    def test_hfe7000_nominal_over_10_years(self, rows):
        row = rows[("3M HFE-7000", False)]
        assert row.tj_max_c == pytest.approx(51.0, abs=1.0)
        assert row.lifetime_years > 10.0

    def test_hfe7000_overclocked_matches_air_baseline(self, rows):
        """The headline result: overclocked in HFE-7000 == air-cooled stock."""
        row = rows[("3M HFE-7000", True)]
        baseline = rows[("Air cooling", False)]
        assert row.lifetime_years == pytest.approx(baseline.lifetime_years, rel=0.15)

    def test_voltages(self, rows):
        for (_, overclocked), row in rows.items():
            assert row.voltage_v == (0.98 if overclocked else 0.90)

    def test_immersion_swing_floor_is_boiling_point(self, rows):
        assert rows[("3M FC-3284", False)].tj_min_c == 50.0
        assert rows[("3M HFE-7000", True)].tj_min_c == 34.0


class TestCompositeModel:
    def test_lifetime_shorter_than_any_single_mode(self):
        model = CompositeLifetimeModel()
        condition = OperatingCondition(85.0, 20.0, 0.90)
        total = model.lifetime_years(condition)
        for mode in model.modes:
            assert total <= mode.lifetime_years(condition)

    def test_mode_breakdown_sums_to_one(self):
        model = CompositeLifetimeModel()
        condition = OperatingCondition(85.0, 20.0, 0.90)
        shares = model.mode_breakdown(condition)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_dominant_mode_at_high_voltage_is_oxide(self):
        model = CompositeLifetimeModel()
        condition = OperatingCondition(60.0, 35.0, 1.05)
        assert model.dominant_mode(condition).name == "gate oxide breakdown"

    def test_requires_modes(self):
        with pytest.raises(ReliabilityError):
            CompositeLifetimeModel(())

    @given(
        st.floats(min_value=40.0, max_value=110.0),
        st.floats(min_value=0.85, max_value=1.05),
    )
    def test_lifetime_monotone_decreasing_in_temp_and_voltage(self, tj, voltage):
        model = CompositeLifetimeModel()
        base = OperatingCondition(tj, 20.0, voltage)
        hotter = OperatingCondition(tj + 5.0, 20.0, voltage)
        harder = OperatingCondition(tj, 20.0, voltage + 0.02)
        assert model.lifetime_years(hotter) < model.lifetime_years(base)
        assert model.lifetime_years(harder) < model.lifetime_years(base)

    def test_iso_lifetime_overclock_near_305w(self):
        """Section IV: +100 W per socket in HFE-7000 keeps the 5-year life."""
        model = CompositeLifetimeModel()
        watts = iso_lifetime_overclock_watts(model, HFE_7000, target_years=5.0)
        assert watts == pytest.approx(305.0, abs=20.0)

    def test_iso_lifetime_fc3284_lower_than_hfe(self):
        model = CompositeLifetimeModel()
        fc = iso_lifetime_overclock_watts(model, FC_3284, target_years=5.0)
        hfe = iso_lifetime_overclock_watts(model, HFE_7000, target_years=5.0)
        assert fc < hfe


class TestStability:
    def test_stable_within_23_percent(self):
        """Section IV: +23% over all-core turbo showed no errors in 6 months."""
        model = StabilityModel()
        assert model.expected_errors(1.23, hours=183 * 24) == 0.0
        assert not model.crashes(1.23)

    def test_aggressive_overclock_produces_errors(self):
        """Small tank #2 logged 56 correctable errors in 6 months."""
        model = StabilityModel()
        errors = model.expected_errors(1.30, hours=183 * 24)
        assert 5.0 < errors < 1000.0

    def test_crash_beyond_margin(self):
        model = StabilityModel()
        assert model.crashes(1.35)
        with pytest.raises(StabilityError):
            model.check(1.40)
        model.check(1.23)

    def test_error_rate_monotone(self):
        model = StabilityModel()
        rates = [model.correctable_error_rate_per_hour(r) for r in (1.0, 1.24, 1.28, 1.32)]
        assert rates == sorted(rates)

    def test_monitor_alarms_on_rate_spike(self):
        monitor = StabilityMonitor(rate_threshold_per_hour=1.0)
        assert not monitor.observe(0.0, 0.0)
        assert not monitor.observe(1.0, 0.5)
        assert monitor.observe(2.0, 10.0)
        assert monitor.alarms == 1

    def test_monitor_rejects_decreasing_counts(self):
        monitor = StabilityMonitor()
        monitor.observe(0.0, 5.0)
        with pytest.raises(ConfigurationError):
            monitor.observe(1.0, 4.0)


class TestBackgroundFloor:
    """The benign correctable-error floor inside the stable envelope.

    The paper's small tank #2 logged 56 correctable errors over six
    months while *inside* its aggressive envelope — and zero crashes.
    The floor models exactly that: errors without danger.
    """

    def test_default_floor_is_zero_and_behavior_preserving(self):
        model = StabilityModel()
        assert model.background_error_rate_per_hour == 0.0
        assert model.correctable_error_rate_per_hour(1.0) == 0.0
        assert model.correctable_error_rate_per_hour(model.stable_margin) == 0.0

    def test_tank2_floor_reproduces_the_56_error_count(self):
        floor = 56.0 / SIX_MONTHS_HOURS
        model = StabilityModel(background_error_rate_per_hour=floor)
        assert model.expected_errors(1.23, hours=SIX_MONTHS_HOURS) == pytest.approx(56.0)

    def test_ramp_is_continuous_at_the_stable_margin(self):
        model = StabilityModel(background_error_rate_per_hour=0.0127)
        at_margin = model.correctable_error_rate_per_hour(model.stable_margin)
        just_past = model.correctable_error_rate_per_hour(model.stable_margin + 1e-9)
        assert at_margin == pytest.approx(0.0127)
        assert just_past == pytest.approx(at_margin, rel=1e-6)

    def test_background_errors_never_cause_crashes(self):
        model = StabilityModel(background_error_rate_per_hour=0.0127)
        assert model.crash_rate_per_hour(1.0) == 0.0
        assert model.crash_rate_per_hour(model.stable_margin) == 0.0
        # Between the margins only the *ramp* above the floor converts.
        ratio = 1.30
        ramp = model.correctable_error_rate_per_hour(ratio) - 0.0127
        assert model.crash_rate_per_hour(ratio) == pytest.approx(
            ramp / DEFAULT_ERRORS_PER_CRASH
        )

    def test_negative_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            StabilityModel(background_error_rate_per_hour=-0.01)


class TestWearout:
    def test_full_utilization_at_rated_condition_consumes_rated_life(self):
        counter = WearoutCounter()
        condition = air_condition(205.0, 0.90)
        counter.record(hours=8766.0, condition=condition, utilization=1.0)
        # One year at the ~5-year condition consumes about a fifth of life.
        assert counter.damage == pytest.approx(1.0 / 5.0, rel=0.1)

    def test_moderate_utilization_accrues_credit(self):
        counter = WearoutCounter()
        condition = air_condition(205.0, 0.90)
        counter.record(hours=8766.0, condition=condition, utilization=0.4)
        assert counter.lifetime_credit() > 0.0

    def test_worst_case_accrues_no_credit(self):
        counter = WearoutCounter()
        condition = air_condition(205.0, 0.90)
        counter.record(hours=8766.0, condition=condition, utilization=1.0)
        assert counter.lifetime_credit() == pytest.approx(0.0, abs=0.01)

    def test_credit_buys_overclock_hours(self):
        counter = WearoutCounter()
        nominal = immersion_condition(HFE_7000, 205.0, 0.90)
        overclocked = immersion_condition(HFE_7000, 305.0, 0.98)
        counter.record(hours=8766.0, condition=nominal, utilization=0.3)
        hours = counter.affordable_overclock_hours(overclocked, nominal)
        assert hours > 100.0

    def test_no_credit_no_overclock_budget(self):
        counter = WearoutCounter()
        condition = air_condition(305.0, 0.98)  # hotter than rated
        counter.record(hours=8766.0, condition=condition, utilization=1.0)
        assert counter.lifetime_credit() < 0
        overclocked = immersion_condition(HFE_7000, 305.0, 0.98)
        assert counter.affordable_overclock_hours(overclocked, condition) == 0.0

    def test_remaining_years(self):
        counter = WearoutCounter()
        condition = immersion_condition(HFE_7000, 205.0, 0.90)
        assert counter.remaining_years_at(condition, utilization=1.0) > 10.0
        counter.record(hours=8766.0 * 5, condition=condition, utilization=1.0)
        assert counter.remaining_years_at(condition) < 20.0

    def test_validation(self):
        counter = WearoutCounter()
        condition = air_condition(205.0, 0.90)
        with pytest.raises(ConfigurationError):
            counter.record(-1.0, condition)
        with pytest.raises(ConfigurationError):
            counter.record(1.0, condition, utilization=2.0)
