"""Tests for live migration, the overclock stop-gap, and HP VM SKUs."""

import pytest

from repro.cluster import (
    GREEN_SKU,
    Host,
    HighPerformanceSKU,
    MigrationManager,
    RED_SKU,
    RedBandSession,
    VMInstance,
    VMSpec,
    overclock_stopgap_plan,
    plan_migration,
)
from repro.cluster.skus import Band
from repro.errors import CapacityError, ConfigurationError, ReliabilityError
from repro.reliability import WearoutCounter, immersion_condition
from repro.silicon import B2, OC1, XEON_W3175X
from repro.sim import Simulator
from repro.thermal import HFE_7000, TWO_PHASE_IMMERSION


def make_host(host_id: str) -> Host:
    return Host(host_id, cooling=TWO_PHASE_IMMERSION)


class TestMigration:
    def test_plan_scales_with_memory(self):
        small = plan_migration(VMInstance("a", VMSpec(4, 8.0)))
        large = plan_migration(VMInstance("b", VMSpec(4, 32.0)))
        assert large.duration_s == pytest.approx(4 * small.duration_s)
        assert large.bytes_moved_gb > large.memory_gb  # dirty pages re-sent

    def test_migration_moves_vm(self):
        simulator = Simulator()
        manager = MigrationManager(simulator)
        source, destination = make_host("src"), make_host("dst")
        vm = VMInstance("vm-1", VMSpec(4, 16.0))
        source.place(vm)
        record = manager.migrate(vm, source, destination)
        assert manager.in_flight == 1
        # Destination memory is reserved during the copy.
        assert destination.committed_memory_gb == pytest.approx(16.0)
        simulator.run(until=record.plan.duration_s + 1.0)
        assert manager.in_flight == 0
        assert source.committed_vcores == 0
        assert destination.committed_vcores == 4
        assert any(v.vm_id == "vm-1" for v in destination.vms)

    def test_migration_is_lengthy(self):
        """The paper calls migration 'a resource-hungry and lengthy
        operation' — tens of seconds for a mid-size VM, vs tens of µs
        for a frequency change."""
        plan = plan_migration(VMInstance("a", VMSpec(4, 64.0)))
        assert plan.duration_s > 30.0

    def test_destination_must_fit(self):
        simulator = Simulator()
        manager = MigrationManager(simulator)
        source, destination = make_host("src"), make_host("dst")
        destination.place(VMInstance("blocker", VMSpec(4, 120.0)))
        vm = VMInstance("vm-1", VMSpec(4, 32.0))
        source.place(vm)
        with pytest.raises(CapacityError):
            manager.migrate(vm, source, destination)

    def test_stopgap_overclocks_then_restores(self):
        simulator = Simulator()
        manager = MigrationManager(simulator)
        crowded, spare = make_host("crowded"), make_host("spare")
        vm = VMInstance("vm-1", VMSpec(4, 16.0))
        crowded.place(vm)
        outcomes = []
        record = overclock_stopgap_plan(
            simulator, manager, crowded, vm, spare, on_done=outcomes.append
        )
        assert crowded.config.name == OC1.name  # stop-gap engaged instantly
        simulator.run(until=record.plan.duration_s + 1.0)
        assert crowded.config.name == B2.name   # restored after cut-over
        assert len(outcomes) == 1
        assert outcomes[0].overclocked_for_s == pytest.approx(record.plan.duration_s)


class TestSKUs:
    def test_reference_skus_valid(self):
        assert GREEN_SKU.band == Band.GREEN
        assert RED_SKU.band == Band.RED
        assert GREEN_SKU.price_multiplier > 1.0

    def test_band_validation(self):
        with pytest.raises(ConfigurationError):
            HighPerformanceSKU("bad", 4, Band.GREEN, 1.30, 1.2)  # beyond green
        with pytest.raises(ConfigurationError):
            HighPerformanceSKU("bad", 4, Band.RED, 1.10, 1.2)    # below red floor
        with pytest.raises(ConfigurationError):
            HighPerformanceSKU("bad", 4, "purple", 1.1, 1.2)
        with pytest.raises(ConfigurationError):
            HighPerformanceSKU("bad", 4, Band.GREEN, 1.2, 0.9)   # underpriced

    def test_frequency_resolution(self):
        domains = XEON_W3175X.domains
        assert GREEN_SKU.frequency_ghz(domains) == pytest.approx(3.4 * 1.20)
        assert RED_SKU.frequency_ghz(domains) == pytest.approx(3.4 * 1.28)

    def test_frequency_beyond_part_ceiling_rejected(self):
        sku = HighPerformanceSKU("extreme", 4, Band.RED, 1.40, 2.0)
        with pytest.raises(ConfigurationError):
            sku.frequency_ghz(XEON_W3175X.domains)


class TestRedBandSession:
    def _banked_counter(self) -> WearoutCounter:
        counter = WearoutCounter()
        nominal = immersion_condition(HFE_7000, 205.0, 0.90)
        counter.record(hours=8766.0, condition=nominal, utilization=0.3)
        return counter

    def test_requires_banked_credit(self):
        red = immersion_condition(HFE_7000, 340.0, 1.01)
        nominal = immersion_condition(HFE_7000, 205.0, 0.90)
        with pytest.raises(ReliabilityError):
            RedBandSession(WearoutCounter(), red, nominal)

    def test_burst_spends_budget(self):
        counter = self._banked_counter()
        red = immersion_condition(HFE_7000, 340.0, 1.01)
        nominal = immersion_condition(HFE_7000, 205.0, 0.90)
        session = RedBandSession(counter, red, nominal)
        before = session.remaining_damage
        cost = session.record(hours=100.0)
        assert cost > 0
        assert session.remaining_damage == pytest.approx(before - cost)

    def test_budget_exhaustion_refuses(self):
        counter = self._banked_counter()
        red = immersion_condition(HFE_7000, 340.0, 1.01)
        nominal = immersion_condition(HFE_7000, 205.0, 0.90)
        session = RedBandSession(counter, red, nominal, budget_fraction_of_credit=0.1)
        affordable = session.affordable_hours()
        with pytest.raises(ReliabilityError):
            session.record(hours=affordable * 1.5)

    def test_affordable_hours_shrink_as_spent(self):
        counter = self._banked_counter()
        red = immersion_condition(HFE_7000, 340.0, 1.01)
        nominal = immersion_condition(HFE_7000, 205.0, 0.90)
        session = RedBandSession(counter, red, nominal)
        start = session.affordable_hours()
        session.record(hours=start / 4)
        assert session.affordable_hours() < start
