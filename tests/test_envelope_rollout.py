"""The envelope-rollout experiment: containment, determinism, SIGKILL.

The acceptance contract for the change-management layer:

* the naive big-bang arm crashes a large fleet fraction and leaks SDCs;
* the canary arm contains exposure to wave 0's blast budget, leaks
  zero SDCs, rolls the change back, and demonstrably froze while the
  power ladder was escalated;
* both arms are bit-identical per seed (run-signature pinned);
* a SIGKILL mid-rollout resumes from the journal bit-identically.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.journal import RunJournal, journal_path
from repro.experiments import envelope_rollout as er

from . import rollouthelper

SEEDS = [int(token) for token in os.environ.get("REPRO_CHAOS_SEEDS", "1 2").split()]

CHAOS_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "60"))


class TestEnvelopeRollout:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_canary_contains_what_the_big_bang_spreads(self, seed):
        comparison = er.run_envelope_rollout(seed=seed)
        naive, canary = comparison.naive, comparison.canary

        # The big-bang arm exposed everyone; a meaningful fraction of
        # the fleet sits below the bad envelope and crashes, and the
        # silently-marginal band leaks corruptions for days.
        assert naive.exposed_fraction == 1.0
        assert naive.crashed_fraction >= 0.2
        assert naive.sdc_leaked > 0
        assert naive.final_phase == "big-bang"

        # The canary arm never went past wave 0's blast budget, rolled
        # back, restored every envelope, and leaked nothing silent.
        assert canary.rolled_back
        assert canary.exposed_fraction <= 0.10
        assert len(canary.exposed_hosts) == 2
        assert canary.sdc_leaked == 0
        # A canary is allowed to crash — that is the blast radius doing
        # its job — but damage never spreads past the canary wave.
        assert canary.hosts_crashed <= len(canary.exposed_hosts)
        assert canary.hosts_crashed < naive.hosts_crashed
        assert all(ratio == er.OLD_RATIO for _, ratio in canary.final_ratios)
        assert canary.counters.rollbacks == 1
        assert canary.counters.rollback_pushes == len(canary.exposed_hosts)

        # The change landed during the power-ladder emergency: the
        # rollout visibly froze before pushing anything.
        assert canary.counters.freezes_power > 0
        assert canary.counters.frozen_ticks > 0
        freeze_kinds = [e.kind for e in canary.timeline if "freeze" in e.kind]
        assert "rollout-freeze" in freeze_kinds
        assert "rollout-unfreeze" in freeze_kinds

    @pytest.mark.parametrize("seed", SEEDS)
    def test_run_signatures_are_bit_identical_per_seed(self, seed):
        first = er.run_envelope_rollout(seed=seed)
        again = er.run_envelope_rollout(seed=seed)
        assert first.naive.run_signature == again.naive.run_signature
        assert first.canary.run_signature == again.canary.run_signature

    def test_seeds_change_the_world(self):
        assert (
            er.run_envelope_rollout(seed=1).naive.run_signature
            != er.run_envelope_rollout(seed=2).naive.run_signature
        )

    def test_journaled_run_matches_plain_run(self, tmp_path):
        plain = er.run_rollout_mode(canary=True, seed=1)
        journaled = rollouthelper.run_rollout(str(tmp_path), "plain-check")
        assert journaled.run_signature == plain.run_signature
        # Re-running over the completed journal replays, not recomputes.
        resumed = rollouthelper.run_rollout(str(tmp_path), "plain-check")
        assert resumed.resumed_from_tick > 0
        assert resumed.run_signature == plain.run_signature


@pytest.mark.chaos
class TestSigkillRollout:
    def test_sigkilled_rollout_resumes_bit_identically(self, tmp_path):
        """SIGKILL the canary arm mid-rollout; the resume must land on
        the same run signature as an uninterrupted run."""
        run_id = "rollout-chaos"
        wal = journal_path(tmp_path, run_id)
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src"), str(repo_root)]
        )
        child = subprocess.Popen(
            [sys.executable, "-m", "tests.rollouthelper", str(tmp_path), run_id],
            env=env,
            cwd=repo_root,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for at least two durably journaled controller ticks
            # (but not the whole rollout), then kill -9 the driver.
            deadline = time.monotonic() + CHAOS_TIMEOUT_S
            while time.monotonic() < deadline:
                if wal.exists():
                    records = wal.read_bytes().count(b'"result"')
                    if records >= 2:
                        break
                if child.poll() is not None:
                    pytest.fail("rollout finished before it could be killed")
                time.sleep(0.01)
            else:
                pytest.fail("journal never accumulated enough ticks")
            child.kill()  # SIGKILL: no cleanup, no atexit, no flush
            child.wait(timeout=CHAOS_TIMEOUT_S)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=CHAOS_TIMEOUT_S)

        # The WAL survived the hard kill: the chain validates on replay.
        with RunJournal(wal, run_id) as journal:
            replayed = len(journal.replayed)
        assert replayed >= 2

        # Resume in-process from the surviving WAL; compare against an
        # uninterrupted reference run in a separate journal.
        resumed = rollouthelper.run_rollout(str(tmp_path), run_id)
        assert resumed.resumed_from_tick >= 1
        reference = rollouthelper.run_rollout(str(tmp_path), "reference")
        assert resumed.run_signature == reference.run_signature
        assert resumed.timeline_signature == reference.timeline_signature
        assert resumed.counters.describe() == reference.counters.describe()
