"""Tests for the opportunistic turbo governor and air-ceiling analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.silicon import (
    Domain,
    TurboGovernor,
    XEON_8168,
    XEON_W3175X,
    air_cooled_cpu,
    air_cooling_power_ceiling,
    immersed_cpu,
    opportunity_vs_tdp,
)
from repro.thermal import FC_3284, HFE_7000


class TestTurboGovernor:
    def test_fewer_active_cores_more_frequency(self):
        governor = TurboGovernor(air_cooled_cpu(XEON_W3175X))
        few = governor.decide(active_cores=4)
        many = governor.decide(active_cores=28)
        assert few.frequency_ghz >= many.frequency_ghz
        assert few.power_watts <= governor.power_budget_watts + 1e-6

    def test_opportunistic_overclock_with_air(self):
        """The paper's telemetry insight: air can reach the overclocking
        domain when few cores are active."""
        governor = TurboGovernor(air_cooled_cpu(XEON_W3175X))
        decision = governor.decide(active_cores=4)
        assert decision.is_overclock
        assert decision.domain is Domain.OVERCLOCKING

    def test_air_all_core_stays_at_turbo(self):
        governor = TurboGovernor(air_cooled_cpu(XEON_W3175X))
        decision = governor.decide(active_cores=28)
        assert decision.frequency_ghz == pytest.approx(3.4)
        assert not decision.is_overclock

    def test_2pic_guarantees_all_core_overclock(self):
        """With the lifted budget, immersion sustains the overclock on
        every core simultaneously — guaranteed, not opportunistic."""
        governor = TurboGovernor(
            immersed_cpu(XEON_W3175X, HFE_7000), power_budget_watts=355.0
        )
        decision = governor.decide(active_cores=28)
        assert decision.is_overclock
        assert decision.junction_temp_c < 70.0

    def test_stability_ceiling_respected(self):
        governor = TurboGovernor(air_cooled_cpu(XEON_W3175X))
        decision = governor.decide(active_cores=1)
        assert decision.frequency_ghz <= round(3.4 * 1.23, 1) + 1e-9

    def test_locked_part_clamped_to_turbo(self):
        governor = TurboGovernor(air_cooled_cpu(XEON_8168))
        decision = governor.decide(active_cores=1)
        assert decision.frequency_ghz <= XEON_8168.domains.turbo_ghz

    def test_utilization_scales_headroom(self):
        governor = TurboGovernor(air_cooled_cpu(XEON_W3175X))
        idleish = governor.decide(active_cores=28, utilization=0.3)
        busy = governor.decide(active_cores=28, utilization=1.0)
        assert idleish.frequency_ghz >= busy.frequency_ghz

    def test_opportunity_curve_monotone(self):
        governor = TurboGovernor(immersed_cpu(XEON_W3175X, FC_3284))
        curve = governor.opportunity_curve()
        frequencies = [d.frequency_ghz for d in curve]
        assert len(curve) == 28
        assert all(b <= a + 1e-9 for a, b in zip(frequencies, frequencies[1:]))

    def test_validation(self):
        governor = TurboGovernor(air_cooled_cpu(XEON_W3175X))
        with pytest.raises(ConfigurationError):
            governor.decide(active_cores=0)
        with pytest.raises(ConfigurationError):
            governor.decide(active_cores=4, utilization=0.0)
        with pytest.raises(ConfigurationError):
            TurboGovernor(air_cooled_cpu(XEON_W3175X), stability_ceiling_ratio=0.5)


class TestAirCeiling:
    def test_ceiling_matches_intro_motivation(self):
        """A fixed air heatsink tops out near ~260 W — far below the
        500 W parts the paper's intro says are coming."""
        ceiling = air_cooling_power_ceiling()
        assert 220.0 < ceiling < 320.0
        assert ceiling < 500.0

    def test_opportunity_diminishes_with_tdp(self):
        """The paper: overclocking opportunities diminish in future
        generations as air cooling reaches its limits."""
        curve = opportunity_vs_tdp()
        ratios = [ratio for _, ratio in curve]
        assert ratios[0] == pytest.approx(1.0)
        assert all(b <= a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < 0.85  # 500 W part cannot hold base frequency

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            opportunity_vs_tdp(tdp_sweep_watts=(10.0,))
