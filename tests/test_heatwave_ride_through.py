"""Chaos acceptance for the facility-emergency ride-through.

The contract under test (ISSUE acceptance criteria):

* the naive fleet trips Tjmax and loses hosts + VMs;
* the laddered fleet rides the same emergency out with **zero** Tjmax
  violations, escalating all the way to controlled shutdown and back;
* the emergency revoke bypasses open circuit breakers (the dropped
  host's dead-man lease + starved reconciler are exercised en route);
* full overclock is restored within a bounded number of control ticks
  after the facility event clears;
* the whole story is bit-identical per seed (timeline signature).

Seeds come from ``REPRO_CHAOS_SEEDS`` (space-separated), mirroring the
other chaos suites, so CI can widen the matrix without code changes.
"""

import os

import pytest

from repro.cli import main as cli_main
from repro.emergency import EmergencyStage
from repro.experiments.heatwave_ride_through import (
    EVENT_CLEAR_S,
    TJMAX_C,
    run_heatwave_mode,
    run_heatwave_ride_through,
)

SEEDS = tuple(int(t) for t in os.environ.get("REPRO_CHAOS_SEEDS", "1 2 7").split())


@pytest.mark.parametrize("seed", SEEDS)
def test_naive_trips_tjmax_while_laddered_rides_through(seed):
    comparison = run_heatwave_ride_through(seed=seed)
    naive, laddered = comparison.naive, comparison.laddered

    # The naive fleet keeps overclocking into the cooling deficit and
    # pays for it: at least one host crosses Tjmax and crash-stops.
    assert naive.tjmax_violations >= 1
    assert naive.hosts_tripped >= 1
    assert naive.vms_lost >= 1
    assert naive.peak_tj_c > TJMAX_C
    assert naive.max_stage == int(EmergencyStage.NORMAL)

    # The laddered fleet trades performance away instead of hosts.
    assert laddered.tjmax_violations == 0
    assert laddered.hosts_tripped == 0
    assert laddered.vms_lost == 0
    assert laddered.peak_tj_c < TJMAX_C
    assert laddered.max_stage == int(EmergencyStage.SHUTDOWN)
    assert laddered.vms_evacuated >= 1
    assert laddered.hosts_shut_down >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_overclock_restored_within_bound_after_event_clears(seed):
    comparison = run_heatwave_ride_through(seed=seed)
    laddered = comparison.laddered
    assert laddered.rearms >= 1
    assert laddered.oc_restored_at_s is not None
    assert laddered.oc_restored_at_s > EVENT_CLEAR_S
    assert laddered.oc_restored_at_s - EVENT_CLEAR_S <= comparison.restore_bound_s


@pytest.mark.parametrize("seed", SEEDS)
def test_emergency_revoke_bypasses_the_open_breaker(seed):
    laddered = run_heatwave_mode(True, seed=seed)
    # The command drop opens a-0's breaker and expires its lease before
    # the revoke lands; only emergency priority gets through, and the
    # reconciler flags the host as starved rather than skipping quietly.
    assert laddered.lease_reverts >= 1
    assert laddered.emergency_bypasses >= 1
    assert laddered.reconcile_starved >= 1

    naive = run_heatwave_mode(False, seed=seed)
    assert naive.emergency_bypasses == 0
    assert naive.reconcile_starved == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_timeline_signature_is_bit_identical_across_reruns(seed):
    first = run_heatwave_mode(True, seed=seed)
    again = run_heatwave_mode(True, seed=seed)
    assert first.timeline_signature == again.timeline_signature
    assert first.timeline == again.timeline

    naive = run_heatwave_mode(False, seed=seed)
    assert naive.timeline_signature != first.timeline_signature


def test_ladder_walks_every_rung_down_and_back_up():
    laddered = run_heatwave_mode(True, seed=1)
    escalations = [
        event.target for event in laddered.timeline if event.kind == "emergency-escalate"
    ]
    relaxations = [
        event.target for event in laddered.timeline if event.kind == "emergency-relax"
    ]
    assert escalations == ["revoke_overclock", "power_cap", "evacuate", "shutdown"]
    assert relaxations == ["shutdown", "evacuate", "power_cap", "revoke_overclock"]


def test_cli_heatwave_output_is_reproducible(capsys):
    assert cli_main(["heatwave", "--seed", "3"]) == 0
    first = capsys.readouterr().out
    assert cli_main(["heatwave", "--seed", "3"]) == 0
    again = capsys.readouterr().out
    assert first == again
    assert "Heat-wave ride-through" in first

    assert cli_main(["heatwave", "--seed", "4"]) == 0
    other = capsys.readouterr().out
    assert other != first
