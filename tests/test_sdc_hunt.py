"""Chaos acceptance for the SDC hunt (naive vs silicon-health pipeline).

The contract under test (ISSUE acceptance criteria):

* the naive fleet leaks silent corruptions and reboot-loops crashed
  hosts for the rest of the horizon;
* the robust fleet rides the identical drifting silicon out with
  **zero** SDC escapes and **zero** ungraceful crashes, catches the
  forced corruption via the duplicate-execution audit, and keeps its
  transient capacity loss inside the coordinator's budget;
* screening reinstates the falsely-accused burst host instead of
  retiring a good part (bounded re-arm);
* the whole story is bit-identical per seed (run signature).

Seeds come from ``REPRO_CHAOS_SEEDS`` (space-separated), mirroring the
other chaos suites, so CI can widen the matrix without code changes.
"""

import os

import pytest

from repro.cli import main as cli_main
from repro.health import HealthLadderConfig
from repro.experiments.sdc_hunt import (
    BURST_TARGET,
    FORCED_SDC_TARGET,
    run_sdc_hunt,
    run_sdc_mode,
)

SEEDS = tuple(int(t) for t in os.environ.get("REPRO_CHAOS_SEEDS", "1 2 7").split())


@pytest.mark.parametrize("seed", SEEDS)
def test_naive_leaks_what_the_health_pipeline_contains(seed):
    comparison = run_sdc_hunt(seed=seed)
    naive, robust = comparison.naive, comparison.robust

    # The naive fleet trusts the characterized envelope forever and
    # pays in silent corruption and reboot-looping crashed hosts.
    assert naive.sdc_escapes > 0
    assert naive.crashes > 0
    assert naive.hosts_crashed >= 1
    assert naive.sdc_caught == 0
    assert naive.retires == 0

    # The robust fleet trades bounded capacity away instead.
    assert robust.sdc_escapes == 0
    assert robust.crashes == 0
    assert robust.hosts_crashed == 0
    assert robust.sdc_caught >= 1
    assert robust.detector_fires >= 1
    assert robust.quarantines >= 1
    assert robust.screens_completed >= 1
    assert robust.reinstates >= 1
    assert robust.retires >= 1
    assert robust.health_limited_decisions >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_robust_capacity_loss_is_bounded(seed):
    robust = run_sdc_mode(True, seed=seed)
    budget = HealthLadderConfig().max_out_of_service_fraction
    assert robust.peak_out_of_service_fraction <= budget
    assert robust.capacity_loss_fraction < 0.10
    naive = run_sdc_mode(False, seed=seed)
    assert robust.capacity_loss_fraction < naive.capacity_loss_fraction


@pytest.mark.parametrize("seed", SEEDS)
def test_forced_corruption_is_audited_in_robust_and_escapes_in_naive(seed):
    robust = run_sdc_mode(True, seed=seed)
    audits = [event for event in robust.timeline if event.kind == "sdc-audit"]
    assert len(audits) == 1
    assert audits[0].target == FORCED_SDC_TARGET


@pytest.mark.parametrize("seed", SEEDS)
def test_run_signature_is_bit_identical_across_reruns(seed):
    first = run_sdc_mode(True, seed=seed)
    again = run_sdc_mode(True, seed=seed)
    assert first.run_signature == again.run_signature
    assert first.timeline == again.timeline
    assert first.final_envelopes == again.final_envelopes

    naive = run_sdc_mode(False, seed=seed)
    assert naive.run_signature != first.run_signature


def test_engine_race_matches_direct_runs():
    comparison = run_sdc_hunt(seed=1)
    assert comparison.robust.run_signature == run_sdc_mode(True, seed=1).run_signature
    assert comparison.naive.run_signature == run_sdc_mode(False, seed=1).run_signature


def test_spurious_burst_host_is_screened_and_reinstated():
    # The mce-burst fault plants 24 spurious CEs on a healthy host: the
    # detector cannot tell them from a real ramp, so the ladder drains
    # and screens the host — and the verdict reinstates it near the
    # nominal envelope instead of retiring a good part.
    robust = run_sdc_mode(True, seed=1)
    assert BURST_TARGET not in robust.retired_hosts
    verdicts = [
        event
        for event in robust.timeline
        if event.kind == "health-verdict" and event.target == BURST_TARGET
    ]
    assert verdicts
    assert all("reinstate" in event.detail for event in verdicts)


def test_cli_healthscan_output_is_reproducible(capsys):
    assert cli_main(["healthscan", "--seed", "3"]) == 0
    first = capsys.readouterr().out
    assert cli_main(["healthscan", "--seed", "3"]) == 0
    again = capsys.readouterr().out
    assert first == again
    assert "SDC hunt" in first

    assert cli_main(["healthscan", "--seed", "4"]) == 0
    other = capsys.readouterr().out
    assert other != first
