"""Tests for the simulation tracing facility."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.sim.trace import SimTrace


class TestSimTrace:
    def test_events_timestamped_with_sim_clock(self):
        simulator = Simulator()
        trace = SimTrace(simulator)
        simulator.at(10.0, lambda: trace.emit("asc", "scale-out triggered"))
        simulator.at(70.0, lambda: trace.emit("asc", "vm ready"))
        simulator.run()
        events = list(trace)
        assert [e.time for e in events] == [10.0, 70.0]
        assert events[0].category == "asc"

    def test_ring_buffer_evicts_oldest(self):
        simulator = Simulator()
        trace = SimTrace(simulator, max_events=3)
        for index in range(5):
            trace.emit("x", f"event-{index}")
        assert len(trace) == 3
        assert [e.message for e in trace] == ["event-2", "event-3", "event-4"]
        assert trace.emitted == 5

    def test_category_filtering_at_record_time(self):
        simulator = Simulator()
        trace = SimTrace(simulator, categories={"power"})
        trace.emit("power", "kept")
        trace.emit("noise", "dropped")
        assert len(trace) == 1
        assert trace.suppressed == 1

    def test_select_filters(self):
        simulator = Simulator()
        trace = SimTrace(simulator)
        for time, category in ((1.0, "a"), (2.0, "b"), (3.0, "a")):
            simulator.at(time, lambda c=category: trace.emit(c, "m"))
        simulator.run()
        assert len(trace.select(category="a")) == 2
        assert len(trace.select(start_time=1.5)) == 2
        assert len(trace.select(start_time=1.5, end_time=2.5)) == 1

    def test_emitter_binding(self):
        simulator = Simulator()
        trace = SimTrace(simulator)
        log = trace.emitter("lb")
        log("routed")
        assert trace.tail(1)[0].category == "lb"

    def test_render(self):
        simulator = Simulator()
        trace = SimTrace(simulator)
        trace.emit("asc", "hello")
        text = trace.render()
        assert "asc" in text and "hello" in text

    def test_validation(self):
        simulator = Simulator()
        with pytest.raises(ConfigurationError):
            SimTrace(simulator, max_events=0)
        trace = SimTrace(simulator)
        with pytest.raises(ConfigurationError):
            trace.tail(-1)
