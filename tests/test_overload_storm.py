"""The overload storm experiment: determinism, SLO, and collapse contrast.

The acceptance contract: under the identical compound storm (2.6x
demand surge + condenser derate) the robust overload-control stack
holds the served-latency SLO with a bounded queue and near-zero losses,
while the naive fleet — same seed, same storm — trips fleet-wide and
its goodput collapses to zero for a sustained window. And both runs are
bit-deterministic per seed: chained tick signature and fault-timeline
signature reproduce exactly.

Storm runs cost a few seconds each, so results are computed once per
seed and shared across the test class via a module-level cache. Seeds
come from ``REPRO_CHAOS_SEEDS`` (space-separated ints).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import overload_storm
from repro.experiments.overload_storm import (
    SLO_P99_S,
    StormComparison,
    format_overload_storm,
    run_overload_storm,
)

SEEDS = [int(token) for token in os.environ.get("REPRO_CHAOS_SEEDS", "1 2").split()]

_CACHE: dict[int, StormComparison] = {}


def storm(seed: int) -> StormComparison:
    if seed not in _CACHE:
        _CACHE[seed] = run_overload_storm(seed=seed)
    return _CACHE[seed]


@pytest.mark.parametrize("seed", SEEDS)
class TestRobustRideThrough:
    def test_slo_held_through_the_storm(self, seed):
        robust = storm(seed).robust
        assert robust.storm_p99_s is not None
        assert robust.storm_p99_s <= SLO_P99_S

    def test_queue_stays_bounded(self, seed):
        robust = storm(seed).robust
        assert robust.queue_max_depth < robust.queue_capacity

    def test_no_fleet_trip_and_negligible_loss(self, seed):
        robust = storm(seed).robust
        assert robust.host_trips == 0
        assert robust.live_hosts_final == 4
        assert robust.lost_to_trips <= 50

    def test_ladder_actually_engaged(self, seed):
        # A storm the ladder slept through would prove nothing.
        robust = storm(seed).robust
        assert robust.max_brownout_stage >= 1
        assert robust.boost_revokes >= 1
        assert (
            robust.shed_low_priority
            + robust.rejected_throttled
            + robust.rejected_brownout
        ) > 0


@pytest.mark.parametrize("seed", SEEDS)
class TestNaiveCollapse:
    def test_fleet_trips_and_loses_in_flight_work(self, seed):
        naive = storm(seed).naive
        assert naive.host_trips >= 1
        assert naive.lost_to_trips > 1000

    def test_latency_blows_through_the_slo(self, seed):
        naive = storm(seed).naive
        assert naive.storm_p99_s is None or naive.storm_p99_s > 2 * SLO_P99_S

    def test_goodput_collapses_where_robust_holds(self, seed):
        comparison = storm(seed)
        assert comparison.naive.worst_window_goodput_rps < 5.0
        assert comparison.robust.worst_window_goodput_rps > 20.0


@pytest.mark.parametrize("seed", SEEDS)
class TestAccountingAndDeterminism:
    def test_every_request_is_accounted_for(self, seed):
        comparison = storm(seed)
        assert comparison.naive.unaccounted == 0
        assert comparison.robust.unaccounted == 0

    def test_same_seed_reproduces_bit_identically(self, seed):
        first = storm(seed)
        second = run_overload_storm(seed=seed)
        for mode in ("naive", "robust"):
            a, b = getattr(first, mode), getattr(second, mode)
            assert a.chain_signature == b.chain_signature
            assert a.timeline_signature == b.timeline_signature
            assert a == b

    def test_distinct_seeds_diverge(self, seed):
        # A short storm suffices: divergence shows up within ticks.
        other = run_overload_storm(seed=seed + 1000, storm_ticks=80, warm_ticks=10)
        short = run_overload_storm(seed=seed, storm_ticks=80, warm_ticks=10)
        assert other.robust.chain_signature != short.robust.chain_signature


class TestFormatting:
    def test_format_renders_both_modes_and_signatures(self):
        seed = SEEDS[0]
        text = format_overload_storm(storm(seed))
        assert "naive" in text and "robust" in text
        assert storm(seed).robust.chain_signature[:12] in text
        assert "op-demand-surge" in text
        assert "thermal-excursion" in text

    def test_short_storm_with_no_completions_renders(self):
        # A degenerate run (nothing completes in-window) must format,
        # not crash on the None p99.
        result = overload_storm.run_storm_mode(
            "naive", seed=3, warm_ticks=2, storm_ticks=4
        )
        assert result.storm_p99_s is None or result.storm_p99_s >= 0.0
