"""Memoized hot-path lookups: cached and uncached values must match.

The VF-curve and junction-temperature lookups are pure and get hit with
identical arguments thousands of times per sweep; these tests pin the
contract that memoization changes only the speed, never the value.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import FrequencyError, TCOError
from repro.silicon.vf_curve import VFCurve, w3175x_vf_curve
from repro.tco import DEFAULT_BASELINE_SHARES, renormalize_shares
from repro.thermal.junction import JunctionModel, _steady_state_tj_c


class TestVFCurveCache:
    def test_cached_equals_uncached(self):
        curve = w3175x_vf_curve()
        frequencies = [3.0 + 0.05 * i for i in range(40)]
        offsets = [0.0, -25.0, 50.0]
        for frequency in frequencies:
            for offset in offsets:
                cached = curve.voltage_at(frequency, offset)
                uncached = curve._voltage_at_uncached(frequency, offset)
                assert cached == uncached

    def test_repeated_lookups_hit_the_cache(self):
        curve = w3175x_vf_curve()
        for _ in range(5):
            curve.voltage_at(3.7)
        info = curve.voltage_cache_info()
        assert info.hits >= 4
        assert info.misses == 1

    def test_caches_are_per_instance(self):
        first = VFCurve([(3.0, 0.85), (4.0, 1.0)])
        second = VFCurve([(3.0, 0.90), (4.0, 1.05)])
        assert first.voltage_at(3.5) != second.voltage_at(3.5)

    def test_invalid_frequency_still_raises(self):
        curve = w3175x_vf_curve()
        with pytest.raises(FrequencyError):
            curve.voltage_at(-1.0)

    def test_curve_survives_pickle(self):
        curve = w3175x_vf_curve()
        expected = curve.voltage_at(3.9)
        clone = pickle.loads(pickle.dumps(curve))
        assert clone.voltage_at(3.9) == expected
        assert clone.voltage_cache_info().misses == 1


class TestJunctionCache:
    def test_cached_equals_formula(self):
        model = JunctionModel(reference_temp_c=34.0, thermal_resistance_c_per_w=0.12)
        for power in (0.0, 150.0, 205.0, 305.0):
            expected = model.reference_temp_c + model.thermal_resistance_c_per_w * power
            assert model.junction_temp_c(power) == pytest.approx(expected, abs=0.0)

    def test_repeated_lookups_hit_the_cache(self):
        before = _steady_state_tj_c.cache_info().hits
        model = JunctionModel(reference_temp_c=34.0, thermal_resistance_c_per_w=0.08)
        for _ in range(4):
            model.junction_temp_c(305.0)
        assert _steady_state_tj_c.cache_info().hits >= before + 3


class TestRenormalizeShares:
    @pytest.mark.parametrize("value", [0.01, 0.08, 0.13, 0.25, 0.9])
    def test_shares_always_sum_to_one(self, value):
        shares = renormalize_shares(DEFAULT_BASELINE_SHARES, "energy", value)
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-12)
        assert shares["energy"] == value

    def test_relative_weights_preserved(self):
        shares = renormalize_shares(DEFAULT_BASELINE_SHARES, "energy", 0.25)
        original_ratio = (
            DEFAULT_BASELINE_SHARES["servers"] / DEFAULT_BASELINE_SHARES["network"]
        )
        assert shares["servers"] / shares["network"] == pytest.approx(original_ratio)

    def test_identity_when_value_unchanged(self):
        shares = renormalize_shares(
            DEFAULT_BASELINE_SHARES, "energy", DEFAULT_BASELINE_SHARES["energy"]
        )
        for key, value in DEFAULT_BASELINE_SHARES.items():
            assert shares[key] == pytest.approx(value)

    def test_validation(self):
        with pytest.raises(TCOError):
            renormalize_shares(DEFAULT_BASELINE_SHARES, "energy", 1.5)
        with pytest.raises(TCOError):
            renormalize_shares(DEFAULT_BASELINE_SHARES, "energy", 0.0)
        with pytest.raises(TCOError):
            renormalize_shares(DEFAULT_BASELINE_SHARES, "unknown", 0.1)
