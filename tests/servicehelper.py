"""Subprocess driver for the service SIGKILL chaos test.

Runs a journaled :class:`~repro.service.checkpoint.ServiceSession` with
deliberately slow wall-clock ticks so the parent test can SIGKILL this
process *mid-run* — after the operator op and a batch of per-tick
signature checkpoints have been fsync'd to the service WAL, but before
the run finishes. The parent then resumes the session in-process and
asserts the rebuilt core's chained tick signature is bit-identical to
an uninterrupted reference run.

Invoked as ``python -m tests.servicehelper <cache_dir> <run_id> <seed>``
with ``PYTHONPATH`` covering both ``src/`` and the repository root.
"""

from __future__ import annotations

import sys
import time

from repro.service import ServiceSession

#: Run shape shared with the parent test.
TICKS = 60
#: Tick boundary the operator op is applied at (must be well before the
#: parent's kill window so the op record is always durable when killed).
OP_AT_TICK = 6
#: The journaled operator action: a demand surge long enough to still be
#: shaping load at tick 60, so a mis-replayed op shows up in signatures.
OP = {"op": "demand-surge", "factor": 1.8, "duration_s": 30.0}
#: Wall sleep per tick in the child (the kill window); 0 in-process.
SLEEP_S = 0.05


def run_service(
    cache_dir: str,
    run_id: str,
    seed: int,
    ticks: int = TICKS,
    sleep_s: float = SLEEP_S,
) -> dict:
    """Open (or resume) the session and tick it to ``ticks``.

    The op is applied only when the core sits exactly at its recorded
    boundary; on resume the WAL has already replayed it, and the core
    is past that boundary, so it is never double-applied.
    """
    session = ServiceSession(cache_dir, run_id, seed=seed)
    core = session.open()
    try:
        while core.tick_index < ticks:
            if core.tick_index == OP_AT_TICK:
                session.apply_op(OP)
            session.tick()
            if sleep_s:
                time.sleep(sleep_s)
        return {
            "tick": core.tick_index,
            "signature": core.signature,
            "resumed": session.resumed,
            "replayed_ticks": session.replayed_ticks,
        }
    finally:
        session.close()


def main(argv: list[str]) -> int:
    cache_dir, run_id, seed = argv[1], argv[2], int(argv[3])
    run_service(cache_dir, run_id, seed=seed)
    print("SERVICE-DONE", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
