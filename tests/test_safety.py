"""Fail-safe de-rating on degraded telemetry.

The acceptance contract: under *every* injected sensor-fault kind the
fail-safe controller spends a bounded number of control ticks above
Tjmax, and total telemetry loss always converges to base frequency
within ``SafetyConfig.max_suspect_ticks`` ticks and re-arms after clean
samples. All scenarios are seed-driven and deterministic.
"""

from __future__ import annotations

import pytest

from repro.autoscale import AutoScaler, AutoscalePolicy, ScalerMode
from repro.errors import ConfigurationError, TelemetryDegraded
from repro.experiments.degraded_telemetry import (
    run_degraded_telemetry,
)
from repro.reliability import (
    OverclockGuard,
    SafetyConfig,
    SafetyState,
    SafetySupervisor,
    physics_tj_bounds,
)
from repro.silicon import DynamicPowerModel, LeakageModel
from repro.sim import Simulator
from repro.telemetry import (
    FaultySensor,
    SensorFault,
    SensorFaultMode,
    SensorFusion,
    VirtualSensor,
)
from repro.thermal.junction import JunctionModel


class _Source:
    def __init__(self, value: float = 50.0) -> None:
        self.value = value

    def __call__(self) -> float:
        return self.value


def make_fusion(channels=3):
    sources = [_Source() for _ in range(channels)]
    sensors = [
        FaultySensor(VirtualSensor(f"tj{i}", source), seed=i)
        for i, source in enumerate(sources)
    ]
    return sources, sensors, SensorFusion(sensors)


def drop_all(sensors):
    for sensor in sensors:
        sensor.inject(SensorFault(SensorFaultMode.DROPOUT))


class TestSupervisorStateMachine:
    def test_starts_armed(self):
        supervisor = SafetySupervisor()
        assert supervisor.state is SafetyState.ARMED
        assert not supervisor.degraded

    def test_trips_after_max_suspect_ticks_exactly(self):
        _, sensors, fusion = make_fusion()
        config = SafetyConfig(max_suspect_ticks=3, rearm_clean_samples=2)
        supervisor = SafetySupervisor(fusion=fusion, config=config)
        supervisor.poll(0.0)
        drop_all(sensors)
        supervisor.poll(1.0)
        supervisor.poll(2.0)
        assert not supervisor.degraded  # two suspect ticks: not yet
        supervisor.poll(3.0)
        assert supervisor.degraded  # the third trips — the bound
        assert supervisor.degrade_events == 1

    def test_single_glitch_does_not_trip(self):
        _, sensors, fusion = make_fusion()
        supervisor = SafetySupervisor(fusion=fusion)
        supervisor.poll(0.0)
        drop_all(sensors)
        supervisor.poll(1.0)
        for sensor in sensors:
            sensor.clear()
        for t in range(2, 10):
            supervisor.poll(float(t))
        assert not supervisor.degraded
        assert supervisor.degrade_events == 0

    def test_rearm_needs_consecutive_clean_samples(self):
        _, sensors, fusion = make_fusion()
        config = SafetyConfig(max_suspect_ticks=1, rearm_clean_samples=3)
        supervisor = SafetySupervisor(fusion=fusion, config=config)
        supervisor.poll(0.0)
        drop_all(sensors)
        supervisor.poll(1.0)
        assert supervisor.degraded
        for sensor in sensors:
            sensor.clear()
        supervisor.poll(2.0)
        supervisor.poll(3.0)
        assert supervisor.degraded  # two clean: still holding
        supervisor.poll(4.0)
        assert not supervisor.degraded  # third clean re-arms
        assert supervisor.rearm_events == 1

    def test_unclean_sample_resets_rearm_streak(self):
        _, sensors, fusion = make_fusion()
        config = SafetyConfig(max_suspect_ticks=1, rearm_clean_samples=2)
        supervisor = SafetySupervisor(fusion=fusion, config=config)
        supervisor.poll(0.0)
        drop_all(sensors)
        supervisor.poll(1.0)
        assert supervisor.degraded
        for sensor in sensors:
            sensor.clear()
        supervisor.poll(2.0)  # clean 1
        drop_all(sensors)
        supervisor.poll(3.0)  # unhealthy: streak resets
        for sensor in sensors:
            sensor.clear()
        supervisor.poll(4.0)  # clean 1 again
        assert supervisor.degraded
        supervisor.poll(5.0)  # clean 2
        assert not supervisor.degraded

    def test_check_raises_typed_condition_while_degraded(self):
        _, sensors, fusion = make_fusion()
        supervisor = SafetySupervisor(
            fusion=fusion, config=SafetyConfig(max_suspect_ticks=1)
        )
        supervisor.poll(0.0)
        drop_all(sensors)
        supervisor.poll(1.0)
        with pytest.raises(TelemetryDegraded) as excinfo:
            supervisor.check()
        assert "channels healthy" in str(excinfo.value)
        assert supervisor.safe_ratio(1.3) == 1.0

    def test_poll_without_fusion_raises(self):
        with pytest.raises(ConfigurationError):
            SafetySupervisor().poll(0.0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SafetyConfig(max_suspect_ticks=0)
        with pytest.raises(ConfigurationError):
            SafetyConfig(rearm_clean_samples=0)


class TestGuardIntegration:
    def test_degraded_telemetry_outranks_everything(self):
        _, sensors, fusion = make_fusion()
        supervisor = SafetySupervisor(
            fusion=fusion, config=SafetyConfig(max_suspect_ticks=1)
        )
        guard = OverclockGuard(safety=supervisor)
        supervisor.poll(0.0)
        assert guard.decide(1.2).granted_ratio == pytest.approx(1.2)
        drop_all(sensors)
        guard.observe_telemetry(fusion.read(1.0))
        assert guard.telemetry_degraded
        decision = guard.decide(1.2)
        assert decision.granted_ratio == 1.0
        assert decision.limited_by == "telemetry"

    def test_guard_regrants_after_rearm(self):
        _, sensors, fusion = make_fusion()
        config = SafetyConfig(max_suspect_ticks=1, rearm_clean_samples=2)
        supervisor = SafetySupervisor(fusion=fusion, config=config)
        guard = OverclockGuard(safety=supervisor)
        supervisor.poll(0.0)
        drop_all(sensors)
        guard.observe_telemetry(fusion.read(1.0))
        assert guard.decide(1.2).limited_by == "telemetry"
        for sensor in sensors:
            sensor.clear()
        guard.observe_telemetry(fusion.read(2.0))
        guard.observe_telemetry(fusion.read(3.0))
        assert guard.decide(1.2).granted_ratio == pytest.approx(1.2)


class TestPhysicsBounds:
    def test_envelope_covers_operating_point(self):
        junction = JunctionModel(reference_temp_c=34.0, thermal_resistance_c_per_w=0.08)
        dynamic = DynamicPowerModel(
            ref_watts=175.0, ref_frequency_ghz=3.4, ref_voltage_v=0.9
        )
        leakage = LeakageModel()
        bounds = physics_tj_bounds(junction, dynamic, leakage, 3.4, 0.9)
        # The actual steady-state Tj at the point must be inside.
        assert bounds.contains(junction.junction_temp_c(205.0))
        assert bounds.lower < 34.0
        assert not bounds.contains(250.0)


class TestAutoScalerFailSafe:
    def test_degraded_supervisor_forces_base_frequency(self):
        _, sensors, fusion = make_fusion()
        supervisor = SafetySupervisor(
            fusion=fusion, config=SafetyConfig(max_suspect_ticks=1)
        )
        simulator = Simulator(seed=1)
        policy = AutoscalePolicy(mode=ScalerMode.OC_A)
        scaler = AutoScaler(simulator, policy, safety=supervisor)
        scaler._frequency_ghz = policy.max_frequency_ghz
        fusion.read(0.0)  # prime seqs so every later read is stale
        drop_all(sensors)
        simulator.run(until=4 * policy.decision_interval_s)
        assert supervisor.degraded
        assert scaler.frequency_ghz == pytest.approx(policy.min_frequency_ghz)
        assert scaler.telemetry_degraded_ticks >= 1
        assert scaler.telemetry_derates == 1

    def test_healthy_supervisor_leaves_scaler_alone(self):
        _, sensors, fusion = make_fusion()
        supervisor = SafetySupervisor(fusion=fusion)
        simulator = Simulator(seed=1)
        policy = AutoscalePolicy(mode=ScalerMode.OC_A)
        scaler = AutoScaler(simulator, policy, safety=supervisor)
        simulator.run(until=4 * policy.decision_interval_s)
        assert not supervisor.degraded
        assert scaler.telemetry_degraded_ticks == 0
        assert scaler.telemetry_derates == 0


class TestEndToEndDegradedTelemetry:
    """The headline seed-driven acceptance scenarios (DES-driven)."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_degraded_telemetry(seed=1)

    def test_failsafe_bounds_ticks_above_tjmax_under_every_fault(self, result):
        assert set(result.by_kind) == {
            "sensor-stuck",
            "sensor-dropout",
            "sensor-noise",
            "sensor-lag",
            "sensor-spike",
        }
        for kind, (naive, safe) in result.by_kind.items():
            assert safe.ticks_above_tjmax <= result.bound_ticks, kind
            assert safe.ticks_above_tjmax <= naive.ticks_above_tjmax, kind

    def test_naive_controller_cooks_under_masking_faults(self, result):
        # Stuck and dropout mask the excursion completely: the naive
        # controller holds overclock through the whole hot window.
        for kind in ("sensor-stuck", "sensor-dropout"):
            naive, _ = result.by_kind[kind]
            assert naive.ticks_above_tjmax >= 50, kind

    def test_total_loss_converges_to_base_within_bound(self, result):
        loss = result.total_loss
        assert loss is not None
        assert result.loss_derate_latency_ticks is not None
        assert result.loss_derate_latency_ticks <= result.bound_ticks
        assert loss.ticks_above_tjmax == 0
        assert loss.degrade_events == 1

    def test_rearms_after_channels_return(self, result):
        loss = result.total_loss
        assert loss.rearm_events == 1
        assert loss.final_ratio > 1.0

    def test_deterministic_across_runs(self, result):
        again = run_degraded_telemetry(seed=1)
        for kind, (naive, safe) in result.by_kind.items():
            naive2, safe2 = again.by_kind[kind]
            assert naive.ticks_above_tjmax == naive2.ticks_above_tjmax
            assert safe.ticks_above_tjmax == safe2.ticks_above_tjmax
            assert naive.max_tj_c == naive2.max_tj_c
