"""Tests for transient thermal dynamics and cycle counting."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.thermal import FC_3284, immersion_junction_model
from repro.thermal.junction import JunctionModel
from repro.thermal.transient import (
    TemperaturePoint,
    ThermalRC,
    count_cycles,
    cycling_damage,
)

AIR = JunctionModel(reference_temp_c=20.0, thermal_resistance_c_per_w=0.16)


class TestThermalRC:
    def test_settles_to_steady_state(self):
        rc = ThermalRC(AIR, tau_s=10.0, initial_power_watts=0.0)
        rc.set_power(0.0, 205.0)
        temp = rc.sample(100.0)  # 10 time constants
        assert temp == pytest.approx(AIR.junction_temp_c(205.0), abs=0.1)

    def test_exponential_approach(self):
        rc = ThermalRC(AIR, tau_s=10.0, initial_power_watts=0.0)
        rc.set_power(0.0, 205.0)
        steady = AIR.junction_temp_c(205.0)
        start = AIR.junction_temp_c(0.0)
        after_tau = rc.sample(10.0)
        expected = steady + (start - steady) * math.exp(-1.0)
        assert after_tau == pytest.approx(expected, abs=0.1)

    def test_cooling_transient(self):
        rc = ThermalRC(AIR, tau_s=10.0, initial_power_watts=205.0)
        rc.set_power(0.0, 0.0)
        assert rc.sample(5.0) > AIR.junction_temp_c(0.0)
        assert rc.sample(200.0) == pytest.approx(AIR.junction_temp_c(0.0), abs=0.1)

    def test_immersion_floor_is_boiling_point(self):
        model = immersion_junction_model(FC_3284)
        rc = ThermalRC(model, tau_s=10.0, initial_power_watts=205.0)
        rc.set_power(0.0, 0.0)
        temp = rc.sample(500.0)
        assert temp == pytest.approx(FC_3284.boiling_point_c, abs=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalRC(AIR, tau_s=0.0)
        rc = ThermalRC(AIR)
        rc.set_power(10.0, 100.0)
        with pytest.raises(ConfigurationError):
            rc.set_power(5.0, 50.0)
        with pytest.raises(ConfigurationError):
            rc.set_power(20.0, -1.0)


class TestCycleCounting:
    def _square_wave_trace(self, low, high, periods, period_s=100.0):
        trace = []
        time = 0.0
        for _ in range(periods):
            trace.append(TemperaturePoint(time, low))
            trace.append(TemperaturePoint(time + period_s / 2, high))
            time += period_s
        trace.append(TemperaturePoint(time, low))
        return trace

    def test_counts_square_wave_swings(self):
        trace = self._square_wave_trace(30.0, 80.0, periods=5)
        cycles = count_cycles(trace)
        assert len(cycles) == 10  # 5 up + 5 down half-swings
        assert all(c.delta_t_c == pytest.approx(50.0) for c in cycles)

    def test_small_ripple_ignored(self):
        trace = self._square_wave_trace(50.0, 51.0, periods=5)
        assert count_cycles(trace, min_swing_c=2.0) == []

    def test_monotone_trace_single_swing(self):
        trace = [TemperaturePoint(t, 30.0 + t) for t in range(0, 50, 5)]
        cycles = count_cycles(trace)
        assert len(cycles) == 1
        assert cycles[0].delta_t_c == pytest.approx(45.0)

    def test_empty_and_validation(self):
        assert count_cycles([]) == []
        with pytest.raises(ConfigurationError):
            count_cycles([], min_swing_c=0.0)


class TestCyclingDamage:
    def test_wider_swings_cost_more(self):
        narrow = [TemperaturePoint(0, 50), TemperaturePoint(50, 65), TemperaturePoint(100, 50)]
        wide = [TemperaturePoint(0, 20), TemperaturePoint(50, 85), TemperaturePoint(100, 20)]
        assert cycling_damage(count_cycles(wide)) > cycling_damage(count_cycles(narrow))

    def test_reference_calibration(self):
        """A year of daily 65-degC swings consumes ~1/20 of cycling life
        (the Table V Coffin-Manson scale is 20 years)."""
        trace = []
        for day in range(365):
            trace.append(TemperaturePoint(day * 86400.0, 20.0))
            trace.append(TemperaturePoint(day * 86400.0 + 43200.0, 85.0))
        trace.append(TemperaturePoint(365 * 86400.0, 20.0))
        damage = cycling_damage(count_cycles(trace))
        assert damage == pytest.approx(1.0 / 20.0, rel=0.05)

    def test_immersion_swings_cost_far_less(self):
        """The paper's mechanism: the boiling-point floor compresses
        swings; the same duty cycle in the tank costs ~10x less
        cycling life than in air."""
        air_day = [TemperaturePoint(0, 20), TemperaturePoint(43200, 85),
                   TemperaturePoint(86400, 20)]
        tank_day = [TemperaturePoint(0, 50), TemperaturePoint(43200, 66),
                    TemperaturePoint(86400, 50)]
        air_damage = cycling_damage(count_cycles(air_day))
        tank_damage = cycling_damage(count_cycles(tank_day))
        assert air_damage > 10 * tank_damage
