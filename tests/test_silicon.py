"""Tests for the silicon substrate: domains, V/F, power, CPUs, GPUs, servers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FrequencyError
from repro.silicon import (
    B1,
    B2,
    B4,
    CONFIG_ORDER,
    CORE_I9900K,
    GPU,
    GPU_BASE,
    GPU_CONFIGS,
    OC1,
    OC3,
    OCG1,
    OCG3,
    OCP_BLADE_8168,
    RTX_2080TI,
    TANK1_SERVER,
    XEON_8168,
    XEON_8180,
    XEON_W3175X,
    Domain,
    DynamicPowerModel,
    LeakageModel,
    OperatingDomains,
    ServerPowerModel,
    VFCurve,
    air_cooled_cpu,
    config_by_name,
    immersed_cpu,
    round_to_bin,
    w3175x_vf_curve,
)
from repro.thermal import FC_3284, HFE_7000


class TestOperatingDomains:
    DOMAINS = OperatingDomains(min_ghz=1.2, base_ghz=2.7, turbo_ghz=3.4, overclock_max_ghz=4.5)

    def test_classification_bands(self):
        assert self.DOMAINS.classify(2.0) is Domain.GUARANTEED
        assert self.DOMAINS.classify(3.0) is Domain.TURBO
        assert self.DOMAINS.classify(4.0) is Domain.OVERCLOCKING
        assert self.DOMAINS.classify(5.0) is Domain.NON_OPERATING
        assert self.DOMAINS.classify(0.5) is Domain.NON_OPERATING

    def test_boundaries_inclusive(self):
        assert self.DOMAINS.classify(2.7) is Domain.GUARANTEED
        assert self.DOMAINS.classify(3.4) is Domain.TURBO
        assert self.DOMAINS.classify(4.5) is Domain.OVERCLOCKING

    def test_validate_raises_outside(self):
        with pytest.raises(FrequencyError):
            self.DOMAINS.validate(5.0)

    def test_headroom_fraction(self):
        assert self.DOMAINS.overclock_headroom_fraction == pytest.approx(4.5 / 3.4 - 1)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingDomains(min_ghz=2.0, base_ghz=1.0, turbo_ghz=3.0, overclock_max_ghz=4.0)


class TestVFCurve:
    def test_paper_anchor_points(self):
        curve = w3175x_vf_curve()
        assert curve.voltage_at(3.4) == pytest.approx(0.90)
        assert curve.voltage_at(3.4 * 1.23) == pytest.approx(0.98)

    def test_interpolation_between_anchors(self):
        curve = w3175x_vf_curve()
        mid_v = curve.voltage_at((3.4 + 3.4 * 1.23) / 2)
        assert 0.90 < mid_v < 0.98

    def test_offset_applied(self):
        curve = w3175x_vf_curve()
        assert curve.voltage_at(3.4, offset_mv=50.0) == pytest.approx(0.95)

    def test_extrapolation_is_monotone(self):
        curve = w3175x_vf_curve()
        assert curve.voltage_at(4.5) > curve.voltage_at(4.2)
        assert curve.voltage_at(3.0) < 0.90

    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            VFCurve([(3.4, 0.9)])

    @given(st.floats(min_value=2.0, max_value=5.0), st.floats(min_value=2.0, max_value=5.0))
    def test_voltage_monotone_in_frequency(self, f1, f2):
        curve = w3175x_vf_curve()
        low, high = sorted([f1, f2])
        assert curve.voltage_at(low) <= curve.voltage_at(high) + 1e-12


class TestPowerModels:
    def test_leakage_savings_match_paper(self):
        """Section IV: 17-22 °C cooler saves ~11 W static per socket."""
        leak = LeakageModel()
        save_17 = leak.savings_watts(92.0, 75.0)
        save_22 = leak.savings_watts(90.0, 68.0)
        assert 9.0 <= save_17 <= 13.0
        assert 9.0 <= save_22 <= 13.0

    def test_leakage_monotone_in_temperature(self):
        leak = LeakageModel()
        assert leak.watts(50.0) < leak.watts(90.0) < leak.watts(101.0)

    def test_dynamic_power_scaling(self):
        dyn = DynamicPowerModel(ref_watts=175.0, ref_frequency_ghz=3.1, ref_voltage_v=0.9)
        assert dyn.watts(3.1, 0.9) == pytest.approx(175.0)
        # Doubling V at the same f quadruples dynamic power.
        assert dyn.watts(3.1, 1.8) == pytest.approx(700.0)
        # Doubling f at the same V doubles it.
        assert dyn.watts(6.2, 0.9) == pytest.approx(350.0)

    def test_frequency_for_budget_cube_root(self):
        dyn = DynamicPowerModel(ref_watts=100.0, ref_frequency_ghz=3.0, ref_voltage_v=0.9)
        assert dyn.frequency_for_budget(800.0) == pytest.approx(6.0)
        assert dyn.frequency_for_budget(200.0, voltage_scales_with_f=False) == pytest.approx(6.0)


class TestCPUTable3:
    """Reproduces Table III: max attained turbo with air vs FC-3284."""

    @pytest.mark.parametrize(
        "spec, air_turbo, immersion_turbo",
        [(XEON_8168, 3.1, 3.2), (XEON_8180, 2.6, 2.7)],
    )
    def test_turbo_gains_one_bin_in_immersion(self, spec, air_turbo, immersion_turbo):
        air = air_cooled_cpu(spec)
        immersed = immersed_cpu(spec, FC_3284)
        assert air.allcore_turbo_ghz() == pytest.approx(air_turbo)
        assert immersed.allcore_turbo_ghz() == pytest.approx(immersion_turbo)

    @pytest.mark.parametrize(
        "spec, air_tj, immersion_tj",
        [(XEON_8168, 92.0, 75.0), (XEON_8180, 90.0, 68.0)],
    )
    def test_junction_temperatures_match(self, spec, air_tj, immersion_tj):
        air = air_cooled_cpu(spec)
        immersed = immersed_cpu(spec, FC_3284)
        assert air.junction.junction_temp_c(spec.tdp_watts) == pytest.approx(air_tj, abs=2.5)
        assert immersed.junction.junction_temp_c(spec.tdp_watts) == pytest.approx(
            immersion_tj, abs=2.5
        )

    def test_static_savings_about_11w(self):
        air = air_cooled_cpu(XEON_8168)
        immersed = immersed_cpu(XEON_8168, FC_3284)
        assert immersed.static_power_savings_vs(air) == pytest.approx(11.0, abs=2.0)

    def test_locked_part_cannot_overclock(self):
        immersed = immersed_cpu(XEON_8168, FC_3284)
        with pytest.raises(FrequencyError):
            immersed.operating_point(3.8)

    def test_w3175x_overclock_power_matches_paper(self):
        """Section IV: 205 W at 0.90 V -> ~305 W at 0.98 V (+23% frequency)."""
        cpu = immersed_cpu(XEON_W3175X, HFE_7000)
        nominal = cpu.operating_point(3.4)
        overclocked = cpu.operating_point(3.4 * 1.23)
        assert nominal.voltage_v == pytest.approx(0.90)
        assert overclocked.voltage_v == pytest.approx(0.98)
        gain = overclocked.total_watts - nominal.total_watts
        assert gain == pytest.approx(100.0, abs=20.0)

    def test_round_to_bin(self):
        assert round_to_bin(3.156) == pytest.approx(3.2)
        assert round_to_bin(3.14) == pytest.approx(3.1)

    def test_i9900k_is_unlocked(self):
        assert CORE_I9900K.unlocked
        cpu = immersed_cpu(CORE_I9900K, FC_3284)
        point = cpu.operating_point(5.0)
        assert point.frequency_ghz == 5.0


class TestFrequencyConfigs:
    def test_table7_values(self):
        assert B1.core_ghz == 3.1 and not B1.turbo_enabled
        assert B2.core_ghz == 3.4 and B2.turbo_enabled
        assert B4.memory_ghz == 3.0
        assert OC1.core_ghz == 4.1 and OC1.voltage_offset_mv == 50.0
        assert OC3.llc_ghz == 2.8 and OC3.memory_ghz == 3.0

    def test_overclocked_flag(self):
        assert OC1.is_overclocked
        assert not B2.is_overclocked

    def test_speedups_over_baseline(self):
        speedups = OC3.speedups_over(B2)
        assert speedups["core"] == pytest.approx(4.1 / 3.4)
        assert speedups["llc"] == pytest.approx(2.8 / 2.4)
        assert speedups["memory"] == pytest.approx(3.0 / 2.4)

    def test_lookup_and_order(self):
        assert config_by_name("OC2").llc_ghz == 2.8
        assert list(CONFIG_ORDER) == ["B1", "B2", "B3", "B4", "OC1", "OC2", "OC3"]
        with pytest.raises(ConfigurationError):
            config_by_name("OC9")


class TestGPU:
    def test_table8_values(self):
        assert GPU_BASE.power_limit_watts == 250.0
        assert GPU_BASE.turbo_ghz == 1.950
        assert OCG1.turbo_ghz == 2.085
        assert OCG3.memory_ghz == 8.3
        assert OCG3.voltage_offset_mv == 100.0
        assert set(GPU_CONFIGS) == {"Base", "OCG1", "OCG2", "OCG3"}

    def test_power_rises_with_overclock(self):
        base = GPU(RTX_2080TI, GPU_BASE).power_watts()
        ocg3 = GPU(RTX_2080TI, OCG3).power_watts()
        assert ocg3 > base
        # Paper: P99 rises from ~193 W to ~231 W (+19%); allow wide band.
        assert 1.05 < ocg3 / base < 1.35

    def test_power_clamped_at_limit(self):
        gpu = GPU(RTX_2080TI, OCG3)
        assert gpu.power_watts() <= OCG3.power_limit_watts

    def test_baseline_vgg_power_ball_park(self):
        gpu = GPU(RTX_2080TI, GPU_BASE)
        assert gpu.power_watts() == pytest.approx(193.0, abs=10.0)

    def test_activity_scales_power(self):
        gpu = GPU(RTX_2080TI, GPU_BASE)
        assert gpu.power_watts(0.5, 0.5) < gpu.power_watts(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            gpu.power_watts(1.5)


class TestServer:
    def test_ocp_power_budget_is_700w(self):
        """Section III: 410 CPU + 120 mem + 26 mobo + 30 FPGA + 72 storage + 42 fans."""
        budget = OCP_BLADE_8168.component_budget()
        assert budget["cpu"] == pytest.approx(410.0)
        assert budget["memory"] == pytest.approx(120.0)
        assert budget["motherboard"] == pytest.approx(26.0)
        assert budget["fpga"] == pytest.approx(30.0)
        assert budget["storage"] == pytest.approx(72.0)
        assert budget["fans"] == pytest.approx(42.0)
        assert OCP_BLADE_8168.max_power_watts() == pytest.approx(700.0)

    def test_immersion_drops_fans(self):
        assert OCP_BLADE_8168.max_power_watts(with_fans=False) == pytest.approx(658.0)

    def test_overclocked_budget_adds_100w_per_socket(self):
        assert OCP_BLADE_8168.overclocked_power_watts() == pytest.approx(858.0)

    def test_pcores(self):
        assert OCP_BLADE_8168.pcores == 48
        assert TANK1_SERVER.pcores == 28

    def test_power_model_fig12_calibration(self):
        """Figure 12 power: B2 ~120/130 W, OC3 ~160/173 W (12/16 busy pcores)."""
        model = ServerPowerModel()
        assert model.watts(B2, busy_cores=12 * 0.62) == pytest.approx(120.0, abs=8.0)
        assert model.watts(B2, busy_cores=16 * 0.58) == pytest.approx(130.0, abs=8.0)
        assert model.watts(OC3, busy_cores=12 * 0.64) == pytest.approx(160.0, abs=10.0)
        assert model.watts(OC3, busy_cores=16 * 0.59) == pytest.approx(173.0, abs=10.0)

    def test_power_model_monotone_in_cores_and_config(self):
        model = ServerPowerModel()
        assert model.watts(B2, 4) < model.watts(B2, 8) < model.watts(OC3, 8)

    def test_power_model_validates_core_range(self):
        model = ServerPowerModel()
        with pytest.raises(ConfigurationError):
            model.watts(B2, busy_cores=100)
