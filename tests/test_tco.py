"""Tests for the TCO model (Table VI and Section VI-C)."""

import pytest

from repro.errors import TCOError
from repro.tco import (
    AIR_BASELINE,
    NON_OC_2PIC,
    OC_2PIC,
    TCOModel,
    build_table6,
    cost_per_vcore,
    oversubscription_analysis,
)


class TestTCOModel:
    def test_air_baseline_has_no_deltas(self):
        model = TCOModel()
        deltas = model.category_deltas(AIR_BASELINE)
        assert all(delta == 0.0 for delta in deltas.values())
        assert model.cost_per_pcore(AIR_BASELINE) == 1.0

    def test_density_gain_from_pue(self):
        model = TCOModel()
        gain = model.core_density_gain(NON_OC_2PIC)
        assert gain == pytest.approx(1.20 / 1.03 - 1.0)
        assert model.core_density_gain(AIR_BASELINE) == 0.0

    def test_energy_ratio_non_oc_saves(self):
        model = TCOModel()
        assert model.energy_ratio(NON_OC_2PIC) < 1.0

    def test_energy_ratio_oc_back_to_baseline(self):
        """The paper: overclocking energy ~cancels the PUE/fan savings."""
        model = TCOModel()
        assert model.energy_ratio(OC_2PIC) == pytest.approx(1.0, abs=0.05)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(TCOError):
            TCOModel(baseline_shares={"servers": 0.5, "network": 0.2})

    def test_negative_share_rejected(self):
        with pytest.raises(TCOError):
            TCOModel(baseline_shares={"servers": 1.2, "network": -0.2})


class TestTable6:
    @pytest.fixture(scope="class")
    def table(self):
        return build_table6()

    def test_paper_cells_non_overclockable(self, table):
        cells = {row.category: row.non_overclockable_pct for row in table.rows}
        assert cells == {
            "servers": -1,
            "network": 1,
            "dc_construction": -2,
            "energy": -2,
            "operations": -2,
            "design_taxes_fees": -2,
            "immersion": 1,
        }

    def test_paper_cells_overclockable(self, table):
        cells = {row.category: row.overclockable_pct for row in table.rows}
        assert cells == {
            "servers": 0,
            "network": 1,
            "dc_construction": -2,
            "energy": 0,
            "operations": -2,
            "design_taxes_fees": -2,
            "immersion": 1,
        }

    def test_totals_match_paper(self, table):
        assert table.non_overclockable_total_pct == -7
        assert table.overclockable_total_pct == -4

    def test_cost_per_pcore(self):
        model = TCOModel()
        assert model.cost_per_pcore(NON_OC_2PIC) == pytest.approx(0.93)
        assert model.cost_per_pcore(OC_2PIC) == pytest.approx(0.96)


class TestOversubscriptionTCO:
    def test_oc_2pic_13_percent_vs_air(self):
        analysis = oversubscription_analysis(oversubscription=0.10)
        assert analysis.oc_2pic_vs_air == pytest.approx(-0.13, abs=0.015)

    def test_non_oc_about_10_percent_vs_itself(self):
        analysis = oversubscription_analysis(oversubscription=0.10)
        assert analysis.non_oc_2pic_vs_itself == pytest.approx(-0.091, abs=0.01)

    def test_cost_per_vcore_monotone_in_oversubscription(self):
        costs = [cost_per_vcore(OC_2PIC, ratio) for ratio in (0.0, 0.1, 0.2)]
        assert costs == sorted(costs, reverse=True)

    def test_negative_oversubscription_rejected(self):
        with pytest.raises(TCOError):
            cost_per_vcore(OC_2PIC, -0.1)
