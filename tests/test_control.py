"""Tests for the control plane: retry policy, breaker, channel, bus,
dead-man lease, and the reconciliation loop."""

import pytest

from repro.control import (
    ActuationLink,
    BreakerState,
    ChannelConfig,
    CircuitBreaker,
    CommandBus,
    CommandKind,
    HostAgent,
    LossyChannel,
    Reconciler,
    RetryPolicy,
)
from repro.control.retry import COMMAND_RETRIES, ENGINE_POOL_RETRIES
from repro.engine import SweepEngine
from repro.errors import ConfigurationError, ControlError
from repro.sim import Simulator
from repro.sim.random import split_seed
from repro.telemetry.counters import ControlPlaneCounters


# ----------------------------------------------------------------------
# RetryPolicy (shared by the bus and the sweep engine)
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=6, base_delay_s=0.1, backoff_factor=2.0, max_delay_s=0.5)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)
        assert policy.backoff_s(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(5) == pytest.approx(0.5)
        assert policy.max_retries == 5

    def test_attempts_are_one_based(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=2.0, max_delay_s=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.0)

    def test_jitter_is_deterministic_in_seed_key_attempt(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter_fraction=0.25)
        first = policy.jittered_backoff_s(2, seed=7, key="cmd:a")
        again = policy.jittered_backoff_s(2, seed=7, key="cmd:a")
        assert first == again  # bit-identical, not merely close
        assert policy.schedule(seed=7, key="cmd:a") == policy.schedule(seed=7, key="cmd:a")

    def test_jitter_varies_with_key_and_stays_bounded(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter_fraction=0.25)
        delays = {policy.jittered_backoff_s(1, seed=7, key=f"cmd:{i}") for i in range(16)}
        assert len(delays) > 1  # different keys decorrelate
        for delay in delays:
            assert 0.75 <= delay <= 1.25

    def test_jitter_varies_with_seed(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter_fraction=0.25)
        schedules = {policy.schedule(seed=seed, key="cmd:a") for seed in range(16)}
        assert len(schedules) > 1  # different seeds decorrelate

    def test_jitter_is_pinned_to_the_split_seed_derivation(self):
        """The jittered delay is a pure function of split_seed.

        This pins the exact derivation — ``split_seed(seed,
        f"retry:{key}:{attempt}")`` scaled to a unit uniform — so a
        refactor cannot silently re-roll every journaled backoff
        schedule in replayed campaigns.
        """
        policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter_fraction=0.25)
        seed, key, attempt = 11, "cmd:pin", 2
        unit = split_seed(seed, f"retry:{key}:{attempt}") / float(2**64)
        expected = policy.backoff_s(attempt) * (1.0 + 0.25 * (2.0 * unit - 1.0))
        assert policy.jittered_backoff_s(attempt, seed=seed, key=key) == expected

    def test_schedule_order_is_call_order_independent(self):
        # Computing attempt 3's delay first must not perturb attempt 1's.
        policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter_fraction=0.25)
        backwards = [
            policy.jittered_backoff_s(attempt, seed=5, key="cmd:b")
            for attempt in (3, 2, 1)
        ]
        assert tuple(reversed(backwards)) == policy.schedule(seed=5, key="cmd:b")

    def test_zero_jitter_returns_nominal(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.5)
        assert policy.jittered_backoff_s(2, seed=99, key="x") == policy.backoff_s(2)

    def test_schedule_length_matches_retry_budget(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1)
        assert len(policy.schedule()) == 3


class TestEnginePolicyBridge:
    """The sweep engine now speaks the shared RetryPolicy."""

    def test_legacy_args_derive_a_policy(self):
        engine = SweepEngine(max_pool_failures=2, retry_backoff_s=0.25)
        assert engine.retry_policy.max_attempts == 2
        assert engine.retry_policy.base_delay_s == pytest.approx(0.25)

    def test_explicit_policy_overrides_legacy_args(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01)
        engine = SweepEngine(retry_policy=policy)
        assert engine.retry_policy is policy
        assert engine.max_pool_failures == 5
        assert engine.retry_backoff_s == pytest.approx(0.01)

    def test_defaults_match_the_published_constant(self):
        engine = SweepEngine()
        assert engine.retry_policy.max_attempts == ENGINE_POOL_RETRIES.max_attempts
        assert engine.retry_policy.base_delay_s == ENGINE_POOL_RETRIES.base_delay_s

    def test_command_retries_jitter_on(self):
        assert COMMAND_RETRIES.jitter_fraction > 0.0


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, open_duration_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(2.0)
        assert breaker.is_open
        assert breaker.opens == 1
        assert not breaker.allow(5.0)  # still cooling down

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, open_duration_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, open_duration_s=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)  # cool-down over: the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(10.0)  # second caller waits on the probe
        assert breaker.probes == 1

    def test_probe_success_recloses(self):
        breaker = CircuitBreaker(failure_threshold=1, open_duration_s=10.0)
        breaker.record_failure(0.0)
        breaker.allow(10.0)
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.closes == 1

    def test_probe_failure_reopens_for_a_full_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, open_duration_s=10.0)
        breaker.record_failure(0.0)
        breaker.allow(10.0)
        breaker.record_failure(10.5)
        assert breaker.is_open
        assert breaker.opens == 2
        assert not breaker.allow(20.0)  # new cool-down runs from t=10.5
        assert breaker.allow(20.5)

    def test_full_transition_matrix(self):
        """Walk every legal edge of the breaker state machine in one
        run: CLOSED -> OPEN -> HALF_OPEN -> OPEN (probe fails) ->
        HALF_OPEN -> CLOSED (probe succeeds)."""
        breaker = CircuitBreaker(failure_threshold=2, open_duration_s=10.0)
        assert breaker.state is BreakerState.CLOSED

        # CLOSED -> OPEN after threshold consecutive failures.
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.OPEN

        # OPEN stays OPEN while cooling down; allow() does not mutate.
        assert not breaker.allow(5.0)
        assert breaker.state is BreakerState.OPEN

        # OPEN -> HALF_OPEN when the cool-down expires and a caller asks.
        assert breaker.allow(11.0)
        assert breaker.state is BreakerState.HALF_OPEN

        # HALF_OPEN -> OPEN on probe failure (one strike, not threshold).
        breaker.record_failure(11.5)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2

        # OPEN -> HALF_OPEN -> CLOSED on a successful probe.
        assert breaker.allow(21.5)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.closes == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(open_duration_s=0.0)


# ----------------------------------------------------------------------
# LossyChannel
# ----------------------------------------------------------------------
def _count_deliveries(channel, target, sends):
    landed = []
    for index in range(sends):
        channel.deliver(target, lambda i=index: landed.append(i))
    return landed


class TestLossyChannel:
    def test_perfect_by_default(self):
        sim = Simulator(seed=1)
        channel = LossyChannel(sim, seed=1)
        landed = _count_deliveries(channel, "h0", 10)
        sim.run(until=1.0)
        assert landed == list(range(10))
        assert channel.dropped == 0

    def test_drop_schedule_is_seed_deterministic(self):
        def drops_for(seed):
            sim = Simulator(seed=seed)
            channel = LossyChannel(sim, seed=seed)
            channel.set_drop("h0", 0.5)
            landed = _count_deliveries(channel, "h0", 40)
            sim.run(until=1.0)
            return tuple(landed)

        assert drops_for(7) == drops_for(7)  # same seed, same schedule
        assert drops_for(7) != drops_for(8)  # reseeding re-rolls it
        assert 0 < len(drops_for(7)) < 40  # p=0.5 actually bites

    def test_total_drop_override_eats_everything(self):
        sim = Simulator(seed=1)
        channel = LossyChannel(sim, seed=1)
        channel.set_drop("h0", 1.0)  # injector-only severity
        landed = _count_deliveries(channel, "h0", 5)
        sim.run(until=1.0)
        assert landed == []
        assert channel.dropped == 5
        channel.clear_drop("h0")
        assert channel.deliver("h0", lambda: None)

    def test_partition_eats_at_send_and_in_flight(self):
        sim = Simulator(seed=1)
        channel = LossyChannel(
            sim, seed=1, config=ChannelConfig(min_delay_s=1.0, max_delay_s=1.0)
        )
        landed = []
        # In flight when the partition opens at t=0.5: dies mid-air.
        channel.deliver("h0", lambda: landed.append("first"))
        sim.after(0.5, lambda: channel.partition("h0", duration_s=10.0))
        # Sent during the partition: refused at the send side.
        sim.after(1.0, lambda: channel.deliver("h0", lambda: landed.append("second")))
        sim.run(until=5.0)
        assert landed == []
        assert channel.dropped == 2

    def test_partition_expires_lazily_and_heals_early(self):
        sim = Simulator(seed=1)
        channel = LossyChannel(sim, seed=1)
        channel.partition("h0", duration_s=5.0)
        assert channel.is_partitioned("h0")
        channel.heal("h0")
        assert not channel.is_partitioned("h0")
        channel.partition("h1")  # no duration: severed until healed
        sim.run(until=100.0)
        assert channel.is_partitioned("h1")

    def test_duplicate_delivers_twice(self):
        sim = Simulator(seed=3)
        channel = LossyChannel(sim, seed=3)
        channel.set_duplicate("h0", 0.99)
        landed = _count_deliveries(channel, "h0", 10)
        sim.run(until=1.0)
        assert len(landed) > 10
        assert channel.duplicated == len(landed) - 10

    def test_extra_delay_defers_delivery(self):
        sim = Simulator(seed=1)
        channel = LossyChannel(sim, seed=1)
        channel.set_extra_delay("h0", 2.5)
        arrived = []
        channel.deliver("h0", lambda: arrived.append(sim.now))
        sim.run(until=10.0)
        assert arrived == [pytest.approx(2.5)]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig(drop_probability=1.0)
        with pytest.raises(ConfigurationError):
            ChannelConfig(min_delay_s=2.0, max_delay_s=1.0)
        channel = LossyChannel(Simulator(seed=1), seed=1)
        with pytest.raises(ConfigurationError):
            channel.set_drop("h0", 1.5)
        with pytest.raises(ConfigurationError):
            channel.set_duplicate("h0", 1.0)
        with pytest.raises(ConfigurationError):
            channel.set_extra_delay("h0", -1.0)


# ----------------------------------------------------------------------
# CommandBus + HostAgent
# ----------------------------------------------------------------------
def make_bus(seed=1, **kwargs):
    sim = Simulator(seed=seed)
    channel = LossyChannel(sim, seed=seed)
    bus = CommandBus(sim, channel, seed=seed, **kwargs)
    applied = []
    agent = HostAgent(
        sim,
        "h0",
        channel,
        base_frequency_ghz=3.4,
        apply_frequency=lambda freq: applied.append((sim.now, freq)),
        counters=bus.counters,
    )
    bus.attach(agent)
    return sim, channel, bus, agent, applied


class TestCommandBus:
    def test_clean_delivery_applies_and_acks(self):
        sim, _, bus, agent, applied = make_bus()
        acks = []
        bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1, on_applied=acks.append)
        sim.run(until=1.0)
        assert applied == [(0.0, 4.1)]
        assert agent.frequency_ghz == pytest.approx(4.1)
        assert len(acks) == 1
        assert acks[0].frequency_ghz == pytest.approx(4.1)  # piggybacked state
        assert bus.counters.acks == 1
        assert bus.in_flight == 0

    def test_unknown_target_fails_fast(self):
        _, _, bus, _, _ = make_bus()
        with pytest.raises(ControlError):
            bus.send(CommandKind.HEARTBEAT, "nope")

    def test_duplicate_attach_rejected(self):
        sim, channel, bus, agent, _ = make_bus()
        with pytest.raises(ConfigurationError):
            bus.attach(agent)

    def test_dedup_applies_once_but_reacks(self):
        sim, _, bus, agent, applied = make_bus()
        command = bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1)
        sim.run(until=1.0)
        agent.receive(command)  # a duplicated/retried delivery
        sim.run(until=2.0)
        assert applied == [(0.0, 4.1)]  # applied exactly once
        assert bus.counters.dedup_hits == 1

    def test_stale_set_frequency_rejected(self):
        sim, _, bus, agent, applied = make_bus()
        from repro.control.bus import Command

        agent.receive(
            Command(CommandKind.SET_FREQUENCY, "h0", "k5", sequence=5, payload=4.1)
        )
        agent.receive(
            Command(CommandKind.SET_FREQUENCY, "h0", "k3", sequence=3, payload=3.9)
        )
        assert agent.frequency_ghz == pytest.approx(4.1)  # old command ignored
        assert bus.counters.stale_rejects == 1
        assert [freq for _, freq in applied] == [4.1]

    def test_retries_survive_a_transient_drop_window(self):
        sim, channel, bus, agent, applied = make_bus(
            retry_policy=RetryPolicy(max_attempts=5, base_delay_s=2.0)
        )
        channel.set_drop("h0", 1.0)
        sim.after(3.0, lambda: channel.clear_drop("h0"))
        bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1)
        sim.run(until=30.0)
        # The first send fell into the drop window; a retry landed it.
        # (With no heartbeats in this test, the dead-man lease later
        # reverts the host to base — by design, not a delivery failure.)
        assert applied[0] == (pytest.approx(3.0), 4.1)
        assert bus.counters.retries >= 1
        assert bus.counters.timeouts >= 1
        assert bus.counters.failures == 0

    def test_exhausted_retry_budget_reports_failure(self):
        sim, channel, bus, _, _ = make_bus(
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=1.0),
            breaker_threshold=10**6,
        )
        channel.partition("h0")  # never heals
        failures = []
        bus.send(
            CommandKind.SET_FREQUENCY,
            "h0",
            4.1,
            on_failed=lambda command, reason: failures.append(reason),
        )
        sim.run(until=60.0)
        assert failures == ["ack-timeout"]
        assert bus.counters.failures == 1
        assert bus.in_flight == 0

    def test_heartbeats_are_fire_and_forget(self):
        sim, channel, bus, _, _ = make_bus(breaker_threshold=10**6)
        channel.partition("h0")
        bus.send(CommandKind.HEARTBEAT, "h0")
        sim.run(until=60.0)
        assert bus.counters.retries == 0  # one send, no retry budget spent
        assert bus.counters.failures == 1

    def test_dark_host_opens_the_breaker_and_fast_fails(self):
        sim, channel, bus, _, _ = make_bus(
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_threshold=3,
            breaker_open_s=30.0,
        )
        channel.partition("h0")
        for _ in range(4):
            bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1)
            sim.run(until=sim.now + 5.0)
        assert bus.open_breakers == ("h0",)
        assert bus.counters.breaker_opens >= 1
        assert bus.counters.breaker_fast_fails >= 1

    def test_breaker_open_lands_on_the_timeline(self):
        from repro.control.bus import BREAKER_OPEN
        from repro.faults.timeline import FaultTimeline

        timeline = FaultTimeline()
        sim, channel, bus, _, _ = make_bus(
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_threshold=2,
            breaker_open_s=30.0,
            timeline=timeline,
        )
        channel.partition("h0")
        for _ in range(3):
            bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1)
            sim.run(until=sim.now + 5.0)
        opened = [e for e in timeline.events if e.kind == BREAKER_OPEN]
        assert len(opened) == 1  # one event per open, not per fast-fail
        assert opened[0].target == "h0"
        assert opened[0].detail == "cooling down 30s"
        # Subsequent fast-fails are visible as failed commands with the
        # breaker named as the reason, not as more breaker-open events.
        failures = [e for e in timeline.events if e.kind == "cmd-failed"]
        assert any("breaker-open" in e.detail for e in failures)

    def test_emergency_command_bypasses_the_open_breaker(self):
        sim, channel, bus, agent, _ = make_bus(
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_threshold=2,
            breaker_open_s=1000.0,
        )
        channel.partition("h0", duration_s=20.0)
        for _ in range(3):
            bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1)
            sim.run(until=sim.now + 5.0)
        assert bus.open_breakers == ("h0",)

        # The partition healed at t=20 but the breaker stays open for
        # 1000s. A normal command fast-fails; the emergency one punches
        # through and lands.
        failures = []
        bus.send(
            CommandKind.SET_FREQUENCY,
            "h0",
            4.1,
            on_failed=lambda cmd, reason: failures.append(reason),
        )
        sim.run(until=sim.now + 5.0)
        assert failures == ["breaker-open"]
        assert agent.frequency_ghz != pytest.approx(3.2)

        bus.send(CommandKind.SET_FREQUENCY, "h0", 3.2, emergency=True)
        sim.run(until=sim.now + 5.0)
        assert agent.frequency_ghz == pytest.approx(3.2)
        assert bus.counters.emergency_bypasses >= 1
        assert bus.open_breakers == ()  # the ack re-closed the breaker

    def test_breaker_recloses_after_heal(self):
        sim, channel, bus, agent, _ = make_bus(
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_threshold=2,
            breaker_open_s=10.0,
        )
        channel.partition("h0", duration_s=15.0)
        for _ in range(3):
            bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1)
            sim.run(until=sim.now + 5.0)
        assert bus.open_breakers == ("h0",)
        # Past the heal + cool-down, the next command is the probe that
        # re-closes the breaker.
        sim.run(until=40.0)
        bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1)
        sim.run(until=45.0)
        assert bus.open_breakers == ()
        assert agent.frequency_ghz == pytest.approx(4.1)


class TestDeadManLease:
    def test_partitioned_overclocked_host_reverts_within_the_bound(self):
        sim, channel, bus, agent, applied = make_bus()
        expired = []
        agent.on_lease_expired = expired.append
        sim.every(3.0, lambda: bus.send(CommandKind.HEARTBEAT, "h0"))
        sim.after(10.0, lambda: bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1))
        sim.after(50.0, lambda: channel.partition("h0"))
        sim.run(until=100.0)
        assert agent.frequency_ghz == pytest.approx(3.4)  # reverted to base
        assert agent.lease_expiries == 1
        assert expired == ["h0"]
        revert_time = next(t for t, freq in applied if freq == pytest.approx(3.4))
        # Bound: lease_misses missed heartbeats plus one check tick.
        assert revert_time <= 50.0 + (agent.lease_misses + 1) * agent.heartbeat_interval_s

    def test_lease_never_fires_at_base_frequency(self):
        sim, channel, _, agent, _ = make_bus()
        channel.partition("h0")  # silence from t=0, but never overclocked
        sim.run(until=100.0)
        assert agent.lease_expiries == 0

    def test_any_command_renews_the_lease(self):
        sim, _, bus, agent, _ = make_bus()
        sim.after(1.0, lambda: bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1))
        # No heartbeats at all — but a steady drip of other commands.
        sim.every(5.0, lambda: bus.send(CommandKind.SET_FREQUENCY, "h0", 4.1), start_after=5.0)
        sim.run(until=60.0)
        assert agent.lease_expiries == 0
        assert agent.is_overclocked

    def test_agent_validation(self):
        sim = Simulator(seed=1)
        channel = LossyChannel(sim, seed=1)
        with pytest.raises(ConfigurationError):
            HostAgent(sim, "h0", channel, base_frequency_ghz=0.0)
        with pytest.raises(ConfigurationError):
            HostAgent(sim, "h0", channel, base_frequency_ghz=3.4, lease_misses=0)
        with pytest.raises(ConfigurationError):
            HostAgent(sim, "h0", channel, base_frequency_ghz=3.4, heartbeat_interval_s=0.0)

    def test_agent_without_vm_hooks_rejects_deploys(self):
        sim, _, bus, agent, _ = make_bus()
        from repro.control.bus import Command

        with pytest.raises(ControlError):
            agent.receive(
                Command(CommandKind.DEPLOY_VM, "h0", "k1", sequence=1, payload="vm-1")
            )


# ----------------------------------------------------------------------
# Reconciler
# ----------------------------------------------------------------------
def make_link(seed=1, **kwargs):
    sim = Simulator(seed=seed)
    defaults = dict(
        retry_policy=RetryPolicy(max_attempts=1),  # reconciler does the work
        heartbeat_interval_s=3.0,
        lease_misses=10**6,  # isolate reconciliation from the lease
        reconcile_interval_s=10.0,
        breaker_threshold=3,
        breaker_open_s=20.0,
    )
    defaults.update(kwargs)
    link = ActuationLink(sim, seed=seed, **defaults)
    applied = {}
    deployed = []
    for host_id in ("h0", "h1"):
        link.add_host(
            host_id,
            base_frequency_ghz=3.4,
            apply_frequency=lambda freq, h=host_id: applied.setdefault(h, []).append(
                (sim.now, freq)
            ),
            deploy_vm=lambda token: deployed.append((sim.now, token)),
        )
    return sim, link, applied, deployed


class TestReconciler:
    def test_healthy_link_needs_no_repairs(self):
        sim, link, applied, _ = make_link()
        sim.every(3.0, link.heartbeat)
        sim.after(5.0, lambda: link.set_frequency(4.1))
        sim.run(until=60.0)
        assert link.counters.reconcile_repairs == 0
        assert [freq for _, freq in applied["h0"]] == [4.1]

    def test_lost_frequency_command_is_reasserted_after_heal(self):
        sim, link, applied, _ = make_link()
        sim.every(3.0, link.heartbeat)
        link.channel.partition("h0", duration_s=40.0)
        sim.after(5.0, lambda: link.set_frequency(4.1, hosts=("h0",)))
        sim.run(until=120.0)
        # The single fire-and-forget send died in the partition; only the
        # reconciliation loop can have landed the frequency.
        assert link.agent("h0").frequency_ghz == pytest.approx(4.1)
        assert link.counters.reconcile_repairs >= 1

    def test_lost_deploy_is_reissued_until_confirmed(self):
        sim, link, _, deployed = make_link()
        sim.every(3.0, link.heartbeat)
        link.channel.partition("h1", duration_s=30.0)
        sim.after(5.0, lambda: link.deploy_vm("vm-a", "h1"))
        sim.run(until=120.0)
        assert [token for _, token in deployed] == ["vm-a"]  # exactly once
        assert link.reconciler.pending_deploys == ()

    def test_retired_deploys_are_not_repaired(self):
        sim, link, _, deployed = make_link()
        sim.every(3.0, link.heartbeat)
        link.channel.partition("h1", duration_s=30.0)
        sim.after(5.0, lambda: link.deploy_vm("vm-a", "h1"))
        sim.after(10.0, lambda: link.retire_vm("vm-a", "h1"))
        sim.run(until=120.0)
        assert deployed == []  # wanted-set emptied before the link healed
        assert link.reconciler.pending_deploys == ()

    def test_open_breaker_defers_repairs(self):
        sim, link, _, _ = make_link()
        sim.every(3.0, link.heartbeat)
        link.channel.partition("h0")  # never heals
        sim.after(5.0, lambda: link.set_frequency(4.1, hosts=("h0",)))
        sim.run(until=25.0)
        assert link.bus.breaker_for("h0").is_open
        repairs_while_open = link.counters.reconcile_repairs
        sim.run(until=28.0)  # one more tick inside the cool-down window
        assert link.counters.reconcile_repairs == repairs_while_open

    def test_validation(self):
        sim = Simulator(seed=1)
        channel = LossyChannel(sim, seed=1)
        bus = CommandBus(sim, channel)
        with pytest.raises(ConfigurationError):
            Reconciler(sim, bus, interval_s=0.0)


class TestActuationLink:
    def test_set_frequency_fans_out_to_all_hosts(self):
        sim, link, applied, _ = make_link()
        link.set_frequency(4.1)
        sim.run(until=5.0)
        assert [freq for _, freq in applied["h0"]] == [4.1]
        assert [freq for _, freq in applied["h1"]] == [4.1]
        assert link.hosts == ("h0", "h1")

    def test_unknown_host_rejected(self):
        _, link, _, _ = make_link()
        with pytest.raises(ConfigurationError):
            link.agent("h9")
        with pytest.raises(ConfigurationError):
            link.set_frequency(4.1, hosts=("h9",))

    def test_shared_counters_and_lease_rollup(self):
        sim, link, _, _ = make_link(lease_misses=3)
        sim.every(3.0, link.heartbeat)
        link.set_frequency(4.1)
        sim.after(5.0, lambda: link.channel.partition("h0"))
        sim.run(until=60.0)
        assert link.lease_expiries == link.agent("h0").lease_expiries == 1
        assert isinstance(link.counters, ControlPlaneCounters)
        assert link.counters.lease_expiries == 1

    def test_counters_describe_merges(self):
        first = ControlPlaneCounters(commands_sent=2, acks=1)
        second = ControlPlaneCounters(commands_sent=3, retries=4)
        first.merge(second)
        assert first.commands_sent == 5
        assert first.retries == 4
        assert "commands-sent=5" in first.describe()
        assert ControlPlaneCounters().describe() == "(no control-plane activity)"
