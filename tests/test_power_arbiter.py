"""Peak-power predictor, budget arbiter invariants, power ladder, and
the PowerCapGovernor edge cases.

The two arbiter property tests pin the invariants the oversubscription
design leans on:

* **conservation** — after any interleaving of admits / releases /
  overclock grants / revokes, the watts charged under every node never
  exceed that node's oversubscribed budget;
* **monotonicity** — replaying the same request sequence against a tree
  with *more* budget at one node never grants less.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.host import Host
from repro.cluster.power_cap import PowerCapGovernor
from repro.errors import ConfigurationError, PowerBudgetExceeded
from repro.faults import FaultCampaign, FaultKind, FaultPlan, FaultSpec
from repro.faults.injectors import register_power_injectors
from repro.power import (
    DEFAULT_PRIORS,
    DeliveryLevel,
    DeliveryNode,
    PeakPowerPredictor,
    PowerBudgetArbiter,
    PowerDeliveryHierarchy,
    PowerEmergencyCoordinator,
    PowerEmergencyStage,
    PowerLadderConfig,
)
from repro.sim.kernel import Simulator
from repro.telemetry.counters import PowerEmergencyCounters


def build_tree(row_oversubscription: float = 1.2) -> PowerDeliveryHierarchy:
    nodes = [
        DeliveryNode("substation", DeliveryLevel.SUBSTATION, 5000.0, 1.2),
        DeliveryNode("ups-0", DeliveryLevel.UPS, 4000.0, 1.2, parent="substation"),
        DeliveryNode(
            "row-0", DeliveryLevel.ROW, 1500.0, row_oversubscription, parent="ups-0"
        ),
    ]
    for rack in range(2):
        rack_name = f"rack-{rack}"
        nodes.append(
            DeliveryNode(rack_name, DeliveryLevel.RACK_PDU, 900.0, 1.2, parent="row-0")
        )
        for host in range(2):
            nodes.append(
                DeliveryNode(
                    f"{rack_name}/h{host}", DeliveryLevel.HOST, 450.0, parent=rack_name
                )
            )
    return PowerDeliveryHierarchy(nodes)


class TestPredictor:
    def test_prior_until_enough_samples(self):
        predictor = PeakPowerPredictor(min_samples=4)
        assert predictor.peak_watts_per_vcore("sql") == pytest.approx(
            DEFAULT_PRIORS["sql"].peak_watts_per_vcore
        )
        for watts in (10.0, 11.0, 12.0, 13.0):
            predictor.observe("sql", watts)
        # Online percentile over the window replaces the prior.
        assert predictor.peak_watts_per_vcore("sql") > DEFAULT_PRIORS[
            "sql"
        ].peak_watts_per_vcore

    def test_bias_injection_scales_predictions(self):
        predictor = PeakPowerPredictor()
        honest = predictor.predict_vm_peak_watts("web", 8)
        predictor.inject_bias(0.25)
        assert predictor.predict_vm_peak_watts("web", 8) == pytest.approx(
            honest * 0.75
        )
        predictor.clear_bias()
        assert predictor.predict_vm_peak_watts("web", 8) == pytest.approx(honest)

    def test_bias_fault_injector_round_trip(self):
        simulator = Simulator(seed=3)
        predictor = PeakPowerPredictor()
        plan = FaultPlan(
            seed=3,
            scenario="bias",
            specs=(
                FaultSpec(
                    kind=FaultKind.POWER_UNDERPREDICTION,
                    target="predictor",
                    at_s=10.0,
                    magnitude=0.4,
                    duration_s=20.0,
                ),
            ),
        )
        campaign = FaultCampaign(simulator, plan)
        register_power_injectors(campaign, {"predictor": predictor}, lambda t, m: None)
        campaign.arm()
        simulator.run(until=15.0)
        assert predictor.bias_fraction == pytest.approx(0.4)
        simulator.run(until=40.0)
        assert predictor.bias_fraction == 0.0
        kinds = [event.kind for event in campaign.timeline]
        assert "power-underprediction" in kinds and "recovered" in kinds


def random_requests(seed: int, count: int = 120):
    """A seeded stream of (kind, args) arbiter requests."""
    rng = np.random.default_rng(seed)
    tree = build_tree()
    hosts = tree.hosts
    classes = sorted(DEFAULT_PRIORS)
    requests = []
    for index in range(count):
        roll = rng.uniform()
        host = hosts[int(rng.integers(len(hosts)))]
        if roll < 0.5:
            requests.append(
                (
                    "admit",
                    f"vm-{index}",
                    host,
                    classes[int(rng.integers(len(classes)))],
                    int(rng.integers(1, 16)),
                )
            )
        elif roll < 0.65:
            requests.append(("release", f"vm-{int(rng.integers(index + 1))}"))
        elif roll < 0.9:
            requests.append(("overclock", host, float(rng.uniform(20.0, 90.0))))
        else:
            requests.append(("revoke", host))
    return requests


def replay(arbiter: PowerBudgetArbiter, requests) -> list[str]:
    """Run a request stream; returns the granted request identities."""
    granted = []
    for request in requests:
        if request[0] == "admit":
            _, vm_id, host, workload_class, vcores = request
            if arbiter.admit_vm(vm_id, host, workload_class, vcores).granted:
                granted.append(f"admit:{vm_id}")
        elif request[0] == "release":
            if request[1] in arbiter.admitted_vms:
                arbiter.release_vm(request[1])
        elif request[0] == "overclock":
            _, host, watts = request
            if host not in arbiter.overclocked_hosts:
                if arbiter.grant_overclock(host, watts).granted:
                    granted.append(f"oc:{host}")
        else:
            if request[1] in arbiter.overclocked_hosts:
                arbiter.revoke_overclock(request[1])
    return granted


class TestArbiterInvariants:
    @pytest.mark.parametrize("seed", [1, 2, 7, 13, 42])
    def test_conservation_under_random_interleavings(self, seed):
        tree = build_tree()
        arbiter = PowerBudgetArbiter(tree, idle_watts_per_host=60.0)
        replay(arbiter, random_requests(seed))
        arbiter.verify_conservation()
        # Belt and braces: recompute every node's charge bottom-up.
        for name, node in tree.nodes.items():
            charged = sum(
                arbiter.charged_watts(host)
                for host in tree.subtree_hosts(name)
            )
            assert charged <= node.budget_watts + 1e-9

    @pytest.mark.parametrize("seed", [1, 2, 7, 13, 42])
    def test_raising_a_budget_never_reduces_grants(self, seed):
        requests = random_requests(seed)
        base = replay(
            PowerBudgetArbiter(build_tree(1.2), idle_watts_per_host=60.0), requests
        )
        raised = replay(
            PowerBudgetArbiter(build_tree(1.5), idle_watts_per_host=60.0), requests
        )
        assert set(base) <= set(raised)

    def test_denial_names_limiting_node_and_shortfall(self):
        tree = build_tree()
        arbiter = PowerBudgetArbiter(tree, idle_watts_per_host=500.0)
        decision = arbiter.admit_vm("vm-0", "rack-0/h0", "training", 8)
        assert not decision.granted
        assert decision.limiting_node == "rack-0/h0"
        assert decision.shortfall_watts > 0

    def test_release_refunds_the_full_chain(self):
        tree = build_tree()
        arbiter = PowerBudgetArbiter(tree, idle_watts_per_host=60.0)
        before = [arbiter.headroom_watts(name) for name in sorted(tree.nodes)]
        assert arbiter.admit_vm("vm-0", "rack-0/h0", "sql", 8).granted
        arbiter.release_vm("vm-0")
        assert arbiter.grant_overclock("rack-1/h1", 50.0).granted
        arbiter.revoke_overclock("rack-1/h1")
        after = [arbiter.headroom_watts(name) for name in sorted(tree.nodes)]
        assert after == pytest.approx(before)

    def test_double_overclock_grant_rejected(self):
        arbiter = PowerBudgetArbiter(build_tree())
        assert arbiter.grant_overclock("rack-0/h0", 40.0).granted
        with pytest.raises(ConfigurationError):
            arbiter.grant_overclock("rack-0/h0", 40.0)


class TestPowerLadder:
    def test_config_requires_decreasing_thresholds(self):
        with pytest.raises(ConfigurationError):
            PowerLadderConfig(cap_fraction=0.05, revoke_fraction=0.08)

    def test_full_escalation_and_rearm(self):
        counters = PowerEmergencyCounters()
        ladder = PowerEmergencyCoordinator(counters=counters)
        engaged = []
        for stage in list(PowerEmergencyStage)[1:]:
            ladder.register(
                stage,
                lambda stage=stage: engaged.append(stage.name) or "engaged",
                lambda stage=stage: "released",
            )
        ladder.observe(0.0, 0.5)
        assert ladder.stage is PowerEmergencyStage.NORMAL
        ladder.observe(5.0, 0.001)  # through every threshold at once
        assert ladder.stage is PowerEmergencyStage.ISOLATE
        assert engaged == [
            "CAP_LOW_PRIORITY",
            "REVOKE_OVERCLOCK",
            "SHED_LOAD",
            "ISOLATE",
        ]
        # Healthy margin: one rung per clean streak, back to NORMAL.
        time_s = 10.0
        for _ in range(4 * PowerLadderConfig().relax_clean_ticks):
            ladder.observe(time_s, 0.5)
            time_s += 5.0
        assert ladder.stage is PowerEmergencyStage.NORMAL
        assert counters.rearms == 1
        assert counters.escalations == 4
        assert counters.low_priority_caps == 1
        assert counters.isolations == 1


class TestPowerCapGovernorEdges:
    def test_unsatisfiable_cap_reports_shortfall(self):
        host = Host("h0")
        from repro.cluster.vm import VMInstance, VMSpec

        host.place(
            VMInstance(
                vm_id="vm", spec=VMSpec(vcores=host.spec.pcores, memory_gb=32.0)
            )
        )
        governor = PowerCapGovernor()
        floor_watts = host.power_model.watts(
            host.config.__class__(
                name="floor",
                core_ghz=governor.min_core_ghz,
                voltage_offset_mv=0.0,
                turbo_enabled=host.config.turbo_enabled,
                llc_ghz=host.config.llc_ghz,
                memory_ghz=host.config.memory_ghz,
            ),
            float(host.spec.pcores),
        )
        cap = floor_watts - 25.0
        with pytest.raises(PowerBudgetExceeded) as excinfo:
            governor.enforce(host, cap)
        message = str(excinfo.value)
        assert "shortfall" in message
        assert f"{floor_watts - cap:.0f} W" in message

    def test_cap_satisfiable_exactly_at_floor_is_satisfied(self):
        host = Host("h0")
        from repro.cluster.vm import VMInstance, VMSpec

        host.place(
            VMInstance(
                vm_id="vm", spec=VMSpec(vcores=host.spec.pcores, memory_gb=32.0)
            )
        )
        governor = PowerCapGovernor()
        floor_watts = host.power_model.watts(
            host.config.__class__(
                name="floor",
                core_ghz=governor.min_core_ghz,
                voltage_offset_mv=0.0,
                turbo_enabled=host.config.turbo_enabled,
                llc_ghz=host.config.llc_ghz,
                memory_ghz=host.config.memory_ghz,
            ),
            float(host.spec.pcores),
        )
        result = governor.enforce(host, floor_watts + 0.5)
        assert result.capped
        assert result.final_core_ghz == pytest.approx(governor.min_core_ghz)
        assert result.final_watts <= floor_watts + 0.5

    def test_enforce_fleet_empty_is_noop(self):
        assert PowerCapGovernor().enforce_fleet([], 100.0) == []
