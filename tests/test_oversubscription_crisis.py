"""The oversubscription crisis experiment: acceptance contract.

Per seed: the naive fleet (trusting the biased predictor) trips at
least the row breaker and loses hosts and VMs; the arbitrated fleet
rides the identical fault schedule out with zero trips, a bounded
staged response, and overclocks re-granted after the surge — and both
timelines reproduce bit-for-bit from the seed.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main as cli_main
from repro.experiments.oversubscription_crisis import (
    LOW_PRIORITY_RACK,
    SURGE_TARGET,
    build_crisis_hierarchy,
    format_oversubscription_crisis,
    run_oversubscription_crisis,
    run_oversubscription_mode,
)
from repro.power import DeliveryLevel, PowerEmergencyStage

SEEDS = [int(token) for token in os.environ.get("REPRO_CHAOS_SEEDS", "1 2").split()]


class TestCrisisOutcomes:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_naive_trips_row_breaker_and_loses_vms(self, seed):
        naive = run_oversubscription_mode(False, seed=seed)
        assert naive.row_breaker_trips >= 1
        assert naive.hosts_lost > 0
        assert naive.vms_lost > 0
        # No ladder: the naive fleet never escalates anything.
        assert naive.max_stage == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_arbitrated_rides_through_with_zero_trips(self, seed):
        arbitrated = run_oversubscription_mode(True, seed=seed)
        assert arbitrated.breaker_trips == ()
        assert arbitrated.hosts_lost == 0
        assert arbitrated.vms_lost == 0
        # Bounded performance loss, not a blackout: the ladder reached
        # at least the overclock-revoke rung, shed some low-priority
        # VMs at worst, and re-granted overclocks after the surge.
        assert arbitrated.max_stage >= int(PowerEmergencyStage.REVOKE_OVERCLOCK)
        assert arbitrated.oc_regranted_at_s is not None
        assert arbitrated.rearms >= 1
        # The arbiter denied the admissions the naive fleet waved in.
        assert arbitrated.admissions_denied > 0
        assert arbitrated.vms_admitted < arbitrated.vms_requested

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_reproduces_timeline_bit_for_bit(self, seed):
        first = run_oversubscription_crisis(seed=seed)
        second = run_oversubscription_crisis(seed=seed)
        assert (
            first.naive.timeline_signature == second.naive.timeline_signature
        )
        assert (
            first.arbitrated.timeline_signature
            == second.arbitrated.timeline_signature
        )
        assert first.naive.timeline == second.naive.timeline
        assert first.arbitrated.timeline == second.arbitrated.timeline

    def test_different_seeds_differ(self):
        a = run_oversubscription_mode(True, seed=SEEDS[0])
        b = run_oversubscription_mode(True, seed=SEEDS[0] + 1000)
        assert a.timeline_signature != b.timeline_signature


class TestCrisisTopology:
    def test_surge_target_is_the_row(self):
        tree = build_crisis_hierarchy()
        assert tree.nodes[SURGE_TARGET].level is DeliveryLevel.ROW
        assert LOW_PRIORITY_RACK in tree.nodes
        # Both racks hang off the surged row: the whole experiment's
        # blast radius flows through one feed.
        assert set(tree.subtree_hosts(SURGE_TARGET)) == set(tree.hosts)

    def test_formatting_contains_both_configs(self):
        text = format_oversubscription_crisis(run_oversubscription_crisis(seed=1))
        assert "naive" in text and "arbitrated" in text
        assert "breaker-trip" in text
        assert "power-escalate" in text


def test_cli_oversubscribe_seed_round_trip(capsys):
    assert cli_main(["oversubscribe", "--seed", "5"]) == 0
    first = capsys.readouterr().out
    assert cli_main(["oversubscribe", "--seed", "5"]) == 0
    assert capsys.readouterr().out == first
    assert "arbitrated" in first
