"""Unit tests for the facility-emergency subsystem.

Covers the pieces the heat-wave chaos test exercises end-to-end:
the degradation ladder's state machine, the facility fault models and
their injectors, the tank fluid energy balance, emergency-priority
command delivery, reconciler starvation accounting, the safety
supervisor's facility path, counter export, and the fleet-level
emergency actions (controlled shutdown, evacuation, uniform capping,
hottest-first triage).
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.cluster.fleet import hottest_first
from repro.cluster.host import Host
from repro.cluster.migration import MigrationManager, evacuate_host
from repro.cluster.power_cap import PowerCapGovernor
from repro.cluster.vm import VMInstance, VMSpec
from repro.control.link import ActuationLink
from repro.emergency import (
    EmergencyCoordinator,
    EmergencyStage,
    LadderConfig,
    worst_margin_c,
)
from repro.errors import ConfigurationError, TelemetryDegraded
from repro.faults import (
    FACILITY_FAULT_KINDS,
    POWER_FAULT_KINDS,
    FaultCampaign,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultTimeline,
    register_facility_injectors,
)
from repro.reliability.safety import SafetyConfig, SafetySupervisor
from repro.sim.kernel import Simulator
from repro.telemetry import (
    ControlPlaneCounters,
    EmergencyCounters,
    counters_payload,
    write_counters_json,
)
from repro.thermal import FC_3284, FacilityState, TankFluidRC


# ----------------------------------------------------------------------
# LadderConfig + worst_margin_c
# ----------------------------------------------------------------------
def test_ladder_margins_must_strictly_decrease():
    with pytest.raises(ConfigurationError):
        LadderConfig(revoke_margin_c=20.0, cap_margin_c=20.0)
    with pytest.raises(ConfigurationError):
        LadderConfig(evacuate_margin_c=9.0, shutdown_margin_c=10.0)
    with pytest.raises(ConfigurationError):
        LadderConfig(hysteresis_c=0.0)
    with pytest.raises(ConfigurationError):
        LadderConfig(relax_clean_ticks=0)
    with pytest.raises(ConfigurationError):
        LadderConfig().margin_for(EmergencyStage.NORMAL)


def test_worst_margin_is_the_hottest_hosts_headroom():
    assert worst_margin_c({}, 110.0) == float("inf")
    assert worst_margin_c({"a": 100.0, "b": 90.0}, 110.0) == pytest.approx(10.0)


# ----------------------------------------------------------------------
# EmergencyCoordinator
# ----------------------------------------------------------------------
def _wired_coordinator(**kwargs):
    coordinator = EmergencyCoordinator(**kwargs)
    actions: list[str] = []
    for stage in list(EmergencyStage)[1:]:
        name = stage.name.lower()
        coordinator.register(
            stage,
            engage=lambda name=name: (actions.append(f"engage:{name}"), name)[1],
            release=lambda name=name: (actions.append(f"release:{name}"), name)[1],
        )
    return coordinator, actions


def test_fast_transient_escalates_through_every_crossed_rung():
    coordinator, actions = _wired_coordinator()
    stage = coordinator.observe(0.0, margin_c=12.0)  # below evacuate (15), above shutdown (10)
    assert stage is EmergencyStage.EVACUATE
    assert actions == ["engage:revoke_overclock", "engage:power_cap", "engage:evacuate"]
    assert coordinator.counters.escalations == 3
    assert coordinator.counters.overclock_revokes == 1
    assert coordinator.counters.power_caps == 1
    assert coordinator.counters.evacuations == 1
    assert coordinator.counters.shutdowns == 0
    assert coordinator.emergency


def test_relaxation_needs_hysteresis_and_steps_one_rung_at_a_time():
    config = LadderConfig(relax_clean_ticks=2)
    coordinator, actions = _wired_coordinator(config=config)
    coordinator.observe(0.0, margin_c=18.0)  # engage revoke + cap
    actions.clear()

    # Above the cap threshold but inside the hysteresis band: not clean.
    for tick in range(5):
        assert coordinator.observe(float(tick), 21.0) is EmergencyStage.POWER_CAP
    assert actions == []

    # Two clean ticks release one rung — only one, even though the
    # margin would also satisfy the revoke rung's clear level later.
    coordinator.observe(10.0, 29.0)
    assert coordinator.stage is EmergencyStage.POWER_CAP
    coordinator.observe(11.0, 29.0)
    assert coordinator.stage is EmergencyStage.REVOKE_OVERCLOCK
    assert actions == ["release:power_cap"]

    # Two more walk all the way back to NORMAL and count a re-arm.
    coordinator.observe(12.0, 29.0)
    coordinator.observe(13.0, 29.0)
    assert coordinator.stage is EmergencyStage.NORMAL
    assert not coordinator.emergency
    assert coordinator.counters.relaxations == 2
    assert coordinator.counters.rearms == 1


def test_escalation_tick_never_counts_toward_relaxation():
    config = LadderConfig(relax_clean_ticks=1)
    coordinator, _ = _wired_coordinator(config=config)
    # 24 engages the revoke rung (threshold 25) and already sits clear
    # of 25 + hysteresis? No: 24 < 28 — but even with margin 27.9 the
    # escalation tick itself must not double as a clean tick.
    coordinator.observe(0.0, 24.0)
    assert coordinator.stage is EmergencyStage.REVOKE_OVERCLOCK
    coordinator.observe(1.0, 40.0)
    assert coordinator.stage is EmergencyStage.NORMAL


def test_coordinator_mirrors_state_into_the_safety_supervisor():
    safety = SafetySupervisor()
    config = LadderConfig(relax_clean_ticks=1)
    coordinator, _ = _wired_coordinator(config=config, safety=safety)
    coordinator.observe(0.0, 20.0)
    assert safety.facility_emergency
    assert safety.degraded
    assert safety.facility_emergency_events == 1
    with pytest.raises(TelemetryDegraded):
        safety.check()
    # Walk back: POWER_CAP -> REVOKE -> NORMAL clears the flag.
    coordinator.observe(1.0, 40.0)
    coordinator.observe(2.0, 40.0)
    assert not safety.facility_emergency
    assert not safety.degraded
    assert safety.rearm_events == 1


def test_coordinator_records_transitions_on_the_timeline():
    timeline = FaultTimeline()
    config = LadderConfig(relax_clean_ticks=1)
    coordinator, _ = _wired_coordinator(config=config, timeline=timeline)
    coordinator.observe(0.0, 24.0)
    coordinator.observe(1.0, 40.0)
    kinds = [(event.kind, event.target) for event in timeline.events]
    assert kinds == [
        ("emergency-escalate", "revoke_overclock"),
        ("emergency-relax", "revoke_overclock"),
    ]


def test_normal_is_not_a_registrable_stage():
    coordinator = EmergencyCoordinator()
    with pytest.raises(ConfigurationError):
        coordinator.register(EmergencyStage.NORMAL, engage=lambda: "nope")


# ----------------------------------------------------------------------
# FacilityState + facility fault injectors
# ----------------------------------------------------------------------
def test_condenser_fraction_multiplies_derates_and_clamps():
    state = FacilityState(pump_fraction=0.5, water_fraction=0.8, power_fraction=0.5)
    assert state.condenser_fraction() == pytest.approx(0.2)
    assert state.effective_capacity_watts(1000.0) == pytest.approx(200.0)
    # A heat wave past the collapse span pins rejection at zero.
    state.ambient_extra_c = 45.0
    assert state.condenser_fraction() == 0.0
    assert state.ambient_c == pytest.approx(67.0)


def test_facility_state_validates_fractions():
    with pytest.raises(ConfigurationError):
        FacilityState(pump_fraction=1.5)
    with pytest.raises(ConfigurationError):
        FacilityState(ambient_collapse_c=0.0)
    with pytest.raises(ConfigurationError):
        FacilityState().effective_capacity_watts(-1.0)


def test_facility_faults_derate_and_recover_the_plant():
    simulator = Simulator(seed=5)
    state = FacilityState()
    plan = FaultPlan(
        seed=5,
        scenario="unit-facility",
        specs=(
            FaultSpec(
                kind=FaultKind.FACILITY_CONDENSER,
                target="plant",
                at_s=10.0,
                magnitude=0.6,
                duration_s=30.0,
            ),
            FaultSpec(
                kind=FaultKind.FACILITY_HEATWAVE,
                target="plant",
                at_s=20.0,
                magnitude=15.0,
                duration_s=40.0,
            ),
        ),
    )
    campaign = FaultCampaign(simulator, plan)
    register_facility_injectors(campaign, {"plant": state})
    campaign.arm()

    simulator.run(until=15.0)
    assert state.pump_fraction == pytest.approx(0.4)
    simulator.run(until=25.0)  # heat wave on top of the pump loss
    assert state.ambient_extra_c == pytest.approx(15.0)
    assert state.condenser_fraction() == pytest.approx(0.4 * (1.0 - 15.0 / 30.0))
    simulator.run(until=100.0)  # both cleared
    assert state.pump_fraction == pytest.approx(1.0)
    assert state.ambient_extra_c == pytest.approx(0.0)
    assert state.condenser_fraction() == pytest.approx(1.0)

    kinds = [event.kind for event in campaign.timeline.events]
    assert kinds == [
        "facility-condenser",
        "facility-heatwave",
        "recovered",
        "recovered",
    ]


def test_facility_injectors_cover_every_facility_kind():
    simulator = Simulator(seed=1)
    campaign = FaultCampaign(
        simulator, FaultPlan(seed=1, scenario="empty", specs=())
    )
    register_facility_injectors(campaign, {"plant": FacilityState()})
    assert len(FACILITY_FAULT_KINDS) == 4


# ----------------------------------------------------------------------
# TankFluidRC
# ----------------------------------------------------------------------
def test_cooling_deficit_saturates_then_superheats_the_pool():
    # 1000 g * 1.1 J/gK = 1100 J/K; net deficit 1100 W = 1 K/s.
    pool = TankFluidRC(FC_3284, 1000.0, 500.0)
    assert pool.fluid_temp_c == pytest.approx(pool.saturation_c - 4.0)
    assert pool.reference_offset_c == pytest.approx(-4.0)

    pool.set_heat(0.0, 1600.0)
    assert pool.sample(4.0) == pytest.approx(pool.saturation_c)
    assert pool.superheat_c == pytest.approx(0.0)
    # Further deficit builds vapor pressure, not liquid temperature.
    assert pool.sample(10.0) == pytest.approx(pool.saturation_c)
    assert pool.superheat_c == pytest.approx(6.0)
    assert pool.reference_offset_c == pytest.approx(6.0)

    # Kill the heat: the pool relaxes back to its nominal subcool and
    # never overshoots below the equilibrium the condenser can hold.
    pool.set_heat(10.0, 0.0)
    assert pool.sample(1000.0) == pytest.approx(pool.saturation_c - 4.0)
    assert pool.superheat_c == pytest.approx(0.0)


def test_derated_condenser_holds_a_shallower_subcool():
    pool = TankFluidRC(FC_3284, 1000.0, 1000.0)
    pool.set_heat(0.0, 3000.0)  # heat the pool up to saturation first
    pool.sample(10.0)
    pool.set_heat(10.0, 0.0)
    pool.set_capacity(10.0, 500.0)  # half capacity -> half the subcool
    assert pool.sample(10_000.0) == pytest.approx(pool.saturation_c - 2.0)
    # Cooling never pushes the pool below its achievable equilibrium —
    # and never *raises* it toward a shallower one either.
    pool.set_capacity(10_000.0, 250.0)
    assert pool.sample(20_000.0) == pytest.approx(pool.saturation_c - 2.0)


def test_tank_fluid_rc_validates_inputs():
    with pytest.raises(ConfigurationError):
        TankFluidRC(FC_3284, 0.0, 500.0)
    pool = TankFluidRC(FC_3284, 1000.0, 500.0)
    with pytest.raises(ConfigurationError):
        pool.set_heat(0.0, -1.0)
    pool.sample(5.0)
    with pytest.raises(ConfigurationError):
        pool.sample(4.0)  # cannot integrate backwards


# ----------------------------------------------------------------------
# Emergency-priority delivery + reconciler starvation
# ----------------------------------------------------------------------
def test_emergency_commands_bypass_an_open_breaker():
    simulator = Simulator(seed=11)
    link = ActuationLink(simulator, seed=11, lease_misses=10**6)
    applied: list[float] = []
    link.add_host("h0", base_frequency_ghz=3.4, apply_frequency=applied.append)

    breaker = link.bus.breaker_for("h0")
    for _ in range(3):
        breaker.record_failure(simulator.now)
    assert breaker.is_open

    # A normal send fast-fails locally while the breaker is open.
    link.set_frequency(3.2, hosts=("h0",))
    simulator.run(until=5.0)
    assert link.counters.breaker_fast_fails >= 1
    assert 3.2 not in applied

    # The emergency revoke goes out anyway and lands.
    link.set_frequency(3.0, hosts=("h0",), emergency=True)
    simulator.run(until=10.0)
    assert link.counters.emergency_bypasses >= 1
    assert 3.0 in applied


def test_reconciler_surfaces_breaker_starved_hosts_to_safety():
    simulator = Simulator(seed=3)
    timeline = FaultTimeline()
    link = ActuationLink(simulator, seed=3, lease_misses=10**6, timeline=timeline)
    link.add_host("h0", base_frequency_ghz=3.4)
    reconciler = link.reconciler
    safety = SafetySupervisor(
        config=SafetyConfig(max_suspect_ticks=3, rearm_clean_samples=2)
    )
    reconciler.attach_safety(safety)

    reconciler.set_desired_frequency("h0", 4.1)  # reported stays 3.4
    breaker = link.bus.breaker_for("h0")
    for _ in range(3):
        breaker.record_failure(simulator.now)

    # Two skipped ticks are still below the starvation threshold.
    reconciler.tick()
    reconciler.tick()
    assert link.counters.reconcile_starved == 0
    assert not safety.degraded

    # The third consecutive skip flags starvation exactly once...
    reconciler.tick()
    assert link.counters.reconcile_starved == 1
    assert [e.kind for e in timeline.events].count("reconcile-starved") == 1

    # ...and sustained starvation degrades the supervisor.
    reconciler.tick()
    reconciler.tick()
    assert safety.actuation_degraded
    assert safety.degraded

    # Breaker re-closes: the repair is issued, the streak clears, and
    # clean ticks re-arm the supervisor.
    breaker.record_success()
    reconciler.tick()
    reconciler.tick()
    assert not safety.actuation_degraded
    assert link.counters.reconcile_starved == 1  # never re-counted


def test_observe_facility_edges_drive_degrade_and_rearm_counts():
    safety = SafetySupervisor()
    assert safety.observe_facility(10.0, True, detail="pump loss")
    assert safety.observe_facility(11.0, True)  # level, not edge
    assert safety.facility_emergency_events == 1
    assert safety.degrade_events == 1
    assert not safety.observe_facility(12.0, False)
    assert safety.rearm_events == 1
    assert not safety.degraded


# ----------------------------------------------------------------------
# Counter export
# ----------------------------------------------------------------------
def test_counters_payload_sections_follow_the_supplied_sets():
    control = ControlPlaneCounters(commands_sent=2, emergency_bypasses=1)
    emergency = EmergencyCounters(escalations=4, rearms=1)
    payload = counters_payload(control=control, emergency=emergency, extra={"seed": 7})
    assert payload["control_plane"]["emergency_bypasses"] == 1
    assert payload["emergency"]["escalations"] == 4
    assert payload["seed"] == 7
    assert "emergency" not in counters_payload(control=control)
    with pytest.raises(ConfigurationError):
        counters_payload()


def test_write_counters_json_round_trips(tmp_path):
    target = tmp_path / "counters.json"
    payload = write_counters_json(
        target,
        control=ControlPlaneCounters(reconcile_starved=3),
        emergency=EmergencyCounters(shutdowns=2),
    )
    on_disk = json.loads(target.read_text())
    assert on_disk == payload
    assert on_disk["control_plane"]["reconcile_starved"] == 3
    assert on_disk["emergency"]["shutdowns"] == 2


# ----------------------------------------------------------------------
# Fleet-level emergency actions
# ----------------------------------------------------------------------
def _host_with_vms(host_id, count, vcores=14, memory_gb=32.0):
    host = Host(host_id)
    for index in range(count):
        host.place(
            VMInstance(
                vm_id=f"{host_id}-vm{index}",
                spec=VMSpec(vcores=vcores, memory_gb=memory_gb),
            )
        )
    return host


def test_controlled_shutdown_loses_residents_and_restores_clean():
    host = _host_with_vms("h0", 1)
    lost = host.controlled_shutdown(time=42.0)
    assert [vm.vm_id for vm in lost] == ["h0-vm0"]
    assert host.failed and host.shut_down
    with pytest.raises(ConfigurationError):
        host.controlled_shutdown()
    host.restore()
    assert not host.failed and not host.shut_down


def test_crash_failure_is_not_a_controlled_shutdown():
    host = _host_with_vms("h0", 1)
    host.fail(time=1.0)
    assert host.failed and not host.shut_down


def test_evacuation_drains_in_vm_id_order_to_first_fit():
    simulator = Simulator(seed=1)
    manager = MigrationManager(simulator)
    source = _host_with_vms("src", 2)
    crowded = _host_with_vms("d0", 1)  # room for exactly one more VM
    empty = Host("d1")
    dead = Host("d2")
    dead.fail()

    records = evacuate_host(manager, source, [dead, crowded, empty])
    assert [(r.plan.vm_id, r.destination_id) for r in records] == [
        ("src-vm0", "d0"),
        ("src-vm1", "d1"),
    ]
    simulator.run(until=60.0)
    assert [vm.vm_id for vm in source.vms if vm.is_active] == []
    assert {vm.vm_id for vm in crowded.vms if vm.is_active} == {"d0-vm0", "src-vm0"}
    assert {vm.vm_id for vm in empty.vms if vm.is_active} == {"src-vm1"}


def test_evacuation_leaves_unplaceable_vms_behind():
    simulator = Simulator(seed=1)
    manager = MigrationManager(simulator)
    source = _host_with_vms("src", 2)
    full = _host_with_vms("d0", 2)
    records = evacuate_host(manager, source, [full])
    assert records == []
    assert len([vm for vm in source.vms if vm.is_active]) == 2


def test_fleet_cap_skips_downed_hosts():
    governor = PowerCapGovernor()
    busy = _host_with_vms("a", 2)
    down = _host_with_vms("b", 2)
    down.controlled_shutdown()
    results = governor.enforce_fleet([busy, down], cap_watts_per_host=170.0)
    assert [result.host_id for result in results] == ["a"]
    assert results[0].capped
    assert results[0].final_watts <= 170.0


def test_hottest_first_is_deterministic_and_skips_failed_hosts():
    hosts = [Host("a"), Host("b"), Host("c"), Host("d")]
    hosts[3].fail()
    order = hottest_first(hosts, {"a": 100.0, "b": 105.0, "d": 120.0})
    assert [host.host_id for host in order] == ["b", "a", "c"]


# ----------------------------------------------------------------------
# CLI fault catalog
# ----------------------------------------------------------------------
def test_cli_faults_list_is_sorted_and_complete(capsys):
    assert cli_main(["faults", "--list"]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    blank = lines.index("")
    assert lines[0] == "Fault kinds:"
    kinds = [line.strip() for line in lines[1:blank]]
    assert kinds == sorted(kinds)
    assert {kind.value for kind in FACILITY_FAULT_KINDS} <= set(kinds)
    assert {kind.value for kind in POWER_FAULT_KINDS} <= set(kinds)
    assert lines[blank + 1] == "Fault scenarios:"
    scenarios = [line.split()[0] for line in lines[blank + 2 :] if line.strip()]
    assert scenarios == sorted(scenarios)
    assert "heatwave" in scenarios
    assert "oversubscribe" in scenarios

    # Stable across invocations (the docs-diffability contract).
    assert cli_main(["faults", "--list"]) == 0
    assert capsys.readouterr().out == out
