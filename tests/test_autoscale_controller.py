"""Closed-loop tests for the auto-scaler controller (short horizons)."""

import pytest

from repro.autoscale import AutoScaler, AutoscalePolicy, ScalerMode
from repro.sim import OpenLoopSource, PiecewiseSchedule, Simulator


def run_controller(
    mode,
    qps_steps,
    horizon_s,
    initial_vms=1,
    enable_scale_out=True,
    seed=11,
    scale_out_latency_s=60.0,
):
    simulator = Simulator(seed=seed)
    policy = AutoscalePolicy(mode=mode, enable_scale_out=enable_scale_out)
    autoscaler = AutoScaler(
        simulator,
        policy,
        initial_vms=initial_vms,
        scale_out_latency_s=scale_out_latency_s,
        warmup_s=10.0,
    )
    schedule = PiecewiseSchedule(qps_steps)
    source = OpenLoopSource(
        simulator, autoscaler.load_balancer.route, rate_per_second=schedule.value_at(0)
    )
    simulator.every(5.0, lambda: source.set_rate(schedule.value_at(simulator.now)))
    simulator.run(until=horizon_s)
    return autoscaler, autoscaler.finish()


class TestScaleOutIn:
    def test_high_load_triggers_scale_out(self):
        _, result = run_controller(
            ScalerMode.BASELINE, [(0.0, 1200.0)], horizon_s=600.0
        )
        assert result.scale_out_events >= 1
        assert result.max_vms >= 2

    def test_low_load_never_scales_out(self):
        _, result = run_controller(ScalerMode.BASELINE, [(0.0, 200.0)], horizon_s=600.0)
        assert result.scale_out_events == 0
        assert result.max_vms == 1

    def test_scale_in_after_load_drop(self):
        _, result = run_controller(
            ScalerMode.BASELINE,
            [(0.0, 1500.0), (600.0, 100.0)],
            horizon_s=1500.0,
            initial_vms=3,
        )
        assert result.scale_in_events >= 1
        assert result.vm_count.value < 3

    def test_min_vms_floor(self):
        _, result = run_controller(
            ScalerMode.BASELINE, [(0.0, 10.0)], horizon_s=1200.0, initial_vms=2
        )
        assert result.vm_count.value >= 1

    def test_one_vm_at_a_time(self):
        """No concurrent deploys: VM count never jumps by 2."""
        _, result = run_controller(
            ScalerMode.BASELINE, [(0.0, 4000.0)], horizon_s=900.0
        )
        values = [s.value for s in result.vm_count.trace]
        jumps = [b - a for a, b in zip(values, values[1:])]
        assert max(jumps) <= 1.0

    def test_deploy_latency_respected(self):
        """A triggered scale-out serves no traffic until the deploy
        latency elapses: the VM is provisioned but not active."""
        autoscaler, result = run_controller(
            ScalerMode.BASELINE, [(0.0, 1500.0)], horizon_s=110.0,
            scale_out_latency_s=120.0,
        )
        assert result.scale_out_events >= 1
        assert autoscaler.provisioned_vm_count >= 2   # deploying
        assert autoscaler.active_vm_count == 1        # not serving yet


class TestFrequencyControl:
    def test_baseline_never_changes_frequency(self):
        _, result = run_controller(ScalerMode.BASELINE, [(0.0, 1500.0)], horizon_s=600.0)
        assert {s.value for s in result.frequency_trace} == {3.4}

    def test_oc_e_tracks_scale_out_threshold(self):
        """OC-E jumps to the top bin while the 3-minute average exceeds
        the scale-out threshold and returns to base once capacity lands
        and the average falls back below it."""
        autoscaler, result = run_controller(
            ScalerMode.OC_E, [(0.0, 1500.0)], horizon_s=900.0
        )
        frequencies = [s.value for s in result.frequency_trace]
        assert max(frequencies) == pytest.approx(4.1)
        # Capacity arrives, utilization drops under 50%, frequency resets.
        assert frequencies[-1] == pytest.approx(3.4)

    def test_oc_e_overclocks_when_capped(self):
        """Even with no deploys possible (max_vms reached), OC-E still
        overclocks through overload — the virtual capacity of Fig. 8a."""
        simulator = Simulator(seed=3)
        policy = AutoscalePolicy(mode=ScalerMode.OC_E, max_vms=1)
        autoscaler = AutoScaler(simulator, policy, initial_vms=1, warmup_s=10.0)
        source = OpenLoopSource(
            simulator, autoscaler.load_balancer.route, rate_per_second=1100
        )
        simulator.run(until=600.0)
        result = autoscaler.finish()
        del source
        assert result.max_vms == 1
        assert result.frequency_trace.latest().value == pytest.approx(4.1)

    def test_oc_a_scales_up_without_scale_out(self):
        _, result = run_controller(
            ScalerMode.OC_A,
            [(0.0, 550.0)],  # util ~0.45 at B2: above scale-up, below scale-out
            horizon_s=600.0,
            enable_scale_out=False,
        )
        assert max(s.value for s in result.frequency_trace) > 3.4
        assert result.scale_out_events == 0

    def test_oc_a_scales_down_when_idle(self):
        _, result = run_controller(
            ScalerMode.OC_A,
            [(0.0, 550.0), (300.0, 100.0)],
            horizon_s=600.0,
            enable_scale_out=False,
        )
        assert result.frequency_trace.latest().value == pytest.approx(3.4)

    def test_oc_a_reduces_utilization_vs_baseline(self):
        """The Figure 15 effect: scale-up pulls utilization down."""
        _, base = run_controller(
            ScalerMode.BASELINE, [(0.0, 600.0)], horizon_s=600.0,
            enable_scale_out=False,
        )
        _, oc = run_controller(
            ScalerMode.OC_A, [(0.0, 600.0)], horizon_s=600.0,
            enable_scale_out=False,
        )
        base_util = base.utilization_trace.window_mean(600.0, 300.0)
        oc_util = oc.utilization_trace.window_mean(600.0, 300.0)
        assert oc_util < base_util

    def test_power_rises_with_overclock(self):
        _, base = run_controller(
            ScalerMode.BASELINE, [(0.0, 600.0)], horizon_s=600.0,
            enable_scale_out=False,
        )
        _, oc = run_controller(
            ScalerMode.OC_A, [(0.0, 600.0)], horizon_s=600.0,
            enable_scale_out=False,
        )
        assert oc.power.average_watts() > base.power.average_watts()


class TestResultAccounting:
    def test_vm_hours_integrates_count(self):
        _, result = run_controller(
            ScalerMode.BASELINE, [(0.0, 100.0)], horizon_s=3600.0, initial_vms=2
        )
        # Low load: likely scale-in to 1 at some point; vm_hours <= 2.0 and >= 1.0
        assert 0.9 <= result.vm_hours() <= 2.1

    def test_latency_recorded(self):
        _, result = run_controller(ScalerMode.BASELINE, [(0.0, 300.0)], horizon_s=300.0)
        assert len(result.latency) > 1000
        assert result.latency.p95() > 0
