"""Tests for VM lifecycle management (deploy latency, VM-hours)."""

import pytest

from repro.cluster import PAPER_SCALE_OUT_LATENCY_S, VMLifecycleManager, VMSpec, VMState
from repro.errors import ConfigurationError
from repro.sim import Simulator

SPEC = VMSpec(vcores=4, memory_gb=16.0)


class TestVMLifecycleManager:
    def test_paper_default_latency(self):
        assert PAPER_SCALE_OUT_LATENCY_S == 60.0

    def test_vm_becomes_running_after_latency(self):
        simulator = Simulator()
        manager = VMLifecycleManager(simulator)
        ready_times = []
        vm = manager.request_vm(SPEC, on_ready=lambda v: ready_times.append(simulator.now))
        assert vm.state is VMState.CREATING
        simulator.run(until=59.0)
        assert vm.state is VMState.CREATING
        simulator.run(until=61.0)
        assert vm.state is VMState.RUNNING
        assert ready_times == [60.0]

    def test_latency_override_zero_is_immediate(self):
        simulator = Simulator()
        manager = VMLifecycleManager(simulator)
        vm = manager.request_vm(SPEC, latency_override_s=0.0)
        assert vm.state is VMState.RUNNING

    def test_delete_during_creation_cancels_ready(self):
        simulator = Simulator()
        manager = VMLifecycleManager(simulator)
        ready = []
        vm = manager.request_vm(SPEC, on_ready=lambda v: ready.append(v))
        simulator.run(until=10.0)
        manager.delete_vm(vm.vm_id)
        simulator.run(until=200.0)
        assert ready == []
        assert vm.state is VMState.DELETED

    def test_vm_hours_accounting(self):
        simulator = Simulator()
        manager = VMLifecycleManager(simulator)
        vm = manager.request_vm(SPEC)
        simulator.run(until=60.0 + 3600.0)
        assert manager.vm_hours() == pytest.approx(1.0)
        manager.delete_vm(vm.vm_id)
        simulator.at(simulator.now + 1000, lambda: None)
        simulator.run()
        assert manager.vm_hours() == pytest.approx(1.0)

    def test_instance_queries(self):
        simulator = Simulator()
        manager = VMLifecycleManager(simulator)
        manager.request_vm(SPEC)
        manager.request_vm(SPEC, latency_override_s=0.0)
        assert len(manager.creating_instances) == 1
        assert len(manager.running_instances) == 1
        assert len(manager.active_instances) == 2

    def test_validation(self):
        simulator = Simulator()
        with pytest.raises(ConfigurationError):
            VMLifecycleManager(simulator, creation_latency_s=-1.0)
        manager = VMLifecycleManager(simulator)
        with pytest.raises(ConfigurationError):
            manager.delete_vm("nope")
        vm = manager.request_vm(SPEC, latency_override_s=0.0)
        manager.delete_vm(vm.vm_id)
        with pytest.raises(ConfigurationError):
            manager.delete_vm(vm.vm_id)
