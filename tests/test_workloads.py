"""Tests for workload profiles, the Table IX catalog, and Figure 9 claims."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, WorkloadError
from repro.silicon import B1, B2, B3, B4, OC1, OC2, OC3
from repro.workloads import (
    APPLICATIONS,
    BI,
    BottleneckProfile,
    DISKSPEED,
    FIGURE9_APPLICATIONS,
    PMBENCH,
    SPECJBB,
    SQL,
    TERASORT,
    TRAINING,
    workload_by_name,
)


class TestBottleneckProfile:
    def test_fixed_is_remainder(self):
        profile = BottleneckProfile(core=0.5, memory=0.3)
        assert profile.fixed == pytest.approx(0.2)

    def test_shares_must_not_exceed_one(self):
        with pytest.raises(ConfigurationError):
            BottleneckProfile(core=0.7, memory=0.5)

    def test_negative_share_rejected(self):
        with pytest.raises(ConfigurationError):
            BottleneckProfile(core=-0.1)

    def test_time_scale_pure_core(self):
        profile = BottleneckProfile(core=1.0)
        assert profile.time_scale({"core": 2.0}) == pytest.approx(0.5)

    def test_time_scale_fixed_never_improves(self):
        profile = BottleneckProfile(core=0.0)
        assert profile.time_scale({"core": 100.0}) == pytest.approx(1.0)

    def test_time_scale_missing_component_unchanged(self):
        profile = BottleneckProfile(core=0.5, memory=0.5)
        assert profile.time_scale({"core": 2.0}) == pytest.approx(0.75)

    def test_invalid_speedup_rejected(self):
        profile = BottleneckProfile(core=0.5)
        with pytest.raises(WorkloadError):
            profile.time_scale({"core": 0.0})

    def test_scalable_fraction_is_core_share_of_active(self):
        profile = BottleneckProfile(core=0.6, llc=0.2, memory=0.2)
        assert profile.scalable_fraction() == pytest.approx(0.6)

    def test_scalable_fraction_idle_profile(self):
        assert BottleneckProfile().scalable_fraction() == 1.0

    @given(
        st.floats(min_value=0, max_value=0.5),
        st.floats(min_value=0, max_value=0.3),
        st.floats(min_value=1.0, max_value=2.0),
    )
    def test_time_scale_at_most_one_for_speedups(self, core, memory, speedup):
        profile = BottleneckProfile(core=core, memory=memory)
        scale = profile.time_scale({"core": speedup, "memory": speedup})
        assert scale <= 1.0 + 1e-12

    @given(st.floats(min_value=1.0, max_value=3.0))
    def test_speedup_bounded_by_amdahl(self, clock_ratio):
        """No workload can speed up more than its non-fixed share allows."""
        profile = BottleneckProfile(core=0.6, memory=0.2)
        scale = profile.time_scale({"core": clock_ratio, "memory": clock_ratio})
        assert scale >= profile.fixed


class TestCatalog:
    def test_table9_membership(self):
        names = {app.name for app in APPLICATIONS}
        assert names == {
            "SQL", "Training", "Key-Value", "BI", "Client-Server",
            "Pmbench", "DiskSpeed", "SPECJBB", "TeraSort", "VGG", "STREAM",
        }

    def test_core_counts_match_table9(self):
        by_name = {app.name: app.cores for app in APPLICATIONS}
        assert by_name["SQL"] == 4
        assert by_name["Key-Value"] == 8
        assert by_name["Pmbench"] == 2
        assert by_name["VGG"] == 16

    def test_metric_polarity(self):
        assert not SQL.higher_is_better
        assert DISKSPEED.higher_is_better
        assert SPECJBB.higher_is_better

    def test_lookup(self):
        assert workload_by_name("SQL") is SQL
        with pytest.raises(ConfigurationError):
            workload_by_name("nope")


class TestFigure9Claims:
    """The paper's qualitative Section VI-B findings."""

    def test_every_app_gains_somewhere(self):
        """Overclocking improves every app by roughly 10-25%."""
        for app in FIGURE9_APPLICATIONS:
            best = max(app.speedup(config, B2) for config in (OC1, OC2, OC3))
            assert 1.08 <= best <= 1.30, app.name

    def test_oc1_best_increment_for_core_bound_apps(self):
        """Core overclocking is the biggest single lever for most apps.

        Exceptions mirror the paper's own: TeraSort and DiskSpeed (I/O
        and cache bound), Pmbench (explicitly accelerated by cache
        overclocking), and SQL (explicitly accelerated by memory
        overclocking).
        """
        exceptions = {"TeraSort", "DiskSpeed", "Pmbench", "SQL"}
        for app in FIGURE9_APPLICATIONS:
            if app.name in exceptions:
                continue
            core_gain = app.speedup(OC1, B2) - 1.0
            llc_gain = app.speedup(OC2, B2) - app.speedup(OC1, B2)
            mem_gain = app.speedup(OC3, B2) - app.speedup(OC2, B2)
            assert core_gain >= max(llc_gain, mem_gain) - 1e-9, app.name

    def test_diskspeed_prefers_cache(self):
        llc_gain = DISKSPEED.speedup(OC2, B2) - DISKSPEED.speedup(OC1, B2)
        core_gain = DISKSPEED.speedup(OC1, B2) - 1.0
        assert llc_gain > core_gain

    def test_pmbench_accelerated_by_cache(self):
        assert PMBENCH.speedup(OC2, B2) > PMBENCH.speedup(OC1, B2) * 1.03

    def test_sql_memory_overclocking_significant(self):
        """OC3's memory bump helps memory-bound SQL substantially."""
        mem_gain = SQL.speedup(OC3, B2) - SQL.speedup(OC2, B2)
        assert mem_gain > 0.05

    def test_bi_only_core_matters(self):
        assert BI.speedup(OC1, B2) == pytest.approx(BI.speedup(OC3, B2))
        assert BI.speedup(OC1, B2) > 1.10

    def test_training_insensitive_to_cache_and_memory(self):
        assert TRAINING.speedup(OC1, B2) == pytest.approx(TRAINING.speedup(OC3, B2))
        assert TRAINING.speedup(B4, B2) == pytest.approx(1.0)

    def test_terasort_core_not_dominant(self):
        core_gain = TERASORT.speedup(OC1, B2) - 1.0
        mem_gain = TERASORT.speedup(OC3, B2) - TERASORT.speedup(OC2, B2)
        assert mem_gain > core_gain

    def test_b_configs_ordered(self):
        """B1 <= B2 <= B3 <= B4 for every app (more clocks never hurt)."""
        for app in FIGURE9_APPLICATIONS:
            speedups = [app.speedup(config, B1) for config in (B1, B2, B3, B4)]
            assert speedups == sorted(speedups), app.name
            assert speedups[0] == pytest.approx(1.0)

    def test_normalized_metric_polarity(self):
        assert SQL.normalized_metric(OC3, B2) < 1.0       # latency drops
        assert SPECJBB.normalized_metric(OC3, B2) > 1.0   # throughput rises
