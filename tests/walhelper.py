"""Subprocess driver for the WAL SIGKILL chaos test.

Runs a small journaled campaign of deliberately slow sweep points so
the parent test can SIGKILL this process *mid-campaign* — after some
results have been fsync'd to the write-ahead log but before the sweep
finishes. The parent then resumes the run in-process and asserts the
recovered results are bit-identical to an uninterrupted campaign.

Invoked as ``python -m tests.walhelper <cache_dir> <run_id>`` with
``PYTHONPATH`` covering both ``src/`` and the repository root.
"""

from __future__ import annotations

import sys
import time

from repro.engine import RunJournal, SweepEngine, SweepTask, journal_path

#: Campaign shape shared with the parent test.
POINTS = 8
MASTER_SEED = 3
SLEEP_S = 0.15


def slow_point(x: int, seed: int = 0) -> dict:
    """A sweep point slow enough to be killed between completions."""
    time.sleep(SLEEP_S)
    return {"x": x, "seed": seed, "value": x * x + seed % 97}


def build_tasks() -> list[SweepTask]:
    return [
        SweepTask(fn=slow_point, params={"x": i}, key=f"p{i}", seed_param="seed")
        for i in range(POINTS)
    ]


def run_campaign(cache_dir: str, run_id: str) -> dict:
    """One journaled serial campaign; returns the result map."""
    journal = RunJournal(journal_path(cache_dir, run_id), run_id)
    journal.open()
    try:
        engine = SweepEngine(max_workers=1, cache=None, journal=journal)
        return engine.run(build_tasks(), master_seed=MASTER_SEED)
    finally:
        journal.close()


def main(argv: list[str]) -> int:
    cache_dir, run_id = argv[1], argv[2]
    run_campaign(cache_dir, run_id)
    print("CAMPAIGN-DONE", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
