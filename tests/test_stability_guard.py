"""StabilityMonitor alarm hysteresis and OverclockGuard limit ordering."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.reliability.failure_modes import OperatingCondition
from repro.reliability.governor import LIFETIME_NEUTRAL_RATIO, OverclockGuard
from repro.reliability.stability import (
    DEFAULT_ERRORS_PER_CRASH,
    StabilityModel,
    StabilityMonitor,
)
from repro.reliability.wearout import WearoutCounter


class TestCrashRate:
    def test_zero_inside_stable_margin(self):
        model = StabilityModel()
        assert model.crash_rate_per_hour(1.0) == 0.0
        assert model.crash_rate_per_hour(model.stable_margin) == 0.0

    def test_scales_down_from_error_rate(self):
        model = StabilityModel()
        ratio = 1.30
        expected = model.correctable_error_rate_per_hour(ratio) / DEFAULT_ERRORS_PER_CRASH
        assert model.crash_rate_per_hour(ratio) == pytest.approx(expected)

    def test_infinite_at_crash_margin(self):
        model = StabilityModel()
        assert math.isinf(model.crash_rate_per_hour(model.crash_margin))

    def test_errors_per_crash_validated(self):
        with pytest.raises(ConfigurationError):
            StabilityModel().crash_rate_per_hour(1.3, errors_per_crash=0.0)


class TestMonitorHysteresis:
    def _fire(self, monitor):
        monitor.observe(0.0, 0.0)
        assert monitor.observe(1.0, 100.0)  # 100 errors/hour
        assert monitor.alarmed

    def test_default_latches_forever(self):
        monitor = StabilityMonitor(rate_threshold_per_hour=1.0)
        self._fire(monitor)
        for hour in range(2, 10):
            assert not monitor.observe(float(hour), 100.0)  # quiet: rate 0
        assert monitor.alarmed  # clear_after_quiet=0: only reset_alarm clears
        monitor.reset_alarm()
        assert not monitor.alarmed

    def test_auto_clear_after_quiet_streak(self):
        monitor = StabilityMonitor(rate_threshold_per_hour=1.0, clear_after_quiet=3)
        self._fire(monitor)
        monitor.observe(2.0, 100.0)
        monitor.observe(3.0, 100.0)
        assert monitor.alarmed  # two quiet observations: not enough
        monitor.observe(4.0, 100.0)
        assert not monitor.alarmed  # third quiet observation clears

    def test_band_observation_resets_the_streak(self):
        monitor = StabilityMonitor(
            rate_threshold_per_hour=2.0,
            clear_after_quiet=2,
            clear_threshold_per_hour=0.5,
        )
        monitor.observe(0.0, 0.0)
        assert monitor.observe(1.0, 10.0)  # 10/h fires
        monitor.observe(2.0, 10.0)  # 0/h: quiet (1)
        monitor.observe(3.0, 11.0)  # 1/h: inside (0.5, 2.0] band, no alarm,
        assert monitor.alarmed      # but the streak resets
        monitor.observe(4.0, 11.0)  # quiet (1)
        assert monitor.alarmed
        monitor.observe(5.0, 11.0)  # quiet (2): clears
        assert not monitor.alarmed

    def test_refire_during_cooldown_relatches(self):
        monitor = StabilityMonitor(rate_threshold_per_hour=1.0, clear_after_quiet=2)
        self._fire(monitor)
        monitor.observe(2.0, 100.0)  # quiet (1)
        assert monitor.observe(3.0, 200.0)  # fires again
        assert monitor.alarms == 2
        monitor.observe(4.0, 200.0)  # quiet (1)
        assert monitor.alarmed
        monitor.observe(5.0, 200.0)  # quiet (2)
        assert not monitor.alarmed

    def test_crafted_sequence_rearms_exactly_once_and_never_early(self):
        """Walk one crafted trace through the full hysteresis cycle:
        latch → partial cooldown → band wobble resets the streak →
        full quiet streak clears → re-fire latches a second alarm."""
        monitor = StabilityMonitor(
            rate_threshold_per_hour=2.0,
            clear_after_quiet=3,
            clear_threshold_per_hour=0.5,
        )
        monitor.observe(0.0, 0.0)
        assert not monitor.observe(1.0, 1.0)   # 1/h: inside the band, no latch
        assert monitor.observe(2.0, 6.0)       # 5/h: latches
        assert monitor.alarms == 1
        monitor.observe(3.0, 6.0)              # quiet (1)
        monitor.observe(4.0, 6.0)              # quiet (2)
        assert monitor.alarmed                 # one short of the streak
        monitor.observe(5.0, 7.0)              # 1/h: band, streak resets
        assert monitor.alarmed
        monitor.observe(6.0, 7.0)              # quiet (1)
        monitor.observe(7.0, 7.0)              # quiet (2)
        assert monitor.alarmed                 # still not re-armed
        monitor.observe(8.0, 7.0)              # quiet (3): re-arms now
        assert not monitor.alarmed
        assert monitor.alarms == 1             # clearing is not an alarm
        assert monitor.observe(9.0, 12.0)      # 5/h: fresh latch after re-arm
        assert monitor.alarms == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StabilityMonitor(clear_after_quiet=-1)
        with pytest.raises(ConfigurationError):
            StabilityMonitor(
                rate_threshold_per_hour=1.0, clear_threshold_per_hour=2.0
            )


def _conditions():
    overclocked = OperatingCondition(tj_max_c=85.0, tj_min_c=45.0, voltage_v=1.1)
    nominal = OperatingCondition(tj_max_c=70.0, tj_min_c=45.0, voltage_v=0.9)
    return overclocked, nominal


class TestGuardLimitOrdering:
    """``limited_by`` must name the *binding* constraint under the
    guard's documented precedence: alarm, then stability, then power,
    then lifetime."""

    def test_alarm_dominates_everything(self):
        overclocked, nominal = _conditions()
        guard = OverclockGuard(
            monitor=StabilityMonitor(rate_threshold_per_hour=1.0),
            wearout=WearoutCounter(),
            overclocked_condition=overclocked,
            nominal_condition=nominal,
        )
        guard.observe_errors(0.0, 0.0)
        guard.observe_errors(1.0, 50.0)
        decision = guard.decide(1.5, power_headroom_watts=1.0)
        assert decision.limited_by == "alarm"
        assert decision.granted_ratio == 1.0
        assert not decision.granted

    def test_stability_binds_before_power_when_power_is_looser(self):
        guard = OverclockGuard()
        decision = guard.decide(1.5, power_headroom_watts=float("inf"))
        assert decision.limited_by == "stability"
        assert decision.granted_ratio == pytest.approx(1.23)

    def test_power_binds_when_tighter_than_stability(self):
        guard = OverclockGuard()
        # 43.5 W of headroom buys +10% at 435 W per unit ratio.
        decision = guard.decide(1.5, power_headroom_watts=43.5)
        assert decision.limited_by == "power"
        assert decision.granted_ratio == pytest.approx(1.1)

    def test_lifetime_binds_past_the_neutral_band(self):
        overclocked, nominal = _conditions()
        guard = OverclockGuard(
            stability=StabilityModel(stable_margin=1.30, crash_margin=1.40),
            wearout=WearoutCounter(),  # fresh counter: zero banked credit
            overclocked_condition=overclocked,
            nominal_condition=nominal,
        )
        decision = guard.decide(1.28, power_headroom_watts=float("inf"))
        assert decision.limited_by == "lifetime"
        assert decision.granted_ratio == pytest.approx(LIFETIME_NEUTRAL_RATIO)

    def test_stability_then_lifetime_composition(self):
        # Request beyond both: stability caps to 1.30 first, then the
        # empty wear-out budget pulls it back to the neutral band — the
        # *last* binding constraint is reported.
        overclocked, nominal = _conditions()
        guard = OverclockGuard(
            stability=StabilityModel(stable_margin=1.30, crash_margin=1.40),
            wearout=WearoutCounter(),
            overclocked_condition=overclocked,
            nominal_condition=nominal,
        )
        decision = guard.decide(1.6, power_headroom_watts=float("inf"))
        assert decision.limited_by == "lifetime"
        assert decision.granted_ratio == pytest.approx(LIFETIME_NEUTRAL_RATIO)

    def test_banked_credit_unlocks_past_neutral(self):
        overclocked, nominal = _conditions()
        counter = WearoutCounter()
        # A year at the cool nominal condition banks credit vs the
        # worst-case rated schedule.
        counter.record(8766.0, nominal, utilization=0.2)
        assert counter.lifetime_credit() > 0
        guard = OverclockGuard(
            stability=StabilityModel(stable_margin=1.30, crash_margin=1.40),
            wearout=counter,
            overclocked_condition=overclocked,
            nominal_condition=nominal,
        )
        decision = guard.decide(1.28, power_headroom_watts=float("inf"))
        assert decision.limited_by == "none"
        assert decision.granted_ratio == pytest.approx(1.28)

    def test_within_every_limit_reports_none(self):
        guard = OverclockGuard()
        decision = guard.decide(1.2, power_headroom_watts=float("inf"))
        assert decision.limited_by == "none"
        assert decision.granted_ratio == pytest.approx(1.2)

    def test_alarm_clears_through_monitor_hysteresis(self):
        guard = OverclockGuard(
            monitor=StabilityMonitor(rate_threshold_per_hour=1.0, clear_after_quiet=2)
        )
        guard.observe_errors(0.0, 0.0)
        guard.observe_errors(1.0, 50.0)
        assert guard.decide(1.2).limited_by == "alarm"
        guard.observe_errors(2.0, 50.0)
        assert guard.alarmed
        guard.observe_errors(3.0, 50.0)
        assert not guard.alarmed
        assert guard.decide(1.2).limited_by == "none"
