"""Tests for the overclock guard, the VM trace generator, and the CLI."""

import io

import pytest

from repro.cli import EXPERIMENTS, list_experiments, run
from repro.errors import ConfigurationError
from repro.reliability import (
    OverclockGuard,
    StabilityMonitor,
    WearoutCounter,
    immersion_condition,
)
from repro.thermal import HFE_7000
from repro.workloads import VMTraceGenerator, core_hours


class TestOverclockGuard:
    def _conditions(self):
        return (
            immersion_condition(HFE_7000, 305.0, 0.98),
            immersion_condition(HFE_7000, 205.0, 0.90),
        )

    def test_grants_within_stable_envelope(self):
        guard = OverclockGuard()
        decision = guard.decide(1.20)
        assert decision.granted_ratio == pytest.approx(1.20)
        assert decision.limited_by == "none"

    def test_stability_clamps_excess(self):
        guard = OverclockGuard()
        decision = guard.decide(1.40)
        assert decision.granted_ratio == pytest.approx(1.23)
        assert decision.limited_by == "stability"

    def test_power_headroom_clamps(self):
        guard = OverclockGuard()
        # 43.5 W of headroom buys ~10% of ratio at 435 W/unit.
        decision = guard.decide(1.20, power_headroom_watts=43.5)
        assert decision.granted_ratio == pytest.approx(1.10, abs=0.001)
        assert decision.limited_by == "power"

    def test_alarm_forces_base_clock(self):
        guard = OverclockGuard(monitor=StabilityMonitor(rate_threshold_per_hour=0.5))
        guard.observe_errors(0.0, 0.0)
        guard.observe_errors(1.0, 10.0)  # 10 errors/hour: alarm
        assert guard.alarmed
        decision = guard.decide(1.20)
        assert decision.granted_ratio == 1.0
        assert decision.limited_by == "alarm"
        guard.clear_alarm()
        assert guard.decide(1.20).granted_ratio == pytest.approx(1.20)

    def test_lifetime_clamps_red_band_without_credit(self):
        overclocked, nominal = self._conditions()
        counter = WearoutCounter()
        # A year at the rated air condition banks zero credit.
        from repro.reliability import air_condition

        counter.record(8766.0, air_condition(205.0, 0.90), utilization=1.0)
        guard = OverclockGuard(
            wearout=counter,
            overclocked_condition=overclocked,
            nominal_condition=nominal,
            stability=None,
        )
        # Allow a red-band stability envelope for this test.
        from repro.reliability import StabilityModel

        guard.stability = StabilityModel(stable_margin=1.30, crash_margin=1.40)
        decision = guard.decide(1.28)
        assert decision.granted_ratio == pytest.approx(1.23)
        assert decision.limited_by == "lifetime"

    def test_validation(self):
        guard = OverclockGuard()
        with pytest.raises(ConfigurationError):
            guard.decide(0.9)


class TestVMTraceGenerator:
    def test_reproducible(self):
        first = VMTraceGenerator(rate_per_hour=50.0, seed=7).trace(86_400.0)
        second = VMTraceGenerator(rate_per_hour=50.0, seed=7).trace(86_400.0)
        assert [(a.arrival_time, a.spec.vcores) for a in first] == [
            (a.arrival_time, a.spec.vcores) for a in second
        ]

    def test_rate_approximately_met(self):
        trace = VMTraceGenerator(rate_per_hour=100.0, seed=1).trace(86_400.0)
        assert len(trace) == pytest.approx(2400, rel=0.1)

    def test_size_mix_dominated_by_small(self):
        trace = VMTraceGenerator(rate_per_hour=200.0, seed=2).trace(86_400.0)
        small = sum(1 for a in trace if a.spec.vcores <= 4)
        assert small / len(trace) > 0.6

    def test_lifetimes_bimodal(self):
        """Most VMs are short, but long-lived VMs own most core-hours."""
        trace = VMTraceGenerator(rate_per_hour=200.0, seed=3).trace(86_400.0)
        short = [a for a in trace if a.lifetime_s < 3600.0]
        long_lived = [a for a in trace if a.lifetime_s > 86_400.0]
        assert len(short) > len(long_lived)
        horizon = 30 * 86_400.0
        long_hours = core_hours(long_lived, horizon)
        short_hours = core_hours(short, horizon)
        assert long_hours > short_hours

    def test_diurnal_modulation_changes_density(self):
        flat = VMTraceGenerator(rate_per_hour=100.0, seed=4)
        wavy = VMTraceGenerator(rate_per_hour=100.0, seed=4, diurnal_amplitude=0.8)
        flat_trace = flat.trace(86_400.0)
        wavy_trace = wavy.trace(86_400.0)

        def morning_fraction(trace):
            morning = sum(1 for a in trace if (a.arrival_time % 86_400) < 43_200)
            return morning / len(trace)

        # Sine peaks in the first half-day: the wavy trace skews earlier.
        assert morning_fraction(wavy_trace) > morning_fraction(flat_trace) + 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VMTraceGenerator(rate_per_hour=0.0)
        with pytest.raises(ConfigurationError):
            VMTraceGenerator(rate_per_hour=1.0, diurnal_amplitude=1.5)
        with pytest.raises(ConfigurationError):
            VMTraceGenerator(rate_per_hour=1.0).trace(0.0)


class TestCLI:
    def test_list(self):
        listing = list_experiments()
        for name in EXPERIMENTS:
            assert name in listing

    def test_run_single(self):
        buffer = io.StringIO()
        assert run(["table3"], stream=buffer) == 0
        assert "Max turbo" in buffer.getvalue()

    def test_run_all_fast(self):
        buffer = io.StringIO()
        assert run(["all"], stream=buffer) == 0
        output = buffer.getvalue()
        assert "Table VI" in output
        assert "STREAM" in output

    def test_unknown_experiment(self):
        buffer = io.StringIO()
        assert run(["fig99"], stream=buffer) == 2

    def test_default_lists(self):
        buffer = io.StringIO()
        assert run([], stream=buffer) == 0
        assert "Available experiments" in buffer.getvalue()


class TestSeedValidation:
    """CLI --seed must reject junk with a clear error and exit code 2."""

    def test_parse_seed_accepts_non_negative_integers(self):
        from repro.cli import parse_seed

        assert parse_seed("0") == 0
        assert parse_seed("42") == 42

    def test_parse_seed_rejects_negative(self):
        from repro.cli import parse_seed
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="non-negative"):
            parse_seed("-3")

    def test_parse_seed_rejects_non_integer(self):
        from repro.cli import parse_seed
        from repro.errors import ReproError

        for junk in ("1.5", "seven", "", "0x10"):
            with pytest.raises(ReproError, match="base-10 integer"):
                parse_seed(junk)

    def test_main_exits_2_with_message_on_bad_seed(self, capsys):
        from repro.cli import main

        assert main(["faults", "crash-storm", "--seed", "-1"]) == 2
        captured = capsys.readouterr()
        assert "error: --seed must be non-negative" in captured.err

    def test_main_exits_2_on_non_integer_seed(self, capsys):
        from repro.cli import main

        assert main(["faults", "crash-storm", "--seed", "two"]) == 2
        assert "base-10 integer" in capsys.readouterr().err
