"""Power-delivery tree: shape validation, breaker trip curves, rollup,
and bit-equivalence of the vectorized path with the scalar one."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power import (
    Breaker,
    BreakerCurve,
    DeliveryLevel,
    DeliveryNode,
    PowerDeliveryHierarchy,
    build_uniform_hierarchy,
)
from repro.vector import VectorizedBudgetRollup


def small_tree() -> PowerDeliveryHierarchy:
    nodes = [
        DeliveryNode("substation", DeliveryLevel.SUBSTATION, 4000.0, 1.1),
        DeliveryNode("ups-0", DeliveryLevel.UPS, 3000.0, 1.1, parent="substation"),
        DeliveryNode("row-0", DeliveryLevel.ROW, 2000.0, 1.2, parent="ups-0"),
    ]
    for rack in range(2):
        rack_name = f"rack-{rack}"
        nodes.append(
            DeliveryNode(rack_name, DeliveryLevel.RACK_PDU, 800.0, 1.25, parent="row-0")
        )
        for host in range(2):
            nodes.append(
                DeliveryNode(
                    f"{rack_name}/h{host}", DeliveryLevel.HOST, 400.0, parent=rack_name
                )
            )
    return PowerDeliveryHierarchy(nodes)


class TestTreeValidation:
    def test_budget_is_rated_times_oversubscription(self):
        node = DeliveryNode("n", DeliveryLevel.ROW, 2000.0, 1.25, parent="u")
        assert node.budget_watts == pytest.approx(2500.0)

    def test_rejects_undersubscription(self):
        with pytest.raises(ConfigurationError):
            DeliveryNode("n", DeliveryLevel.ROW, 2000.0, 0.9, parent="u")

    def test_rejects_nonpositive_rating(self):
        with pytest.raises(ConfigurationError):
            DeliveryNode("n", DeliveryLevel.ROW, 0.0, parent="u")

    def test_rejects_two_roots(self):
        with pytest.raises(ConfigurationError):
            PowerDeliveryHierarchy(
                [
                    DeliveryNode("a", DeliveryLevel.SUBSTATION, 100.0),
                    DeliveryNode("b", DeliveryLevel.SUBSTATION, 100.0),
                ]
            )

    def test_rejects_parent_at_wrong_level(self):
        with pytest.raises(ConfigurationError):
            PowerDeliveryHierarchy(
                [
                    DeliveryNode("sub", DeliveryLevel.SUBSTATION, 100.0),
                    DeliveryNode("row", DeliveryLevel.ROW, 50.0, parent="sub"),
                ]
            )

    def test_rejects_child_rated_above_parent(self):
        with pytest.raises(ConfigurationError):
            PowerDeliveryHierarchy(
                [
                    DeliveryNode("sub", DeliveryLevel.SUBSTATION, 100.0),
                    DeliveryNode("ups", DeliveryLevel.UPS, 200.0, parent="sub"),
                ]
            )

    def test_lineage_and_ancestors(self):
        tree = small_tree()
        assert list(tree.ancestors("rack-0/h1")) == [
            "rack-0",
            "row-0",
            "ups-0",
            "substation",
        ]
        assert tree.lineage("rack-0/h1")[0] == "rack-0/h1"
        assert set(tree.subtree_hosts("rack-1")) == {"rack-1/h0", "rack-1/h1"}
        assert tree.hosts == sorted(tree.hosts)


class TestBreakerCurve:
    def test_trip_time_matches_pinned_2x_point(self):
        curve = BreakerCurve(trip_seconds_at_2x=8.0)
        assert curve.trip_time_s(2.0) == pytest.approx(8.0)
        # Milder overloads are tolerated longer, per I²t.
        assert curve.trip_time_s(1.5) > curve.trip_time_s(2.0)
        assert curve.trip_time_s(1.0) == float("inf")

    def test_thermal_trip_integrates_over_ticks(self):
        breaker = Breaker(BreakerCurve(trip_seconds_at_2x=8.0))
        tripped_at = None
        for tick in range(20):
            if breaker.observe(float(tick), 1.0, 200.0, 100.0):
                tripped_at = float(tick)
                break
        # 2x overload accumulates 3 heat/s against a threshold of 24.
        assert tripped_at == pytest.approx(7.0)

    def test_instant_magnetic_trip(self):
        breaker = Breaker()
        assert breaker.observe(0.0, 1.0, 301.0, 100.0)
        assert breaker.tripped_at_s == 0.0

    def test_cooling_resets_partial_heat(self):
        curve = BreakerCurve(trip_seconds_at_2x=8.0, cooling_per_second=0.05)
        breaker = Breaker(curve)
        breaker.observe(0.0, 5.0, 200.0, 100.0)  # 15 of 24 heat
        assert 0 < breaker.heat < curve.heat_threshold
        for tick in range(20):
            breaker.observe(5.0 + tick, 1.0, 50.0, 100.0)
        assert breaker.heat == 0.0
        assert not breaker.tripped

    def test_trip_latches_until_reset(self):
        breaker = Breaker()
        assert breaker.observe(0.0, 1.0, 400.0, 100.0)
        assert not breaker.observe(1.0, 1.0, 400.0, 100.0)  # no re-trip
        breaker.reset()
        assert not breaker.tripped
        assert breaker.observe(2.0, 1.0, 400.0, 100.0)


class TestRollupAndTrips:
    def test_rollup_sums_subtrees(self):
        tree = small_tree()
        draws = {"rack-0/h0": 100.0, "rack-0/h1": 150.0, "rack-1/h0": 200.0}
        rolled = tree.rollup(draws)
        assert rolled["rack-0"] == pytest.approx(250.0)
        assert rolled["rack-1"] == pytest.approx(200.0)
        assert rolled["row-0"] == pytest.approx(450.0)
        assert rolled["substation"] == pytest.approx(450.0)

    def test_tripped_row_kills_all_hosts_below(self):
        # A tree where the row feed is the unique thin link: racks and
        # hosts stay inside their ratings while the row overloads.
        nodes = [
            DeliveryNode("substation", DeliveryLevel.SUBSTATION, 4000.0),
            DeliveryNode("ups-0", DeliveryLevel.UPS, 3000.0, parent="substation"),
            DeliveryNode("row-0", DeliveryLevel.ROW, 900.0, parent="ups-0"),
            DeliveryNode("rack-0", DeliveryLevel.RACK_PDU, 800.0, parent="row-0"),
            DeliveryNode("rack-1", DeliveryLevel.RACK_PDU, 800.0, parent="row-0"),
            DeliveryNode("rack-0/h0", DeliveryLevel.HOST, 400.0, parent="rack-0"),
            DeliveryNode("rack-0/h1", DeliveryLevel.HOST, 400.0, parent="rack-0"),
            DeliveryNode("rack-1/h0", DeliveryLevel.HOST, 400.0, parent="rack-1"),
            DeliveryNode("rack-1/h1", DeliveryLevel.HOST, 400.0, parent="rack-1"),
        ]
        tree = PowerDeliveryHierarchy(nodes)
        draws = {name: 200.0 for name in tree.hosts}  # row at 800/900
        assert tree.observe_breakers(0.0, 1.0, draws) == []
        surged = {name: 390.0 for name in tree.hosts}
        # Row at 1560/900 (ratio 1.73, thermal); racks at 780/800 and
        # hosts at 390/400 stay inside rating.
        newly = []
        for tick in range(30):
            newly += tree.observe_breakers(float(tick), 1.0, surged)
            if newly:
                break
        assert newly == ["row-0"]
        assert set(tree.dead_hosts()) == set(tree.hosts)

    def test_hosts_under_tripped_ancestor_stop_integrating(self):
        tree = small_tree()
        tree.nodes["rack-0"].breaker.tripped_at_s = 0.0
        # Per the observe_breakers contract the caller zeroes dead
        # hosts' draws; the live rack stays healthy, and the dead rack's
        # subtree is skipped rather than cascading.
        draws = {"rack-0/h0": 0.0, "rack-0/h1": 0.0, "rack-1/h0": 300.0, "rack-1/h1": 300.0}
        assert tree.observe_breakers(1.0, 1.0, draws) == []
        assert tree.dead_hosts() == ["rack-0/h0", "rack-0/h1"]


class TestVectorEquivalence:
    @pytest.fixture()
    def uniform(self):
        return build_uniform_hierarchy(hosts_per_rack=4, racks_per_row=3, rows_per_ups=2)

    def seeded_draws(self, tree, seed=7, scale=1.0):
        rng = np.random.default_rng(seed)
        return {
            name: float(rng.uniform(50.0, 420.0)) * scale for name in tree.hosts
        }

    def test_rollup_matches_scalar(self, uniform):
        vector = VectorizedBudgetRollup(uniform)
        draw_map = self.seeded_draws(uniform)
        draws = vector.draw_vector(draw_map)
        scalar = uniform.rollup(draw_map)
        for index, name in enumerate(vector.interior):
            assert vector.rollup(draws)[index] == pytest.approx(
                scalar[name], rel=1e-12
            )

    def test_worst_headroom_matches_scalar(self, uniform):
        vector = VectorizedBudgetRollup(uniform)
        draw_map = self.seeded_draws(uniform)
        assert vector.worst_headroom_fraction(
            vector.draw_vector(draw_map)
        ) == pytest.approx(uniform.worst_headroom_fraction(draw_map), rel=1e-12)

    def test_enforce_restores_every_budget(self, uniform):
        vector = VectorizedBudgetRollup(uniform)
        draws = vector.draw_vector(self.seeded_draws(uniform, scale=3.0))
        assert vector.over_budget(draws)  # genuinely overloaded going in
        scaled = draws * vector.enforce(draws)
        assert vector.over_budget(scaled) == []
        assert np.all(vector.enforce(draws) <= 1.0)

    def test_enforce_is_identity_for_healthy_fleet(self, uniform):
        vector = VectorizedBudgetRollup(uniform)
        draws = vector.draw_vector({name: 50.0 for name in uniform.hosts})
        assert np.array_equal(vector.enforce(draws), np.ones(len(uniform.hosts)))

    def test_draw_vector_rejects_unknown_host(self, uniform):
        vector = VectorizedBudgetRollup(uniform)
        with pytest.raises(ConfigurationError):
            vector.draw_vector({"no-such-host": 1.0})
