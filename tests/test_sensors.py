"""Sensor-channel faults and robust fusion (repro.telemetry.sensors)."""

from __future__ import annotations

import pytest

from repro.errors import SensorError
from repro.telemetry import (
    FaultySensor,
    PlausibilityBounds,
    ReadingStatus,
    SensorFault,
    SensorFaultMode,
    SensorFusion,
    VirtualSensor,
    tj_plausibility_bounds,
)
from repro.thermal.junction import JunctionModel


class _Source:
    """Mutable ground truth the sensors sample."""

    def __init__(self, value: float = 50.0) -> None:
        self.value = value

    def __call__(self) -> float:
        return self.value


def make_channel(name="tj0", value=50.0, seed=0):
    source = _Source(value)
    return source, FaultySensor(VirtualSensor(name, source), seed=seed)


class TestVirtualSensor:
    def test_sequence_numbers_are_monotonic(self):
        sensor = VirtualSensor("tj", lambda: 42.0)
        seqs = [sensor.sample(float(t)).seq for t in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_requires_name(self):
        with pytest.raises(SensorError):
            VirtualSensor("", lambda: 0.0)


class TestFaultValidation:
    def test_noise_needs_positive_sigma(self):
        with pytest.raises(SensorError):
            SensorFault(SensorFaultMode.NOISE, magnitude=0.0)

    def test_spike_needs_positive_amplitude(self):
        with pytest.raises(SensorError):
            SensorFault(SensorFaultMode.SPIKE, magnitude=-1.0)

    def test_lag_needs_depth(self):
        with pytest.raises(SensorError):
            SensorFault(SensorFaultMode.LAG, magnitude=0.0)

    def test_lag_bounded_by_buffer(self):
        _, channel = make_channel()
        with pytest.raises(SensorError):
            channel.inject(
                SensorFault(
                    SensorFaultMode.LAG,
                    magnitude=FaultySensor.MAX_LAG_SAMPLES + 1,
                )
            )


class TestFaultTransforms:
    def test_stuck_freezes_value_but_seq_advances(self):
        source, channel = make_channel()
        first = channel.sample(0.0)
        channel.inject(SensorFault(SensorFaultMode.STUCK))
        source.value = 99.0
        later = channel.sample(1.0)
        assert later.value == first.value == 50.0
        assert later.seq > first.seq

    def test_dropout_reemits_last_sample_with_stale_seq(self):
        source, channel = make_channel()
        first = channel.sample(0.0)
        channel.inject(SensorFault(SensorFaultMode.DROPOUT))
        source.value = 99.0
        held = channel.sample(1.0)
        assert held.seq == first.seq
        assert held.value == first.value

    def test_dropout_before_any_sample_emits_seq_zero(self):
        _, channel = make_channel()
        channel.inject(SensorFault(SensorFaultMode.DROPOUT))
        assert channel.sample(0.0).seq == 0

    def test_lag_returns_old_values(self):
        source, channel = make_channel()
        for t in range(5):
            source.value = float(t)
            channel.sample(float(t))
        channel.inject(SensorFault(SensorFaultMode.LAG, magnitude=3))
        source.value = 100.0
        lagged = channel.sample(5.0)
        # History now holds [0..4, 100]; three samples back is value 2.
        assert lagged.value == pytest.approx(2.0)
        assert lagged.seq == 6

    def test_noise_is_deterministic_per_seed(self):
        values = []
        for _ in range(2):
            source, channel = make_channel(seed=7)
            channel.inject(SensorFault(SensorFaultMode.NOISE, magnitude=5.0))
            values.append([channel.sample(float(t)).value for t in range(10)])
        assert values[0] == values[1]
        assert any(v != 50.0 for v in values[0])

    def test_different_seeds_draw_different_noise(self):
        runs = []
        for seed in (1, 2):
            _, channel = make_channel(seed=seed)
            channel.inject(SensorFault(SensorFaultMode.NOISE, magnitude=5.0))
            runs.append([channel.sample(float(t)).value for t in range(10)])
        assert runs[0] != runs[1]

    def test_spike_amplitude_and_determinism(self):
        source, channel = make_channel(seed=3)
        channel.inject(
            SensorFault(SensorFaultMode.SPIKE, magnitude=40.0, spike_probability=1.0)
        )
        sample = channel.sample(0.0)
        assert abs(sample.value - 50.0) == pytest.approx(40.0)

    def test_clear_restores_truth(self):
        source, channel = make_channel()
        channel.sample(0.0)
        channel.inject(SensorFault(SensorFaultMode.STUCK))
        source.value = 75.0
        assert channel.sample(1.0).value == 50.0
        channel.clear()
        assert channel.sample(2.0).value == 75.0


class TestPlausibility:
    def test_bounds_reject_inverted(self):
        with pytest.raises(SensorError):
            PlausibilityBounds(10.0, 0.0)

    def test_tj_bounds_span_reference_to_max_power(self):
        junction = JunctionModel(reference_temp_c=34.0, thermal_resistance_c_per_w=0.08)
        bounds = tj_plausibility_bounds(junction, max_power_watts=305.0, margin_c=5.0)
        assert bounds.lower == pytest.approx(29.0)
        assert bounds.upper == pytest.approx(34.0 + 0.08 * 305.0 + 5.0)
        assert bounds.contains(34.0)
        assert not bounds.contains(200.0)


class TestSensorFusion:
    def test_median_outvotes_single_stuck_channel(self):
        sources, channels = [], []
        for i in range(3):
            source, channel = make_channel(name=f"tj{i}", seed=i)
            sources.append(source)
            channels.append(channel)
        fusion = SensorFusion(channels, ewma_alpha=1.0)
        fusion.read(0.0)
        channels[0].inject(SensorFault(SensorFaultMode.STUCK))
        for source in sources:
            source.value = 112.0
        reading = fusion.read(1.0)
        assert reading.healthy
        assert reading.raw_value == pytest.approx(112.0)

    def test_stale_channels_are_rejected(self):
        sources, channels = [], []
        for i in range(3):
            source, channel = make_channel(name=f"tj{i}", seed=i)
            sources.append(source)
            channels.append(channel)
        fusion = SensorFusion(channels)
        fusion.read(0.0)
        channels[0].inject(SensorFault(SensorFaultMode.DROPOUT))
        reading = fusion.read(1.0)
        assert ("tj0", "stale") in reading.rejected
        assert reading.healthy_channels == 2

    def test_total_dropout_loses_quorum(self):
        channels = [make_channel(name=f"tj{i}")[1] for i in range(3)]
        fusion = SensorFusion(channels)
        fusion.read(0.0)
        for channel in channels:
            channel.inject(SensorFault(SensorFaultMode.DROPOUT))
        reading = fusion.read(1.0)
        assert reading.status is ReadingStatus.NO_QUORUM
        assert reading.value is None
        assert not reading.healthy

    def test_implausible_samples_are_rejected(self):
        source, channel = make_channel()
        fusion = SensorFusion(
            [channel], bounds=PlausibilityBounds(0.0, 100.0), min_quorum=1
        )
        source.value = 500.0
        reading = fusion.read(0.0)
        assert reading.status is ReadingStatus.NO_QUORUM
        assert ("tj0", "implausible") in reading.rejected

    def test_ewma_smooths_steps(self):
        source, channel = make_channel(value=0.0)
        fusion = SensorFusion([channel], ewma_alpha=0.5, min_quorum=1)
        fusion.read(0.0)
        source.value = 100.0
        reading = fusion.read(1.0)
        assert reading.raw_value == pytest.approx(100.0)
        assert reading.value == pytest.approx(50.0)

    def test_duplicate_channel_names_rejected(self):
        channels = [make_channel(name="tj")[1] for _ in range(2)]
        with pytest.raises(SensorError):
            SensorFusion(channels)

    def test_quorum_must_be_achievable(self):
        channel = make_channel()[1]
        with pytest.raises(SensorError):
            SensorFusion([channel], min_quorum=2)
