"""Tests for the STREAM (Fig. 10) and VGG (Fig. 11) models."""

import pytest

from repro.errors import ConfigurationError
from repro.silicon import B1, B2, B3, B4, OC1, OC3
from repro.silicon.gpu import GPU_BASE, OCG1, OCG2, OCG3
from repro.workloads import stream, vgg


class TestStream:
    def test_b4_gain_about_17_percent(self):
        assert stream.bandwidth_gain_over_b1(B4) == pytest.approx(0.17, abs=0.03)

    def test_oc3_gain_about_24_percent(self):
        assert stream.bandwidth_gain_over_b1(OC3) == pytest.approx(0.24, abs=0.03)

    def test_core_and_cache_alone_help_some(self):
        """Faster core/cache serve memory requests faster (paper claim)."""
        assert 0.0 < stream.bandwidth_gain_over_b1(B2) < 0.10
        assert stream.bandwidth_gain_over_b1(B3) > stream.bandwidth_gain_over_b1(B2)
        assert stream.bandwidth_gain_over_b1(OC1) > stream.bandwidth_gain_over_b1(B2)

    def test_memory_clock_is_biggest_lever(self):
        mem_gain = stream.bandwidth_gain_over_b1(B4) - stream.bandwidth_gain_over_b1(B3)
        core_gain = stream.bandwidth_gain_over_b1(B2)
        assert mem_gain > core_gain

    def test_kernel_ordering(self):
        """copy >= scale >= add >= triad at any config."""
        for config in (B1, OC3):
            bandwidths = [stream.bandwidth_mb_s(k, config) for k in stream.STREAM_KERNELS]
            assert bandwidths == sorted(bandwidths, reverse=True)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            stream.bandwidth_mb_s("multiply", B1)

    def test_sweep_covers_all_cells(self):
        results = stream.sweep([B1, B2, OC3])
        assert len(results) == 3 * 4
        assert {r.config for r in results} == {"B1", "B2", "OC3"}


class TestVGG:
    def test_all_models_improve_under_full_overclock(self):
        for model in vgg.VGG_MODELS:
            assert model.time_scale(OCG3) < 1.0

    def test_max_improvement_near_15_percent(self):
        best = min(model.time_scale(OCG3) for model in vgg.VGG_MODELS)
        assert best == pytest.approx(0.86, abs=0.03)

    def test_vgg16b_saturates_after_ocg2(self):
        """The batch-optimized model gains nothing from more GPU-memory clock."""
        ocg2 = vgg.VGG16B.time_scale(OCG2)
        ocg3 = vgg.VGG16B.time_scale(OCG3)
        assert ocg3 == pytest.approx(ocg2, abs=0.005)

    def test_vgg16b_gains_mostly_from_core(self):
        ocg1_gain = 1.0 - vgg.VGG16B.time_scale(OCG1)
        ocg2_extra = vgg.VGG16B.time_scale(OCG1) - vgg.VGG16B.time_scale(OCG2)
        assert ocg1_gain > 4 * ocg2_extra

    def test_time_monotone_across_configs(self):
        for model in vgg.VGG_MODELS:
            times = [model.time_scale(c) for c in (GPU_BASE, OCG1, OCG2, OCG3)]
            assert times == sorted(times, reverse=True), model.name

    def test_epoch_seconds_scales_base_time(self):
        assert vgg.VGG16.epoch_seconds(GPU_BASE) == vgg.VGG16.base_epoch_seconds
        assert vgg.VGG16.epoch_seconds(OCG3) < vgg.VGG16.base_epoch_seconds

    def test_sweep_power_shape(self):
        """Power rises with overclock; OCG1->OCG3 about +10%; base ~193 W."""
        runs = {(r.model, r.config): r for r in vgg.sweep([GPU_BASE, OCG1, OCG2, OCG3])}
        base = runs[("VGG16B", "Base")].power_watts
        ocg1 = runs[("VGG16B", "OCG1")].power_watts
        ocg3 = runs[("VGG16B", "OCG3")].power_watts
        assert base == pytest.approx(193.0, abs=8.0)
        assert 1.05 < ocg3 / ocg1 < 1.18
        assert 1.10 < ocg3 / base < 1.30

    def test_lookup(self):
        assert vgg.model_by_name("VGG19") is vgg.VGG19
        with pytest.raises(ConfigurationError):
            vgg.model_by_name("ResNet")
