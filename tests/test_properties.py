"""Property-based tests on cross-module invariants.

These complement the per-module tests with randomized checks of the
conservation laws and monotonicities the models must obey regardless of
parameters.
"""

from enum import IntEnum

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Host, PlacementEngine, PlacementPolicy, VMInstance, VMSpec
from repro.emergency.ladder import StagedLadder
from repro.errors import PlacementError
from repro.reliability import CompositeLifetimeModel, OperatingCondition
from repro.silicon import B2, FrequencyConfig, ServerPowerModel
from repro.sim import OpenLoopSource, Simulator
from repro.thermal import TWO_PHASE_IMMERSION
from repro.workloads import BottleneckProfile, ServerVM


# ----------------------------------------------------------------------
# Placement: capacity conservation
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=12), st.floats(min_value=1, max_value=32)),
        min_size=1,
        max_size=25,
    ),
    st.sampled_from(list(PlacementPolicy)),
)
def test_placement_never_oversubscribes_beyond_ratio(vm_shapes, policy):
    hosts = [
        Host(f"h{i}", cooling=TWO_PHASE_IMMERSION, oversubscription_ratio=1.2)
        for i in range(3)
    ]
    engine = PlacementEngine(hosts, policy)
    placed = 0
    for index, (vcores, memory) in enumerate(vm_shapes):
        vm = VMInstance(f"vm{index}", VMSpec(vcores, memory))
        try:
            engine.place(vm)
            placed += 1
        except PlacementError:
            continue
    for host in hosts:
        assert host.committed_vcores <= host.vcore_capacity
        assert host.committed_memory_gb <= host.spec.memory.capacity_gb + 1e-9
    assert engine.stats().vms == placed


# ----------------------------------------------------------------------
# Queueing: work conservation in the processor-sharing VM
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=50, max_value=800),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_ps_vm_conserves_work(qps, vcores, seed):
    simulator = Simulator(seed=seed)
    vm = ServerVM(simulator, "vm", vcores=vcores)
    OpenLoopSource(simulator, vm.submit, rate_per_second=qps)
    simulator.run(until=30.0)
    vm.counter_snapshot()  # forces a final telemetry advance
    # Busy time can never exceed capacity and must be positive under load.
    assert 0.0 < vm.cumulative_busy_seconds <= 30.0 * vcores + 1e-6
    # Completions never exceed submissions.
    assert vm.completed_requests + vm.in_flight <= qps * 40


# ----------------------------------------------------------------------
# Power model: monotone in every argument
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=0, max_value=28),
    st.floats(min_value=3.1, max_value=4.1),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_server_power_monotone(busy_cores, core_ghz, memory_activity):
    model = ServerPowerModel()
    config = FrequencyConfig(
        "x", core_ghz=core_ghz, voltage_offset_mv=0.0, turbo_enabled=None,
        llc_ghz=2.4, memory_ghz=2.4,
    )
    base = model.watts(config, busy_cores, memory_activity)
    more_cores = model.watts(config, min(28.0, busy_cores + 1), memory_activity)
    faster = FrequencyConfig(
        "y", core_ghz=min(4.5, core_ghz + 0.2), voltage_offset_mv=0.0,
        turbo_enabled=None, llc_ghz=2.4, memory_ghz=2.4,
    )
    assert more_cores >= base - 1e-9
    assert model.watts(faster, busy_cores, memory_activity) >= base - 1e-9
    assert base >= model.idle_watts - 1e-9


# ----------------------------------------------------------------------
# Reliability: damage-rate additivity
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=40, max_value=105),
    st.floats(min_value=10, max_value=39),
    st.floats(min_value=0.85, max_value=1.05),
)
def test_composite_lifetime_bounded_by_modes(tj_max, tj_min, voltage):
    model = CompositeLifetimeModel()
    condition = OperatingCondition(tj_max, tj_min, voltage)
    total = model.lifetime_years(condition)
    shortest = min(mode.lifetime_years(condition) for mode in model.modes)
    count = len(model.modes)
    assert total <= shortest + 1e-9
    assert total >= shortest / count - 1e-9


# ----------------------------------------------------------------------
# Workloads: speedup bounds
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=0, max_value=0.6),
    st.floats(min_value=0, max_value=0.3),
    st.floats(min_value=0, max_value=0.1),
)
def test_workload_speedup_bounded_by_clock_ratio(core, memory, io):
    profile = BottleneckProfile(core=core, memory=memory, io=io)
    from repro.silicon import OC3

    speedups = OC3.speedups_over(B2)
    max_ratio = max(speedups.values())
    scale = profile.time_scale(speedups)
    assert 1.0 / max_ratio - 1e-9 <= scale <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# Silicon: V/F curve monotonicity
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=5.0),
    st.floats(min_value=0.0, max_value=1.5),
)
def test_vf_voltage_and_power_monotone_in_frequency(frequency, step):
    """Voltage and dynamic power must be non-decreasing in frequency —
    including the extrapolated regions past the measured anchors."""
    from repro.silicon import DynamicPowerModel, w3175x_vf_curve

    curve = w3175x_vf_curve()
    lower_v = curve.voltage_at(frequency)
    upper_v = curve.voltage_at(frequency + step)
    assert upper_v >= lower_v - 1e-12

    dynamic = DynamicPowerModel(
        ref_watts=175.0, ref_frequency_ghz=3.4, ref_voltage_v=0.9
    )
    lower_p = dynamic.watts(frequency, lower_v)
    upper_p = dynamic.watts(frequency + step, upper_v) if step > 0 else lower_p
    assert upper_p >= lower_p - 1e-9


# ----------------------------------------------------------------------
# Thermal: junction temperature monotone in power, every cooling tech
# ----------------------------------------------------------------------
def _all_junction_models():
    from repro.thermal import FC_3284, HFE_7000
    from repro.thermal.junction import (
        BECPlacement,
        air_junction_model,
        immersion_junction_model,
    )

    models = [
        air_junction_model(35.0, 0.21, air_rise_c=10.0),
        air_junction_model(27.0, 0.22),
    ]
    for fluid in (FC_3284, HFE_7000):
        for bec in BECPlacement:
            models.append(immersion_junction_model(fluid, bec))
    return models


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1000.0),
    st.floats(min_value=0.0, max_value=500.0),
)
def test_junction_temperature_monotone_in_power(power, extra):
    """Tj must be non-decreasing in power for every cooling technology,
    and never read below the coolant reference temperature."""
    for junction in _all_junction_models():
        cooler = junction.junction_temp_c(power)
        hotter = junction.junction_temp_c(power + extra)
        assert hotter >= cooler - 1e-9
        assert cooler >= junction.reference_temp_c - 1e-9


# ----------------------------------------------------------------------
# Tank pool: monotone in condenser capacity, bounded by saturation
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=3000.0),  # dissipated watts
            st.floats(min_value=1.0, max_value=300.0),  # step span, s
        ),
        min_size=1,
        max_size=12,
    ),
    st.floats(min_value=50.0, max_value=1400.0),  # weaker condenser, W
    st.floats(min_value=0.0, max_value=1350.0),  # extra capacity, W
)
def test_tank_fluid_monotone_non_increasing_in_condenser_capacity(
    heat_steps, capacity, extra
):
    """For any fixed heat profile, a stronger condenser can never leave
    the pool hotter — the emergency ladder's thresholds rely on this."""
    from repro.thermal import FC_3284, TankFluidRC

    weaker = TankFluidRC(FC_3284, 8_000.0, 1400.0)
    stronger = TankFluidRC(FC_3284, 8_000.0, 1400.0)
    weaker.set_capacity(0.0, capacity)
    stronger.set_capacity(0.0, capacity + extra)
    now = 0.0
    for watts, span in heat_steps:
        weaker.set_heat(now, watts)
        stronger.set_heat(now, watts)
        now += span
        assert stronger.sample(now) <= weaker.sample(now) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5000.0),  # dissipated watts
            st.floats(min_value=0.0, max_value=2000.0),  # condenser watts
            st.floats(min_value=0.0, max_value=600.0),  # step span, s
        ),
        min_size=1,
        max_size=15,
    )
)
def test_tank_fluid_never_exceeds_saturation_at_one_atm(steps):
    """The liquid reads at most its boiling point under any schedule;
    the excess shows up as non-negative superheat instead."""
    from repro.thermal import FC_3284, TankFluidRC

    pool = TankFluidRC(FC_3284, 5_000.0, 1000.0)
    now = 0.0
    for watts, capacity, span in steps:
        pool.set_heat(now, watts)
        pool.set_capacity(now, capacity)
        now += span
        assert pool.sample(now) <= pool.saturation_c + 1e-9
        assert pool.superheat_c >= 0.0
        assert pool.fluid_temp_c == pool.sample(now)


# ----------------------------------------------------------------------
# Stability model: ramp monotone, continuous at the margin, crash iff
# at/past the crash margin
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=1.40),
    st.floats(min_value=0.0, max_value=0.10),
    st.floats(min_value=0.0, max_value=0.05),
)
def test_stability_rates_monotone_non_decreasing_in_ratio(ratio, step, background):
    from repro.reliability import StabilityModel

    model = StabilityModel(background_error_rate_per_hour=background)
    assert model.correctable_error_rate_per_hour(
        ratio
    ) <= model.correctable_error_rate_per_hour(ratio + step)
    assert model.crash_rate_per_hour(ratio) <= model.crash_rate_per_hour(ratio + step)


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=0.05),
    st.floats(min_value=1e-12, max_value=1e-9),
)
def test_stability_error_rate_continuous_at_the_stable_margin(background, epsilon):
    """The margin is where errors *start*, not a cliff: the rate just
    past it approaches the background floor from above."""
    from repro.reliability import StabilityModel

    model = StabilityModel(background_error_rate_per_hour=background)
    at_margin = model.correctable_error_rate_per_hour(model.stable_margin)
    just_past = model.correctable_error_rate_per_hour(model.stable_margin + epsilon)
    assert at_margin == background
    assert just_past >= at_margin
    assert just_past - at_margin < 1e-6


@settings(max_examples=80, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=1.50),
    st.floats(min_value=0.0, max_value=0.05),
)
def test_crash_rate_infinite_exactly_when_the_part_crashes(ratio, background):
    import math

    from repro.reliability import StabilityModel

    model = StabilityModel(background_error_rate_per_hour=background)
    assert math.isinf(model.crash_rate_per_hour(ratio)) == model.crashes(ratio)


# ----------------------------------------------------------------------
# Staged ladders: escalation / hysteresis / re-arm invariants
# ----------------------------------------------------------------------
class _LadderStage(IntEnum):
    NORMAL = 0
    WARN = 1
    DEGRADE = 2
    SHED = 3


_LADDER_THRESHOLDS = {
    _LadderStage.WARN: 0.6,
    _LadderStage.DEGRADE: 0.3,
    _LadderStage.SHED: 0.0,
}
_LADDER_HYSTERESIS = 0.1
_LADDER_DWELL = 3


def _ladder(fired: list | None = None) -> StagedLadder:
    ladder = StagedLadder(
        _LadderStage,
        _LADDER_THRESHOLDS,
        hysteresis=_LADDER_HYSTERESIS,
        relax_clean_ticks=_LADDER_DWELL,
    )
    if fired is not None:
        for stage in list(_LadderStage)[1:]:
            ladder.register(
                stage,
                engage=lambda s=stage: fired.append(("engage", s)) or "on",
                release=lambda s=stage: fired.append(("release", s)) or "off",
            )
    return ladder


_margins = st.lists(
    st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),
    min_size=1,
    max_size=60,
)


@settings(max_examples=80, deadline=None)
@given(_margins)
def test_ladder_stage_bounded_and_relax_descends_one_rung(margin_trace):
    """Under arbitrary margin traces the stage stays inside the enum,
    escalation may cross rungs, but relaxation steps down exactly one
    rung at a time."""
    ladder = _ladder()
    previous = ladder.stage
    for tick, margin in enumerate(margin_trace):
        stage = ladder.observe(float(tick), margin)
        assert _LadderStage.NORMAL <= stage <= _LadderStage.SHED
        assert stage - previous >= -1  # never skips rungs downward
        previous = stage


@settings(max_examples=80, deadline=None)
@given(_margins)
def test_ladder_fires_every_crossed_rung_exactly_once(margin_trace):
    """Every engage/release action fires once per transition: engages
    and releases interleave per rung, and the net engage-minus-release
    count equals the rung's final engagement state."""
    fired: list = []
    ladder = _ladder(fired)
    for tick, margin in enumerate(margin_trace):
        ladder.observe(float(tick), margin)
    for stage in list(_LadderStage)[1:]:
        engages = sum(1 for kind, s in fired if s == stage and kind == "engage")
        releases = sum(1 for kind, s in fired if s == stage and kind == "release")
        engaged_now = int(ladder.stage >= stage)
        assert engages - releases == engaged_now
        assert engages >= releases


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=2 * _LADDER_DWELL),
    st.floats(min_value=0.0, max_value=0.09),
)
def test_ladder_dwell_is_consecutive_not_cumulative(clean_run, dirty_margin):
    """A clean streak shorter than the dwell, interrupted by one dirty
    tick, never relaxes — hysteresis requires *consecutive* clean
    ticks, so accumulated credit is discarded."""
    ladder = _ladder()
    ladder.observe(0.0, -0.1)  # escalate straight to SHED
    assert ladder.stage is _LadderStage.SHED
    clean = _LADDER_THRESHOLDS[_LadderStage.SHED] + _LADDER_HYSTERESIS
    tick = 1.0
    for _ in range(min(clean_run, _LADDER_DWELL - 1)):
        ladder.observe(tick, clean)
        tick += 1.0
    assert ladder.stage is _LadderStage.SHED
    # One dirty tick (below the SHED clear line of 0.1, at or above
    # the SHED threshold of 0.0) resets the streak without relaxing...
    ladder.observe(tick, dirty_margin)
    assert ladder.stage is _LadderStage.SHED
    # ...so a partial streak afterwards still does not relax.
    for offset in range(_LADDER_DWELL - 1):
        ladder.observe(tick + 1.0 + offset, clean)
    assert ladder.stage is _LadderStage.SHED
    # Only a full consecutive dwell steps down — by exactly one rung.
    ladder.observe(tick + float(_LADDER_DWELL), clean)
    assert ladder.stage is _LadderStage.DEGRADE


@settings(max_examples=60, deadline=None)
@given(_margins)
def test_ladder_rearm_is_bounded(margin_trace):
    """After any history, a margin below the deepest threshold re-arms
    the full ladder in one observe, and a long clean tail fully relaxes
    it in exactly rungs x dwell ticks."""
    ladder = _ladder()
    for tick, margin in enumerate(margin_trace):
        ladder.observe(float(tick), margin)
    base = float(len(margin_trace))
    ladder.observe(base, -0.5)
    assert ladder.stage is _LadderStage.SHED
    clean = _LADDER_THRESHOLDS[_LadderStage.WARN] + _LADDER_HYSTERESIS
    for offset in range(len(_LADDER_THRESHOLDS) * _LADDER_DWELL):
        ladder.observe(base + 1.0 + offset, clean)
    assert ladder.stage is _LadderStage.NORMAL
    assert not ladder.emergency
