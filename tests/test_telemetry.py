"""Tests for counters, time series, percentiles, and power metering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, WorkloadError
from repro.telemetry import (
    CoreCounters,
    LatencyRecorder,
    PowerMeter,
    StateIntegrator,
    TimeSeries,
    percentile,
)


class TestCoreCounters:
    def test_scalable_fraction_matches_accumulation(self):
        counters = CoreCounters()
        counters.accumulate(busy_seconds=10.0, frequency_ghz=3.4, scalable_fraction=0.7)
        snap0 = CoreCounters().snapshot(0.0)
        snap1 = counters.snapshot(10.0)
        delta = snap1.delta(snap0)
        assert delta.scalable_fraction == pytest.approx(0.7)
        assert delta.utilization == pytest.approx(1.0)

    def test_mixed_slices_blend_fractions(self):
        counters = CoreCounters()
        counters.accumulate(5.0, 3.4, 1.0)
        counters.accumulate(5.0, 3.4, 0.0)
        delta = counters.snapshot(10.0).delta(CoreCounters().snapshot(0.0))
        assert delta.scalable_fraction == pytest.approx(0.5)

    def test_idle_window_reports_fully_scalable(self):
        counters = CoreCounters()
        first = counters.snapshot(0.0)
        second = counters.snapshot(10.0)
        delta = second.delta(first)
        assert delta.scalable_fraction == 1.0
        assert delta.utilization == 0.0

    def test_higher_frequency_accumulates_more_cycles(self):
        slow, fast = CoreCounters(), CoreCounters()
        slow.accumulate(1.0, 2.0, 1.0)
        fast.accumulate(1.0, 4.0, 1.0)
        assert fast.snapshot(1.0).aperf == pytest.approx(2 * slow.snapshot(1.0).aperf)

    def test_validation(self):
        counters = CoreCounters()
        with pytest.raises(WorkloadError):
            counters.accumulate(-1.0, 3.4, 0.5)
        with pytest.raises(WorkloadError):
            counters.accumulate(1.0, 3.4, 1.5)
        with pytest.raises(WorkloadError):
            counters.accumulate(1.0, 0.0, 0.5)

    @given(
        st.floats(min_value=0.01, max_value=100),
        st.floats(min_value=0.5, max_value=5.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_scalable_fraction_roundtrips(self, busy, freq, frac):
        counters = CoreCounters()
        counters.accumulate(busy, freq, frac)
        delta = counters.snapshot(busy).delta(CoreCounters().snapshot(0.0))
        assert delta.scalable_fraction == pytest.approx(frac, abs=1e-9)


class TestTimeSeries:
    def test_window_mean_selects_trailing_window(self):
        series = TimeSeries("util")
        for time, value in [(0, 10), (10, 20), (20, 30), (30, 40)]:
            series.record(time, value)
        assert series.window_mean(now=30, window=15) == pytest.approx(35.0)
        assert series.window_mean(now=30, window=100) == pytest.approx(25.0)

    def test_window_mean_empty_returns_none(self):
        series = TimeSeries()
        assert series.window_mean(10.0, 5.0) is None
        series.record(0.0, 1.0)
        assert series.window_mean(100.0, 5.0) is None

    def test_out_of_order_rejected(self):
        series = TimeSeries()
        series.record(10.0, 1.0)
        with pytest.raises(ConfigurationError):
            series.record(5.0, 2.0)

    def test_latest_and_mean(self):
        series = TimeSeries()
        assert series.latest() is None
        assert series.mean() is None
        series.record(1.0, 2.0)
        series.record(2.0, 4.0)
        assert series.latest().value == 4.0
        assert series.mean() == 3.0


class TestStateIntegrator:
    def test_integral_of_steps(self):
        integ = StateIntegrator(initial_value=1.0)
        integ.set(10.0, 3.0)
        integ.finish(20.0)
        # 1.0 for 10 s + 3.0 for 10 s = 40 value-seconds
        assert integ.integral() == pytest.approx(40.0)
        assert integ.time_average() == pytest.approx(2.0)

    def test_backwards_time_rejected(self):
        integ = StateIntegrator()
        integ.set(10.0, 1.0)
        with pytest.raises(ConfigurationError):
            integ.set(5.0, 2.0)

    @given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=10),
                              st.floats(min_value=0, max_value=100)), min_size=1, max_size=20))
    def test_time_average_within_value_range(self, steps):
        integ = StateIntegrator(initial_value=steps[0][1])
        time = 0.0
        values = [steps[0][1]]
        for gap, value in steps:
            time += gap
            integ.set(time, value)
            values.append(value)
        integ.finish(time + 1.0)
        assert min(values) - 1e-9 <= integ.time_average() <= max(values) + 1e-9


class TestLatencyRecorder:
    def test_summary_percentiles(self):
        recorder = LatencyRecorder("test")
        recorder.extend(float(value) for value in range(1, 101))
        summary = recorder.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05, rel=0.01)
        assert summary["p99"] == pytest.approx(99.01, rel=0.01)

    def test_warmup_samples_dropped(self):
        recorder = LatencyRecorder(drop_warmup_before=100.0)
        recorder.record(completion_time=50.0, latency=999.0)
        recorder.record(completion_time=150.0, latency=1.0)
        assert len(recorder) == 1
        assert recorder.dropped_warmup_samples == 1
        assert recorder.mean() == 1.0

    def test_empty_recorder_raises(self):
        with pytest.raises(ConfigurationError):
            LatencyRecorder().mean()

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyRecorder().record(0.0, -1.0)

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101.0)
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)


class TestPowerMeter:
    def test_average_is_time_weighted(self):
        meter = PowerMeter(initial_watts=100.0)
        meter.set_power(90.0, 200.0)  # 100 W for 90 s, then 200 W for 10 s
        meter.finish(100.0)
        assert meter.average_watts() == pytest.approx(110.0)
        assert meter.energy_joules() == pytest.approx(11000.0)

    def test_p99_is_time_weighted_not_event_weighted(self):
        meter = PowerMeter(initial_watts=100.0)
        # Many brief excursions to 500 W totalling 0.5% of the horizon.
        time = 0.0
        for _ in range(5):
            time += 19.9
            meter.set_power(time, 500.0)
            time += 0.1
            meter.set_power(time, 100.0)
        meter.finish(100.0)
        # Excursions cover 0.5 s of 100 s -> P99 should be the base level.
        assert meter.p99_watts() == pytest.approx(100.0)

    def test_p99_catches_sustained_high_power(self):
        meter = PowerMeter(initial_watts=100.0)
        meter.set_power(50.0, 300.0)
        meter.finish(100.0)
        assert meter.p99_watts() == pytest.approx(300.0)

    def test_energy_kwh(self):
        meter = PowerMeter(initial_watts=1000.0)
        meter.finish(3600.0)
        assert meter.energy_kwh() == pytest.approx(1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerMeter().set_power(1.0, -5.0)
