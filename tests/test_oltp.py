"""Tests for the SQL oversubscription latency model (Figure 12)."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.silicon import B2, OC3
from repro.workloads import (
    cores_saved_by_overclocking,
    pcore_sweep,
    sql_p95_latency_ms,
)


class TestFig12Model:
    def test_latency_decreases_with_more_pcores(self):
        points = pcore_sweep(B2, range(10, 17, 2))
        latencies = [p.p95_latency_ms for p in points]
        assert latencies == sorted(latencies, reverse=True)

    def test_paper_crossover_oc3_at_12_matches_b2_at_16(self):
        """The headline Figure 12 result, within ~1%."""
        b2_full = sql_p95_latency_ms(16, B2)
        oc3_reduced = sql_p95_latency_ms(12, OC3)
        assert oc3_reduced.p95_latency_ms == pytest.approx(
            b2_full.p95_latency_ms, rel=0.02
        )

    def test_four_pcores_saved(self):
        assert cores_saved_by_overclocking(OC3, tolerance=0.03) == 4

    def test_heavy_oversubscription_saturates(self):
        point = sql_p95_latency_ms(8, B2)
        assert point.saturated
        assert point.rho > 1.0

    def test_oc3_unsaturates_what_b2_cannot(self):
        b2 = sql_p95_latency_ms(10, B2)
        oc3 = sql_p95_latency_ms(10, OC3)
        assert oc3.p95_latency_ms < b2.p95_latency_ms

    def test_rho_accounting(self):
        point = sql_p95_latency_ms(16, B2)
        # 16 vcores at 0.6 demand on 16 pcores -> rho = 0.6.
        assert point.rho == pytest.approx(0.6)
        assert point.vcores == 16

    def test_saturated_latency_still_monotone(self):
        worse = sql_p95_latency_ms(7, B2)
        bad = sql_p95_latency_ms(8, B2)
        assert worse.p95_latency_ms > bad.p95_latency_ms

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sql_p95_latency_ms(0, B2)
        with pytest.raises(ConfigurationError):
            sql_p95_latency_ms(8, B2, demand_per_vcore=0.0)
        with pytest.raises(WorkloadError):
            sql_p95_latency_ms(32, B2)
