"""Tests for schedules and the open-loop arrival source."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import OpenLoopSource, PiecewiseSchedule, Simulator


class TestPiecewiseSchedule:
    def test_values_at_boundaries(self):
        schedule = PiecewiseSchedule([(0.0, 100.0), (10.0, 200.0)])
        assert schedule.value_at(-1.0) == 0.0
        assert schedule.value_at(0.0) == 100.0
        assert schedule.value_at(9.999) == 100.0
        assert schedule.value_at(10.0) == 200.0
        assert schedule.value_at(1e9) == 200.0

    def test_default_before_first_step(self):
        schedule = PiecewiseSchedule([(5.0, 1.0)], default=42.0)
        assert schedule.value_at(0.0) == 42.0

    def test_stepped_builder_matches_paper_ramp(self):
        # 500 QPS, +500 every 5 minutes, 8 levels -> max 4000.
        schedule = PiecewiseSchedule.stepped(initial=500, step=500, period=300, count=8)
        assert schedule.value_at(0.0) == 500
        assert schedule.value_at(299.0) == 500
        assert schedule.value_at(300.0) == 1000
        assert schedule.value_at(7 * 300.0) == 4000
        assert schedule.end_time == 7 * 300.0

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ConfigurationError):
            PiecewiseSchedule([(0.0, 1.0), (0.0, 2.0)])

    def test_stepped_requires_positive_count(self):
        with pytest.raises(ConfigurationError):
            PiecewiseSchedule.stepped(1, 1, 1, 0)


class TestOpenLoopSource:
    def test_deterministic_rate_produces_expected_count(self):
        sim = Simulator()
        arrivals = []
        OpenLoopSource(sim, arrivals.append, rate_per_second=10.0, deterministic=True)
        sim.run(until=10.0)
        assert len(arrivals) == 100

    def test_poisson_rate_statistically_close(self):
        sim = Simulator(seed=3)
        arrivals = []
        OpenLoopSource(sim, arrivals.append, rate_per_second=50.0)
        sim.run(until=100.0)
        assert len(arrivals) == pytest.approx(5000, rel=0.1)

    def test_rate_change_takes_effect(self):
        sim = Simulator()
        arrivals = []
        source = OpenLoopSource(sim, arrivals.append, rate_per_second=1.0, deterministic=True)
        sim.at(10.0, lambda: source.set_rate(100.0))
        sim.run(until=11.0)
        # ~10 arrivals in the first 10 s, then ~100 in the final second.
        assert len(arrivals) > 80

    def test_zero_rate_pauses(self):
        sim = Simulator()
        arrivals = []
        source = OpenLoopSource(sim, arrivals.append, rate_per_second=10.0, deterministic=True)
        sim.at(1.0, lambda: source.set_rate(0.0))
        sim.run(until=100.0)
        count_at_pause = len(arrivals)
        assert count_at_pause <= 11
        assert source.rate == 0.0

    def test_resume_after_pause(self):
        sim = Simulator()
        arrivals = []
        source = OpenLoopSource(sim, arrivals.append, rate_per_second=10.0, deterministic=True)
        sim.at(1.0, lambda: source.set_rate(0.0))
        sim.at(50.0, lambda: source.set_rate(10.0))
        sim.run(until=51.0)
        assert any(t > 50.0 for t in arrivals)

    def test_stop_is_permanent(self):
        sim = Simulator()
        arrivals = []
        source = OpenLoopSource(sim, arrivals.append, rate_per_second=10.0, deterministic=True)
        sim.at(1.0, source.stop)
        sim.run(until=100.0)
        assert len(arrivals) <= 11
        source.set_rate(100.0)
        sim.run(until=200.0)
        assert all(t <= 1.1 for t in arrivals)

    def test_negative_rate_rejected(self):
        sim = Simulator()
        source = OpenLoopSource(sim, lambda t: None, rate_per_second=1.0)
        with pytest.raises(SimulationError):
            source.set_rate(-1.0)

    def test_generated_counter(self):
        sim = Simulator()
        source = OpenLoopSource(sim, lambda t: None, rate_per_second=5.0, deterministic=True)
        sim.run(until=2.0)
        assert source.generated == 10
