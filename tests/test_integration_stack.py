"""Full-stack integration tests: the subsystems composed end-to-end.

Each test threads several subpackages together the way the paper's
deployment story does: tank → silicon → reliability → cluster →
auto-scaler → TCO.
"""

import pytest

from repro.autoscale import AutoScaler, AutoscalePolicy, ScalerMode
from repro.cluster import Host, VMInstance, VMSpec
from repro.reliability import (
    CompositeLifetimeModel,
    OverclockGuard,
    WearoutCounter,
    immersion_condition,
    iso_lifetime_overclock_watts,
)
from repro.silicon import OC1, TANK1_SERVER, XEON_W3175X, immersed_cpu
from repro.sim import OpenLoopSource, Simulator
from repro.tco import OC_2PIC, cost_per_vcore
from repro.thermal import (
    HFE_7000,
    ImmersedLoad,
    TWO_PHASE_IMMERSION,
    small_tank_1,
)


class TestTankToSiliconChain:
    def test_overclocked_server_fits_its_tank(self):
        """The overclocked small-tank server's heat stays within the
        condenser, and the junction stays in Table V territory."""
        tank = small_tank_1()
        cpu = immersed_cpu(XEON_W3175X, HFE_7000)
        point = cpu.operating_point(3.4 * 1.23)
        tank.immerse(ImmersedLoad("server-1", point.total_watts))
        assert tank.headroom_watts > 0
        assert point.junction_temp_c < 70.0

    def test_iso_lifetime_budget_matches_thermal_envelope(self):
        """The lifetime-neutral power budget lands inside what the tank
        and the V/F curve can actually deliver."""
        model = CompositeLifetimeModel()
        budget = iso_lifetime_overclock_watts(model, HFE_7000, target_years=5.0)
        cpu = immersed_cpu(XEON_W3175X, HFE_7000)
        point = cpu.operating_point(3.4 * 1.23)
        # The measured +23% operating point consumes roughly the budget.
        assert point.total_watts == pytest.approx(budget, rel=0.15)


class TestGuardedHostChain:
    def test_guard_approves_the_paper_operating_point(self):
        nominal = immersion_condition(HFE_7000, 205.0, 0.90)
        overclocked = immersion_condition(HFE_7000, 305.0, 0.98)
        counter = WearoutCounter()
        counter.record(hours=8766.0, condition=nominal, utilization=0.4)
        guard = OverclockGuard(
            wearout=counter,
            overclocked_condition=overclocked,
            nominal_condition=nominal,
        )
        host = Host("h0", cooling=TWO_PHASE_IMMERSION)
        headroom = 900.0 - host.peak_power_watts()
        decision = guard.decide(1.23, power_headroom_watts=headroom)
        assert decision.granted_ratio == pytest.approx(1.23)
        # The grant corresponds to OC1-class frequency on this host.
        host.set_config(OC1)
        assert host.is_overclocked


class TestClosedLoopToTCOChain:
    def test_autoscaled_savings_flow_into_tco(self):
        """A short OC-A run frees VM-hours; the TCO model prices the
        oversubscription the freed capacity enables."""
        simulator = Simulator(seed=4)
        autoscaler = AutoScaler(
            simulator,
            AutoscalePolicy(mode=ScalerMode.OC_A),
            initial_vms=2,
            warmup_s=20.0,
        )
        OpenLoopSource(
            simulator, autoscaler.load_balancer.route, rate_per_second=1400.0
        )
        simulator.run(until=400.0)
        result = autoscaler.finish()
        assert result.latency.p95() > 0
        # Price the density: 10% oversubscription in overclockable 2PIC.
        cost = cost_per_vcore(OC_2PIC, oversubscription=0.10)
        assert cost == pytest.approx(0.96 / 1.1, rel=0.01)

    def test_host_admits_autoscaled_vms(self):
        """The controller's VM shapes fit the modeled tank-1 host."""
        host = Host("tank1", spec=TANK1_SERVER, cooling=TWO_PHASE_IMMERSION)
        for index in range(7):
            host.place(VMInstance(f"vm{index}", VMSpec(4, 16.0)))
        assert host.free_vcores == 0
        assert host.committed_memory_gb <= host.spec.memory.capacity_gb
