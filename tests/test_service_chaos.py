"""Service WAL crash safety: SIGKILL the serve loop, resume bit-identically.

The headline chaos test SIGKILLs a journaled service subprocess
mid-run — after the operator op and a batch of per-tick signature
checkpoints are durably on disk — then resumes the session in-process
and checks the rebuilt core's chained tick signature matches an
uninterrupted reference run bit for bit. That is the crash-safety
contract of ``python -m repro serve``: a hard kill loses at most the
unacknowledged tail, never the acknowledged past.

Seeds come from ``REPRO_CHAOS_SEEDS`` (space-separated ints), mirroring
the other chaos suites.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import JournalError
from repro.service import ServiceSession, service_wal_path

from . import servicehelper

#: Watchdog for the subprocess chaos test (seconds); CI can widen it.
CHAOS_TIMEOUT_S = float(os.environ.get("CHAOS_TIMEOUT", "60"))

SEEDS = [int(token) for token in os.environ.get("REPRO_CHAOS_SEEDS", "1 2").split()]

#: Kill only after this many signature checkpoints are durable — well
#: past the op boundary, well short of the full run.
KILL_AFTER_SIGS = servicehelper.OP_AT_TICK + 10


def _spawn_service(tmp_path: Path, run_id: str, seed: int) -> subprocess.Popen:
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([str(repo_root / "src"), str(repo_root)])
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "tests.servicehelper",
            str(tmp_path),
            run_id,
            str(seed),
        ],
        env=env,
        cwd=repo_root,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


@pytest.mark.chaos
class TestServiceSigkillResume:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sigkilled_service_resumes_bit_identically(self, tmp_path, seed):
        """Kill the service mid-run; the resumed chain must match."""
        run_id = f"svc-chaos-{seed}"
        wal = service_wal_path(tmp_path, run_id)
        child = _spawn_service(tmp_path, run_id, seed)
        try:
            # Wait until the op record and a comfortable batch of tick
            # signatures are durably journaled, then kill -9 mid-run.
            deadline = time.monotonic() + CHAOS_TIMEOUT_S
            while time.monotonic() < deadline:
                if wal.exists():
                    # Payloads are pickled, but journal keys appear
                    # literally: one ``sig:`` record per checkpointed
                    # tick, one ``op:`` record per durable operator op.
                    data = wal.read_bytes()
                    if data.count(b"sig:0") >= KILL_AFTER_SIGS and b"op:0" in data:
                        break
                if child.poll() is not None:
                    pytest.fail("service run finished before it could be killed")
                time.sleep(0.01)
            else:
                pytest.fail("service WAL never accumulated enough records")
            child.kill()  # SIGKILL: no cleanup, no atexit, no flush
            child.wait(timeout=CHAOS_TIMEOUT_S)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=CHAOS_TIMEOUT_S)

        # Resume in-process (fast ticks) and run to the full length.
        resumed = servicehelper.run_service(
            str(tmp_path), run_id, seed=seed, sleep_s=0.0
        )
        assert resumed["resumed"] is True
        assert resumed["replayed_ticks"] >= KILL_AFTER_SIGS
        assert resumed["tick"] == servicehelper.TICKS

        # An uninterrupted reference run in a separate WAL.
        reference = servicehelper.run_service(
            str(tmp_path), f"ref-{seed}", seed=seed, sleep_s=0.0
        )
        assert reference["resumed"] is False
        assert resumed["signature"] == reference["signature"]

        # Reopening the finished run replays every tick and lands on
        # the same chain head — the WAL tells the whole story.
        session = ServiceSession(str(tmp_path), run_id, seed=seed)
        core = session.open()
        try:
            assert session.resumed is True
            assert session.replayed_ticks == servicehelper.TICKS
            assert core.signature == reference["signature"]
        finally:
            session.close()

    def test_resume_with_wrong_seed_is_refused(self, tmp_path):
        """A WAL written for one seed must not resume another service."""
        run_id = "svc-chaos-seedcheck"
        servicehelper.run_service(str(tmp_path), run_id, seed=3, ticks=5, sleep_s=0.0)
        session = ServiceSession(str(tmp_path), run_id, seed=4)
        with pytest.raises(JournalError):
            session.open()
