"""Tests for the facility loop, WUE, and vapor management models."""

import pytest

from repro.errors import ConfigurationError, ThermalError
from repro.thermal import (
    EVAPORATIVE_WUE_L_PER_KWH,
    FACILITY_CHEMICAL_TRAP,
    FC_3284,
    HFE_7000,
    TANK_MECHANICAL_TRAP,
    TEMPERATE_CLIMATE,
    ClimateProfile,
    CondenserLoop,
    DryCooler,
    annual_vapor_budget,
    annual_water_use_liters,
    escaped_vapor_grams,
    small_tank_1,
    wue_l_per_kwh,
)


class TestCondenserLoop:
    def test_return_temp_rises_with_heat(self):
        loop = CondenserLoop(water_flow_g_per_s=1000.0, supply_temp_c=30.0)
        assert loop.return_temp_c(0.0) == 30.0
        assert loop.return_temp_c(41_860.0) == pytest.approx(40.0)

    def test_condensation_requires_margin_below_boiling(self):
        # FC-3284 boils at 50: a 47 degC loop cannot condense it.
        loop = CondenserLoop(water_flow_g_per_s=1000.0, supply_temp_c=47.0)
        with pytest.raises(ThermalError):
            loop.check_condenses(FC_3284, 1000.0)
        cool_loop = CondenserLoop(water_flow_g_per_s=1000.0, supply_temp_c=40.0)
        assert cool_loop.check_condenses(FC_3284, 1000.0) > 40.0

    def test_return_above_boiling_rejected(self):
        loop = CondenserLoop(water_flow_g_per_s=10.0, supply_temp_c=40.0)
        with pytest.raises(ThermalError):
            loop.check_condenses(FC_3284, 10_000.0)

    def test_max_heat_scales_with_flow(self):
        slow = CondenserLoop(water_flow_g_per_s=500.0, supply_temp_c=30.0)
        fast = CondenserLoop(water_flow_g_per_s=1000.0, supply_temp_c=30.0)
        assert fast.max_heat_watts(FC_3284) == pytest.approx(2 * slow.max_heat_watts(FC_3284))

    def test_hfe_loop_needs_colder_water(self):
        loop = CondenserLoop(water_flow_g_per_s=1000.0, supply_temp_c=30.0)
        assert loop.max_heat_watts(HFE_7000) < loop.max_heat_watts(FC_3284)


class TestDryCooler:
    LOOP = CondenserLoop(water_flow_g_per_s=4000.0, supply_temp_c=30.0)

    def test_dry_operation_in_mild_weather(self):
        cooler = DryCooler(approach_temp_c=6.0)
        assert cooler.supports(self.LOOP, ambient_c=20.0)
        assert cooler.trim_water_g_per_s(self.LOOP, 20.0, 50_000.0) == 0.0

    def test_trim_water_on_hot_days(self):
        cooler = DryCooler(approach_temp_c=6.0)
        assert not cooler.supports(self.LOOP, ambient_c=35.0)
        assert cooler.trim_water_g_per_s(self.LOOP, 35.0, 50_000.0) > 0.0

    def test_trim_water_monotone_in_ambient(self):
        cooler = DryCooler()
        rates = [
            cooler.trim_water_g_per_s(self.LOOP, ambient, 50_000.0)
            for ambient in (25.0, 30.0, 35.0, 40.0)
        ]
        assert rates == sorted(rates)

    def test_fan_power(self):
        cooler = DryCooler(fan_power_fraction=0.015)
        assert cooler.fan_watts(100_000.0) == pytest.approx(1500.0)


class TestWUE:
    def test_mild_climate_dry_cooling_beats_evaporative(self):
        loop = CondenserLoop(water_flow_g_per_s=4000.0, supply_temp_c=30.0)
        wue = wue_l_per_kwh(loop, DryCooler(), it_watts=25_000.0)
        assert wue < EVAPORATIVE_WUE_L_PER_KWH

    def test_tight_loop_hot_climate_at_par_with_evaporative(self):
        """The paper's projection: 2PIC WUE at par with evaporative DCs.

        An HFE-7000 loop needs cold water (<= 29 degC supply); in a hot
        climate the dry cooler then runs trim most hours.
        """
        hot_climate = ClimateProfile(
            bands=((18.0, 1000.0), (26.0, 2766.0), (32.0, 3000.0), (38.0, 2000.0))
        )
        loop = CondenserLoop(water_flow_g_per_s=4000.0, supply_temp_c=27.0)
        wue = wue_l_per_kwh(loop, DryCooler(), it_watts=25_000.0, climate=hot_climate)
        assert 0.3 * EVAPORATIVE_WUE_L_PER_KWH < wue < 2.0 * EVAPORATIVE_WUE_L_PER_KWH

    def test_annual_water_scales_with_load(self):
        loop = CondenserLoop(water_flow_g_per_s=4000.0, supply_temp_c=27.0)
        small = annual_water_use_liters(loop, DryCooler(), 10_000.0)
        large = annual_water_use_liters(loop, DryCooler(), 20_000.0)
        assert large == pytest.approx(2 * small, rel=0.01)

    def test_climate_validation(self):
        with pytest.raises(ConfigurationError):
            ClimateProfile(bands=())
        with pytest.raises(ConfigurationError):
            ClimateProfile(bands=((20.0, -1.0),))
        assert TEMPERATE_CLIMATE.total_hours == pytest.approx(8766.0)


class TestVaporManagement:
    def test_two_stage_capture(self):
        # 90% then 80% capture -> 2% escapes.
        assert escaped_vapor_grams(1000.0) == pytest.approx(20.0)

    def test_annual_budget(self):
        tank = small_tank_1()
        budget = annual_vapor_budget(tank, servicing_events_per_year=12)
        assert budget.raw_loss_grams == pytest.approx(12 * tank.vapor_loss_per_service_grams)
        assert budget.escaped_grams < 0.05 * budget.raw_loss_grams
        assert budget.capture_rate > 0.95

    def test_no_servicing_no_loss(self):
        budget = annual_vapor_budget(small_tank_1(), servicing_events_per_year=0)
        assert budget.raw_loss_grams == 0.0
        assert budget.capture_rate == 1.0

    def test_trap_validation(self):
        from repro.thermal import VaporTrap

        with pytest.raises(ConfigurationError):
            VaporTrap("bad", 1.5)

    def test_trap_constants(self):
        assert TANK_MECHANICAL_TRAP.capture_efficiency == 0.90
        assert FACILITY_CHEMICAL_TRAP.capture_efficiency == 0.80
