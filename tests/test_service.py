"""Unit tests for the live-service overload stack and tick core."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, JournalError
from repro.service import (
    AdmissionController,
    BoundedDeadlineQueue,
    PriorityClass,
    QueueDelayController,
    Request,
    ServiceConfig,
    ServiceCore,
    ServiceSession,
    TokenBucket,
)
from repro.service.admission import ClassPolicy
from repro.service.brownout import BrownoutConfig, BrownoutLadder, BrownoutStage
from repro.sim.random import RandomStreams
from repro.workloads.diurnal import ArrivalProcess, DiurnalTrace


def _policies(rate=10.0, burst=5, deadline=1.0):
    return {
        klass: ClassPolicy(rate_per_s=rate, burst=burst, deadline_s=deadline)
        for klass in PriorityClass
    }


class TestAdmission:
    def test_token_bucket_throttles_beyond_burst(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=3)
        taken = sum(1 for _ in range(10) if bucket.take(0.0))
        assert taken == 3
        # Refill is continuous: after 2 s, two more tokens exist.
        assert bucket.take(2.0)
        assert bucket.take(2.0)
        assert not bucket.take(2.0)

    def test_priority_floor_gates_lower_classes(self):
        controller = AdmissionController(_policies())
        assert controller.admit(0.0, PriorityClass.BATCH) == "admitted"
        controller.set_priority_floor(PriorityClass.STANDARD)
        assert controller.admit(0.0, PriorityClass.BATCH) == "gated"
        assert controller.admit(0.0, PriorityClass.STANDARD) == "admitted"
        assert controller.admit(0.0, PriorityClass.CRITICAL) == "admitted"
        controller.set_priority_floor(None)
        assert controller.admit(0.0, PriorityClass.BATCH) == "admitted"

    def test_admission_counters_account_every_verdict(self):
        controller = AdmissionController(_policies(rate=1.0, burst=1))
        verdicts = [controller.admit(0.0, PriorityClass.CRITICAL) for _ in range(4)]
        assert verdicts.count("admitted") == 1
        assert verdicts.count("throttled") == 3
        assert controller.admitted == 1
        assert controller.throttled == 3


class TestBacklog:
    def _request(self, seq, klass, arrival, deadline):
        return Request(
            request_id=seq, klass=klass, arrival_s=arrival, deadline_s=deadline
        )

    def test_overflow_sheds_at_tail(self):
        queue = BoundedDeadlineQueue(capacity=2)
        assert queue.push(self._request(1, PriorityClass.BATCH, 0.0, 9.0))
        assert queue.push(self._request(2, PriorityClass.BATCH, 0.0, 9.0))
        assert not queue.push(self._request(3, PriorityClass.CRITICAL, 0.0, 9.0))
        assert queue.shed_overflow == 1
        assert len(queue) == 2

    def test_pop_serves_priority_order_and_expires_en_route(self):
        queue = BoundedDeadlineQueue(capacity=10)
        queue.push(self._request(1, PriorityClass.BATCH, 0.0, 9.0))
        queue.push(self._request(2, PriorityClass.CRITICAL, 0.0, 0.5))
        queue.push(self._request(3, PriorityClass.STANDARD, 0.0, 9.0))
        # The critical request's deadline has passed: dropped, not served.
        popped = queue.pop(now_s=1.0)
        assert popped is not None and popped.klass is PriorityClass.STANDARD
        assert queue.shed_expired == 1

    def test_dispatch_slack_sheds_unwinnable_work(self):
        queue = BoundedDeadlineQueue(capacity=10)
        queue.push(self._request(1, PriorityClass.STANDARD, 0.0, 1.0))
        # Deadline is 0.05 s away but the slack guard needs 0.1 s.
        assert queue.pop(now_s=0.95, slack_s=0.1) is None
        assert queue.shed_expired == 1

    def test_expire_drops_past_deadline_only(self):
        queue = BoundedDeadlineQueue(capacity=10)
        queue.push(self._request(1, PriorityClass.BATCH, 0.0, 0.5))
        queue.push(self._request(2, PriorityClass.BATCH, 0.0, 2.0))
        assert queue.expire(1.0) == 1
        assert len(queue) == 1

    def test_head_age_tracks_oldest_request(self):
        queue = BoundedDeadlineQueue(capacity=10)
        assert queue.head_age_s(5.0) == 0.0
        queue.push(self._request(1, PriorityClass.BATCH, 1.0, 99.0))
        queue.push(self._request(2, PriorityClass.CRITICAL, 3.0, 99.0))
        assert queue.head_age_s(5.0) == pytest.approx(4.0)


class TestDelayController:
    def test_drained_burst_resets_signal(self):
        controller = QueueDelayController(target_s=0.05, window_ticks=3)
        controller.observe([0.5, 0.6], head_age_s=0.0)
        controller.observe([0.4], head_age_s=0.0)
        # The burst drains: best dispatch delay near zero, queue empty.
        controller.observe([0.001], head_age_s=0.0)
        assert controller.delay_signal_s < 0.05
        assert not controller.overloaded

    def test_standing_queue_keeps_signal_elevated(self):
        controller = QueueDelayController(target_s=0.05, window_ticks=3)
        for _ in range(3):
            controller.observe([0.2, 0.3], head_age_s=0.25)
        assert controller.delay_signal_s >= 0.2
        assert controller.overloaded

    def test_head_age_unmasks_starved_class(self):
        controller = QueueDelayController(target_s=0.05, window_ticks=2)
        # Fresh critical work dispatches instantly, but a batch request
        # has been stuck for 0.4 s — the tick must still read as delay.
        for _ in range(2):
            controller.observe([0.0001], head_age_s=0.4)
        assert controller.delay_signal_s >= 0.4


class TestBrownoutLadder:
    def test_walks_rungs_in_order_under_shrinking_headroom(self):
        ladder = BrownoutLadder(config=BrownoutConfig())
        stages = []
        ladder.register(
            BrownoutStage.SHED_LOW_PRIORITY,
            lambda: stages.append("shed") or "shed",
        )
        ladder.register(
            BrownoutStage.REVOKE_BOOST,
            lambda: stages.append("revoke") or "revoke",
        )
        ladder.observe(0.0, ladder.config.shed_headroom_s + 1.0)
        assert ladder.stage is BrownoutStage.NORMAL
        ladder.observe(1.0, ladder.config.revoke_headroom_s - 0.01)
        assert ladder.stage is BrownoutStage.REVOKE_BOOST
        assert stages == ["shed", "revoke"]


class TestDiurnal:
    def test_trace_endpoints(self):
        trace = DiurnalTrace(trough_rps=10.0, peak_rps=50.0, period_s=100.0)
        assert trace.rate_rps(0.0) == pytest.approx(10.0)
        assert trace.rate_rps(50.0) == pytest.approx(50.0)
        assert trace.rate_rps(100.0) == pytest.approx(10.0)

    def test_arrivals_deterministic_per_seed(self):
        first = ArrivalProcess(RandomStreams(master_seed=9), "arrivals:test")
        second = ArrivalProcess(RandomStreams(master_seed=9), "arrivals:test")
        assert first.arrivals(0.0, 1.0, 100.0) == second.arrivals(0.0, 1.0, 100.0)

    def test_arrivals_independent_of_tick_split(self):
        whole = ArrivalProcess(RandomStreams(master_seed=4), "arrivals:test")
        split = ArrivalProcess(RandomStreams(master_seed=4), "arrivals:test")
        one_window = whole.arrivals(0.0, 1.0, 80.0)
        two_windows = split.arrivals(0.0, 0.5, 80.0) + split.arrivals(0.5, 0.5, 80.0)
        assert one_window == pytest.approx(two_windows)

    def test_zero_rate_yields_no_arrivals(self):
        process = ArrivalProcess(RandomStreams(master_seed=1), "arrivals:test")
        assert process.arrivals(0.0, 1.0, 0.0) == []


class TestServiceCore:
    def test_same_seed_same_chain_signature(self):
        first = ServiceCore(seed=11)
        second = ServiceCore(seed=11)
        op = {"op": "demand-surge", "factor": 1.5, "duration_s": 3.0}
        for core in (first, second):
            core.run_ticks(10)
            core.apply_op(dict(op))
            core.run_ticks(10)
        assert first.signature == second.signature
        assert first.timeline.signature() == second.timeline.signature()

    def test_distinct_seeds_diverge(self):
        first = ServiceCore(seed=11)
        second = ServiceCore(seed=12)
        first.run_ticks(10)
        second.run_ticks(10)
        assert first.signature != second.signature

    def test_naive_mode_boosts_at_boot_robust_waits_for_gate(self):
        naive = ServiceCore(seed=1, mode="naive")
        assert naive.boost_active
        robust = ServiceCore(seed=1, mode="robust")
        robust.tick()
        # The boost gate opens on the first healthy tick.
        assert robust.boost_active

    def test_operator_cap_disables_boost(self):
        core = ServiceCore(seed=1)
        core.run_ticks(2)
        assert core.boost_active
        core.apply_op({"op": "power-cap", "watts": 90.0})
        core.tick()
        assert not core.boost_active
        core.apply_op({"op": "power-cap", "watts": None})
        core.tick()
        assert core.boost_active

    def test_overclock_op_toggles_boost(self):
        core = ServiceCore(seed=1)
        core.run_ticks(2)
        core.apply_op({"op": "overclock", "enable": False})
        core.tick()
        assert not core.boost_active

    def test_vm_crash_op_accounts_lost_work(self):
        core = ServiceCore(seed=1)
        core.run_ticks(4)
        detail = core.apply_op({"op": "vm-crash", "host": "h0"})
        assert detail.startswith("dropped=")
        assert core.apply_op({"op": "vm-crash", "host": "h0"}) is not None
        with pytest.raises(ConfigurationError):
            core.apply_op({"op": "vm-crash", "host": "h9"})

    def test_unknown_op_rejected(self):
        core = ServiceCore(seed=1)
        with pytest.raises(ConfigurationError):
            core.apply_op({"op": "reboot-the-universe"})

    def test_snapshot_is_json_safe_and_complete(self):
        import json

        core = ServiceCore(seed=2)
        core.run_ticks(5)
        snapshot = core.snapshot()
        json.dumps(snapshot)
        for key in (
            "counters",
            "brownout_stage",
            "emergency_stage",
            "queue_depth",
            "fluid_temp_c",
            "signature",
        ):
            assert key in snapshot
        assert snapshot["counters"]["offered"] > 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceCore(seed=1, mode="heroic")

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(tick_s=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(class_mix=(0.5, 0.5, 0.5))


class TestServiceSession:
    def test_resume_replays_to_identical_signature(self, tmp_path):
        with ServiceSession(tmp_path, "run", seed=21) as session:
            for _ in range(12):
                session.tick()
            session.apply_op({"op": "demand-surge", "factor": 2.0, "duration_s": 2.0})
            for _ in range(12):
                session.tick()
            final = session.core.signature

        resumed = ServiceSession(tmp_path, "run", seed=21)
        resumed.open()
        assert resumed.resumed
        assert resumed.replayed_ticks == 24
        assert resumed.core.signature == final
        resumed.close()

    def test_resumed_continuation_matches_uninterrupted_run(self, tmp_path):
        with ServiceSession(tmp_path, "run", seed=8) as session:
            for _ in range(10):
                session.tick()

        resumed = ServiceSession(tmp_path, "run", seed=8)
        resumed.open()
        for _ in range(10):
            resumed.tick()
        continued = resumed.core.signature
        resumed.close()

        reference = ServiceCore(seed=8)
        reference.run_ticks(20)
        assert continued == reference.signature

    def test_mismatched_seed_refused(self, tmp_path):
        with ServiceSession(tmp_path, "run", seed=1) as session:
            session.tick()
        with pytest.raises(JournalError):
            ServiceSession(tmp_path, "run", seed=2).open()

    def test_mismatched_mode_refused(self, tmp_path):
        with ServiceSession(tmp_path, "run", seed=1, mode="robust") as session:
            session.tick()
        with pytest.raises(JournalError):
            ServiceSession(tmp_path, "run", seed=1, mode="naive").open()

    def test_op_journaled_before_ack_is_replayed(self, tmp_path):
        with ServiceSession(tmp_path, "run", seed=5) as session:
            for _ in range(5):
                session.tick()
            # Op accepted at the tick-5 boundary but never ticked past:
            # it must still survive the restart.
            session.apply_op({"op": "overclock", "enable": False})

        resumed = ServiceSession(tmp_path, "run", seed=5)
        resumed.open()
        resumed.tick()
        assert not resumed.core.boost_active
        resumed.close()
