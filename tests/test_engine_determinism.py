"""Determinism regression: engine execution must be bit-for-bit
identical to direct serial calls for the same master seed.

This is the engine's core contract (ISSUE 1): fanning a sweep out over
processes, or replaying it from the cache, must never change a single
bit of the numbers — per-task seeds depend only on ``(master_seed,
task_key)``, and each task is a pure function of its parameters.
"""

from __future__ import annotations

import dataclasses

from repro.autoscale.policy import ScalerMode
from repro.engine import ResultCache, SweepEngine, SweepTask
from repro.experiments.autoscaling import run_fig16_mode
from repro.reliability import air_condition, compare_conditions, simulate_fleet
from repro.sim.random import split_seed
from repro.tco import sweep_energy_share

MASTER_SEED = 11


class TestMonteCarloDeterminism:
    def test_engine_matches_direct_serial_call(self):
        condition = air_condition(305.0, 0.98)
        direct = simulate_fleet(
            condition, servers=3000, seed=split_seed(MASTER_SEED, "air-oc")
        )
        through_engine = compare_conditions(
            {"air-oc": condition},
            servers=3000,
            seed=MASTER_SEED,
            engine=SweepEngine(max_workers=2),
        )["air-oc"]
        assert dataclasses.asdict(direct) == dataclasses.asdict(through_engine)

    def test_parallel_and_cached_replay_identical(self, tmp_path):
        conditions = {
            "nominal": air_condition(205.0, 0.90),
            "overclocked": air_condition(305.0, 0.98),
        }
        serial = compare_conditions(conditions, servers=3000, seed=MASTER_SEED)
        parallel = compare_conditions(
            conditions, servers=3000, seed=MASTER_SEED, engine=SweepEngine(max_workers=2)
        )
        cached_engine = SweepEngine(max_workers=2, cache=ResultCache(tmp_path))
        compare_conditions(conditions, servers=3000, seed=MASTER_SEED, engine=cached_engine)
        replay = compare_conditions(
            conditions, servers=3000, seed=MASTER_SEED, engine=cached_engine
        )
        assert cached_engine.last_report.executed == 0
        for label in conditions:
            assert serial[label] == parallel[label] == replay[label]


class TestFig16ModeDeterminism:
    def test_engine_matches_direct_serial_call(self):
        params = {"seed": MASTER_SEED, "warmup_s": 0.0, "levels": 2, "step_period_s": 30.0}
        direct = run_fig16_mode(ScalerMode.OC_A, **params)
        through_engine = SweepEngine(max_workers=2).run(
            [
                SweepTask(
                    fn=run_fig16_mode,
                    params={"mode": ScalerMode.OC_A, **params},
                    key=ScalerMode.OC_A.value,
                )
            ]
        )[ScalerMode.OC_A.value]
        assert direct.latency.p95() == through_engine.latency.p95()
        assert direct.latency.mean() == through_engine.latency.mean()
        assert direct.power.average_watts() == through_engine.power.average_watts()
        assert direct.max_vms == through_engine.max_vms
        assert direct.vm_hours() == through_engine.vm_hours()
        assert tuple(direct.utilization_trace.values) == tuple(
            through_engine.utilization_trace.values
        )
        assert tuple(direct.frequency_trace.values) == tuple(
            through_engine.frequency_trace.values
        )


class TestPureSweepDeterminism:
    def test_tco_sweep_identical_at_any_width(self):
        serial = sweep_energy_share()
        parallel = sweep_energy_share(engine=SweepEngine(max_workers=3))
        assert serial == parallel
