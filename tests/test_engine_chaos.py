"""Engine hardening: worker death, retries, timeouts, cache quarantine.

The headline invariant: a chaos task that hard-kills its pool worker
mid-sweep must not change the sweep's results — the engine re-spawns
the pool, re-submits the unfinished tasks, and because seeds derive
from task content the recovered output is bit-identical to a fault-free
serial run.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time

import pytest

from repro.engine import ResultCache, SweepEngine, SweepTask, make_faulty
from repro.engine.cache import QUARANTINE_DIR
from repro.errors import EngineError

SEEDS = [int(token) for token in os.environ.get("REPRO_CHAOS_SEEDS", "1 2").split()]


def _square(x, seed=0):
    return (x * x, seed)


def _boom(x):
    raise ValueError(f"boom {x}")


def _die_in_worker(x):
    """Kill the hosting pool worker on *every* parallel execution.

    In the main process (serial fallback) it computes normally — the
    guard is what makes the engine's last-resort serial path safe to
    exercise under pytest.
    """
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return x * 3


def _sleep_forever(x):
    time.sleep(600)
    return x


def _tasks(n=6):
    return [
        SweepTask(_square, {"x": i}, key=f"x{i}", seed_param="seed") for i in range(n)
    ]


class TestChaosRecovery:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_killed_worker_yields_bit_identical_results(self, tmp_path, seed):
        reference = SweepEngine(max_workers=1).run(_tasks(), master_seed=seed)
        chaos = [
            make_faulty(task, tmp_path) if index in (1, 4) else task
            for index, task in enumerate(_tasks())
        ]
        engine = SweepEngine(max_workers=3, retry_backoff_s=0.01)
        recovered = engine.run(chaos, master_seed=seed)
        assert recovered == reference
        assert engine.last_report.worker_failures >= 1
        assert engine.last_report.retries >= 1

    def test_make_faulty_is_safe_on_the_serial_path(self, tmp_path):
        # max_workers=1 never enters a pool: the wrapper must not kill
        # the test process, just compute.
        engine = SweepEngine(max_workers=1)
        faulty = [make_faulty(task, tmp_path) for task in _tasks(3)]
        assert engine.run(faulty, master_seed=5) == SweepEngine().run(
            _tasks(3), master_seed=5
        )

    def test_make_faulty_keeps_key_and_disables_caching(self, tmp_path):
        task = _tasks(1)[0]
        wrapped = make_faulty(task, tmp_path)
        assert wrapped.key == task.key
        assert wrapped.cacheable is False
        assert wrapped.seed_param == "seed"

    def test_serial_fallback_after_repeated_pool_failures(self):
        engine = SweepEngine(max_workers=2, max_pool_failures=2, retry_backoff_s=0.0)
        results = engine.run([SweepTask(_die_in_worker, {"x": 7}, key="d")])
        assert results == {"d": 21}
        assert engine.last_report.worker_failures == 2
        assert engine.last_report.serial_tasks == 1

    def test_no_serial_fallback_raises_engine_error(self):
        engine = SweepEngine(
            max_workers=2,
            max_pool_failures=2,
            retry_backoff_s=0.0,
            serial_fallback=False,
        )
        with pytest.raises(EngineError, match="unfinished"):
            engine.run([SweepTask(_die_in_worker, {"x": 7}, key="d")])

    def test_surviving_tasks_are_harvested_not_rerun(self, tmp_path):
        # One killer among many squares: the squares that completed
        # before the pool broke must not be recomputed from scratch —
        # executed counts each task once either way, but results must be
        # complete and correct.
        chaos = [make_faulty(_tasks()[0], tmp_path)] + _tasks()[1:]
        engine = SweepEngine(max_workers=2, retry_backoff_s=0.01)
        results = engine.run(chaos, master_seed=3)
        assert set(results) == {f"x{i}" for i in range(6)}

    def test_task_exception_still_propagates(self):
        engine = SweepEngine(max_workers=2)
        with pytest.raises(ValueError, match="boom"):
            engine.run([SweepTask(_boom, {"x": 1}, key="b")])


class TestTimeouts:
    def test_hung_task_raises_instead_of_blocking(self):
        engine = SweepEngine(max_workers=2, task_timeout_s=0.5)
        started = time.perf_counter()
        with pytest.raises(EngineError, match="timeout"):
            engine.run([SweepTask(_sleep_forever, {"x": 1}, key="h")])
        assert time.perf_counter() - started < 30.0

    def test_fast_tasks_unaffected_by_timeout(self):
        engine = SweepEngine(max_workers=2, task_timeout_s=30.0)
        assert engine.run(_tasks(3))["x2"][0] == 4

    def test_constructor_validation(self):
        with pytest.raises(EngineError):
            SweepEngine(task_timeout_s=0.0)
        with pytest.raises(EngineError):
            SweepEngine(max_pool_failures=0)
        with pytest.raises(EngineError):
            SweepEngine(retry_backoff_s=-1.0)


class TestCacheQuarantine:
    def _prime(self, root):
        cache = ResultCache(root)
        engine = SweepEngine(cache=cache)
        engine.run([SweepTask(_square, {"x": 7}, key="k")])
        (entry,) = list(root.glob("[0-9a-f][0-9a-f]/*.pkl"))
        return cache, entry

    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path):
        _, entry = self._prime(tmp_path)
        entry.write_bytes(b"not a pickle")
        cache = ResultCache(tmp_path)
        hit, _ = cache.load(entry.stem)
        assert not hit
        assert cache.quarantined == 1
        assert not entry.exists()
        quarantined = tmp_path / QUARANTINE_DIR / entry.name
        assert quarantined.exists()
        assert quarantined.read_bytes() == b"not a pickle"

    def test_repeat_quarantine_keeps_every_specimen(self, tmp_path):
        """Regression: a key corrupting twice must not overwrite the
        first quarantined specimen — each lands at a uniquified path."""
        _, entry = self._prime(tmp_path)
        cache = ResultCache(tmp_path)
        entry.write_bytes(b"first corruption")
        cache.load(entry.stem)
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_bytes(b"second corruption")
        cache.load(entry.stem)
        first = tmp_path / QUARANTINE_DIR / entry.name
        second = tmp_path / QUARANTINE_DIR / f"{entry.stem}.2.pkl"
        assert first.read_bytes() == b"first corruption"
        assert second.read_bytes() == b"second corruption"
        assert cache.quarantined == 2

    def test_quarantine_warns_once_per_key(self, tmp_path, caplog):
        _, entry = self._prime(tmp_path)
        cache = ResultCache(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.engine.cache"):
            entry.write_bytes(b"garbage one")
            cache.load(entry.stem)
            entry.parent.mkdir(parents=True, exist_ok=True)
            entry.write_bytes(b"garbage two")
            cache.load(entry.stem)
        warnings = [r for r in caplog.records if "quarantined" in r.getMessage()]
        assert len(warnings) == 1
        assert cache.quarantined == 2

    def test_recompute_after_quarantine(self, tmp_path):
        _, entry = self._prime(tmp_path)
        entry.write_bytes(b"truncated")
        results = SweepEngine(cache=ResultCache(tmp_path)).run(
            [SweepTask(_square, {"x": 7}, key="k")]
        )
        assert results["k"] == (49, 0)

    def test_clear_and_len_ignore_quarantine(self, tmp_path):
        cache, entry = self._prime(tmp_path)
        entry.write_bytes(b"bad")
        cache.load(entry.stem)
        assert len(cache) == 0
        assert cache.clear() == 0
        assert (tmp_path / QUARANTINE_DIR / entry.name).exists()

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, value = cache.load("0" * 64)
        assert not hit and value is None
        assert cache.quarantined == 0
