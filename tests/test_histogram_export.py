"""Tests for the log histogram and the result exporters."""

import csv
import json
from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.telemetry import (
    LogHistogram,
    TimeSeries,
    write_json,
    write_records_csv,
    write_timeseries_csv,
)


class TestLogHistogram:
    def test_quantiles_within_relative_error(self):
        rng = np.random.default_rng(3)
        samples = rng.lognormal(mean=-6.0, sigma=0.8, size=20_000)
        histogram = LogHistogram(growth=1.05)
        for sample in samples:
            histogram.record(float(sample))
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            approx = histogram.quantile(q)
            assert approx == pytest.approx(exact, rel=0.08), q

    def test_mean_exact(self):
        histogram = LogHistogram()
        for value in (0.001, 0.002, 0.003):
            histogram.record(value)
        assert histogram.mean() == pytest.approx(0.002)
        assert histogram.count == 3

    def test_merge(self):
        a, b = LogHistogram(), LogHistogram()
        for value in (0.01, 0.02):
            a.record(value)
        for value in (0.03, 0.04):
            b.record(value)
        a.merge(b)
        assert a.count == 4
        assert a.mean() == pytest.approx(0.025)

    def test_merge_geometry_mismatch(self):
        with pytest.raises(ConfigurationError):
            LogHistogram(growth=1.05).merge(LogHistogram(growth=1.1))

    def test_clamping_and_validation(self):
        histogram = LogHistogram(min_value=1e-3, max_value=10.0)
        histogram.record(1e-9)   # clamped up
        histogram.record(1e9)    # clamped into the top bucket
        assert histogram.count == 2
        with pytest.raises(ConfigurationError):
            histogram.record(-1.0)
        with pytest.raises(ConfigurationError):
            LogHistogram().quantile(1.5)
        with pytest.raises(ConfigurationError):
            LogHistogram().quantile(0.5)  # empty

    @given(st.lists(st.floats(min_value=1e-5, max_value=100.0), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_quantile_monotone(self, values):
        histogram = LogHistogram()
        for value in values:
            histogram.record(value)
        quantiles = [histogram.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert all(b >= a - 1e-12 for a, b in zip(quantiles, quantiles[1:]))
        assert histogram.quantile(1.0) <= max(values) * 1.06


@dataclass
class _Row:
    name: str
    value: float


class TestExport:
    def test_records_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        count = write_records_csv(path, [_Row("a", 1.0), _Row("b", 2.0)])
        assert count == 2
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0] == {"name": "a", "value": "1.0"}

    def test_records_csv_accepts_dicts(self, tmp_path):
        path = tmp_path / "dicts.csv"
        assert write_records_csv(path, [{"x": 1}, {"x": 2}]) == 2

    def test_records_csv_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_records_csv(tmp_path / "e.csv", [])
        with pytest.raises(ConfigurationError):
            write_records_csv(tmp_path / "m.csv", [{"a": 1}, {"b": 2}])
        with pytest.raises(ConfigurationError):
            write_records_csv(tmp_path / "t.csv", [42])

    def test_timeseries_csv(self, tmp_path):
        series = TimeSeries("util")
        series.record(0.0, 0.5)
        series.record(3.0, 0.6)
        path = tmp_path / "series.csv"
        assert write_timeseries_csv(path, series) == 2
        content = path.read_text().splitlines()
        assert content[0] == "series,time,value"
        assert content[1] == "util,0.0,0.5"

    def test_json_with_dataclasses(self, tmp_path):
        path = tmp_path / "snap.json"
        write_json(path, {"rows": [_Row("a", 1.0)], "meta": 3})
        payload = json.loads(path.read_text())
        assert payload["rows"][0]["name"] == "a"
        assert payload["meta"] == 3

    def test_json_golden_text_is_key_sorted(self, tmp_path):
        """The exact bytes written are pinned: sorted keys, 2-space
        indent, trailing newline — the diffable-export contract."""
        path = tmp_path / "golden.json"
        write_json(path, {"zeta": 1, "alpha": {"b": 2, "a": _Row("r", 0.5)}})
        assert path.read_text() == (
            "{\n"
            '  "alpha": {\n'
            '    "a": {\n'
            '      "name": "r",\n'
            '      "value": 0.5\n'
            "    },\n"
            '    "b": 2\n'
            "  },\n"
            '  "zeta": 1\n'
            "}\n"
        )

    def test_json_text_is_insertion_order_independent(self, tmp_path):
        one, two = tmp_path / "one.json", tmp_path / "two.json"
        write_json(one, {"b": 1, "a": 2})
        write_json(two, {"a": 2, "b": 1})
        assert one.read_text() == two.read_text()
