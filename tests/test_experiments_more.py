"""Additional coverage for the experiment entry points."""

import pytest

from repro.experiments.environment import FC_LOOP, HFE_LOOP, HOT_CLIMATE, run_wue
from repro.experiments.packing_churn import replay_trace, run_packing_churn
from repro.experiments.highperf_vms import format_fig9, format_fig10, format_fig11
from repro.experiments.autoscaling import FIG15_QPS_LEVELS, FIG16_LEVELS, FIG16_MAX_VMS
from repro.thermal import EVAPORATIVE_WUE_L_PER_KWH
from repro.workloads.vmtrace import VMArrival
from repro.cluster import VMSpec


class TestEnvironmentExperiment:
    def test_wue_rows_cover_both_fluids_and_climates(self):
        rows = dict(run_wue())
        assert len(rows) == 5
        assert rows["Evaporative air (reference)"] == EVAPORATIVE_WUE_L_PER_KWH
        # The FC loop runs warmer water, so it needs less trim everywhere.
        assert rows["2PIC FC-3284, hot climate"] < rows["2PIC HFE-7000, hot climate"]
        assert rows["2PIC FC-3284, temperate"] < rows["2PIC FC-3284, hot climate"]

    def test_loop_temperatures_respect_fluids(self):
        # HFE-7000 boils at 34: the loop must stay several degrees below.
        assert HFE_LOOP.supply_temp_c < 30.0
        assert FC_LOOP.supply_temp_c < 45.0

    def test_hot_climate_total_hours(self):
        assert HOT_CLIMATE.total_hours == pytest.approx(8766.0)


class TestPackingChurnExperiment:
    def test_empty_trace(self):
        result = replay_trace([], host_count=2, oversubscription_ratio=1.0, label="x")
        assert result.arrivals == 0
        assert result.admission_rate == 1.0

    def test_single_arrival_admitted(self):
        trace = [VMArrival(arrival_time=0.0, spec=VMSpec(4, 8.0), lifetime_s=100.0)]
        result = replay_trace(trace, host_count=1, oversubscription_ratio=1.0, label="y")
        assert result.admitted == 1
        assert result.peak_committed_vcores == 4

    def test_departures_free_capacity(self):
        spec = VMSpec(vcores=28, memory_gb=28.0)  # one VM fills the host
        trace = [
            VMArrival(arrival_time=0.0, spec=spec, lifetime_s=10.0),
            VMArrival(arrival_time=20.0, spec=spec, lifetime_s=10.0),
        ]
        result = replay_trace(trace, host_count=1, oversubscription_ratio=1.0, label="z")
        assert result.admitted == 2
        assert result.rejected == 0

    def test_overlap_rejects_without_capacity(self):
        spec = VMSpec(vcores=28, memory_gb=28.0)
        trace = [
            VMArrival(arrival_time=0.0, spec=spec, lifetime_s=100.0),
            VMArrival(arrival_time=5.0, spec=spec, lifetime_s=100.0),
        ]
        result = replay_trace(trace, host_count=1, oversubscription_ratio=1.0, label="w")
        assert result.admitted == 1
        assert result.rejected == 1

    def test_run_packing_churn_shares_one_trace(self):
        baseline, oversub = run_packing_churn(host_count=2, rate_per_hour=6.0,
                                              horizon_days=0.5, seed=3)
        assert baseline.arrivals == oversub.arrivals


class TestFormatters:
    def test_fig9_table_mentions_every_app_and_config(self):
        text = format_fig9()
        for token in ("SQL", "Training", "SPECJBB", "B1", "OC3"):
            assert token in text

    def test_fig10_table_lists_kernels(self):
        text = format_fig10()
        for kernel in ("copy", "scale", "add", "triad"):
            assert kernel in text

    def test_fig11_table_lists_models(self):
        text = format_fig11()
        for model in ("VGG11", "VGG16B", "OCG3"):
            assert model in text


class TestAutoscalingConstants:
    def test_paper_schedules(self):
        assert FIG15_QPS_LEVELS == (1000.0, 2000.0, 500.0, 3000.0, 1000.0)
        assert FIG16_LEVELS == 8
        assert FIG16_MAX_VMS == 6
