"""Tests for the power-delivery hierarchy and oversubscription handling."""

import pytest

from repro.cluster import (
    Host,
    PowerCapGovernor,
    PowerNode,
    VMInstance,
    VMSpec,
    build_two_rack_row,
)
from repro.errors import ConfigurationError, PowerBudgetExceeded
from repro.silicon import OC1
from repro.thermal import TWO_PHASE_IMMERSION


def loaded_host(host_id: str, overclocked: bool = True) -> Host:
    host = Host(host_id, cooling=TWO_PHASE_IMMERSION)
    if overclocked:
        host.set_config(OC1)
    for index in range(7):
        host.place(VMInstance(f"{host_id}-vm{index}", VMSpec(4, 8.0)))
    return host


class TestPowerNode:
    def test_aggregation(self):
        hosts = [(loaded_host("a"), 0), (loaded_host("b"), 10)]
        node = PowerNode("rack", limit_watts=1000.0, hosts=hosts)
        assert node.draw_watts(1.0) == pytest.approx(
            sum(h.power_watts(1.0) for h, _ in hosts)
        )
        assert node.provisioned_watts() > node.draw_watts(0.5)

    def test_oversubscription_ratio(self):
        node = PowerNode("rack", limit_watts=250.0, hosts=[(loaded_host("a"), 0)])
        assert node.oversubscription_ratio() > 1.0

    def test_node_shape_validation(self):
        with pytest.raises(ConfigurationError):
            PowerNode("bad", limit_watts=0.0)
        child = PowerNode("child", limit_watts=100.0)
        with pytest.raises(ConfigurationError):
            PowerNode(
                "both", limit_watts=100.0, children=[child],
                hosts=[(loaded_host("x"), 0)],
            )


class TestPowerDeliveryTree:
    def test_no_breach_when_sized_generously(self):
        tree = build_two_rack_row(
            hosts_per_rack=2,
            make_host=loaded_host,
            rack_limit_watts=2000.0,
            row_limit_watts=4000.0,
        )
        assert tree.find_breaches(1.0) == []
        assert tree.overclock_headroom_watts(1.0) > 0

    def test_breach_detected_under_oversubscription(self):
        tree = build_two_rack_row(
            hosts_per_rack=2,
            make_host=loaded_host,
            rack_limit_watts=2000.0,
            row_limit_watts=700.0,  # row breaker oversubscribed
        )
        breaches = tree.find_breaches(1.0)
        assert any(report.node_name == "row" for report in breaches)
        assert all(report.excess_watts > 0 for report in breaches)

    def test_enforce_caps_low_priority_first(self):
        tree = build_two_rack_row(
            hosts_per_rack=1,
            make_host=loaded_host,
            rack_limit_watts=2000.0,
            row_limit_watts=450.0,
            low_priority_rack=0,
        )
        results = tree.enforce(PowerCapGovernor(), utilization=1.0)
        assert tree.find_breaches(1.0) == []
        capped = {r.host_id: r.capped for r in results}
        assert capped["r0-h0"]          # low priority shed
        assert not capped["r1-h0"]      # high priority kept its clock

    def test_enforce_raises_when_impossible(self):
        tree = build_two_rack_row(
            hosts_per_rack=1,
            make_host=loaded_host,
            rack_limit_watts=2000.0,
            row_limit_watts=50.0,
        )
        with pytest.raises(PowerBudgetExceeded):
            tree.enforce(PowerCapGovernor(), utilization=1.0)

    def test_headroom_is_tightest_breaker(self):
        tree = build_two_rack_row(
            hosts_per_rack=1,
            make_host=lambda hid: loaded_host(hid, overclocked=False),
            rack_limit_watts=500.0,
            row_limit_watts=410.0,
        )
        draw = tree.root.draw_watts(0.5)
        assert tree.overclock_headroom_watts(0.5) == pytest.approx(410.0 - draw)
