"""Shared test configuration.

``pytest-timeout`` is not available in this environment, so hung-test
protection uses the standard library instead: when
``REPRO_TEST_TIMEOUT_S`` is set (the ``make test-chaos`` path),
:func:`faulthandler.dump_traceback_later` arms a watchdog that dumps
every thread's traceback and exits the process if the suite wedges —
a real risk for tests that kill process-pool workers on purpose.
"""

from __future__ import annotations

import faulthandler
import os

_TIMEOUT_ENV = "REPRO_TEST_TIMEOUT_S"


def pytest_configure(config):
    timeout = os.environ.get(_TIMEOUT_ENV)
    if not timeout:
        return
    faulthandler.enable()
    faulthandler.dump_traceback_later(float(timeout), exit=True)


def pytest_unconfigure(config):
    if os.environ.get(_TIMEOUT_ENV):
        faulthandler.cancel_dump_traceback_later()
