"""Tests for the extension modules: predictive scaling, Monte Carlo
reliability, TCO sensitivity, and the Figure 5–8 use-case experiments."""

import pytest

from repro.autoscale import PredictiveTrigger, TrendForecaster
from repro.errors import ConfigurationError, TCOError
from repro.experiments.usecases import run_fig5, run_fig6, run_fig7, run_fig8
from repro.reliability import (
    air_condition,
    compare_conditions,
    immersion_condition,
    simulate_fleet,
)
from repro.tco import sweep_energy_share, sweep_immersion_pue, sweep_oversubscription
from repro.telemetry import TimeSeries
from repro.thermal import HFE_7000


class TestTrendForecaster:
    def _rising_series(self, slope=0.001, start=0.2, samples=30, dt=5.0):
        series = TimeSeries()
        for index in range(samples):
            time = index * dt
            series.record(time, start + slope * time)
        return series, (samples - 1) * dt

    def test_extrapolates_linear_trend(self):
        series, now = self._rising_series()
        forecast = TrendForecaster(window_s=300.0).forecast(series, now, 60.0)
        expected = 0.2 + 0.001 * (now + 60.0)
        assert forecast.predicted == pytest.approx(expected, abs=0.01)
        assert forecast.slope_per_s == pytest.approx(0.001, abs=1e-5)

    def test_too_little_data_returns_none(self):
        series = TimeSeries()
        series.record(0.0, 0.5)
        assert TrendForecaster().forecast(series, 0.0, 60.0) is None

    def test_flat_series_zero_slope(self):
        series = TimeSeries()
        for index in range(10):
            series.record(index * 5.0, 0.4)
        forecast = TrendForecaster().forecast(series, 45.0, 60.0)
        assert forecast.slope_per_s == pytest.approx(0.0, abs=1e-9)

    def test_prediction_clamped(self):
        series, now = self._rising_series(slope=0.01)
        forecast = TrendForecaster().forecast(series, now, 600.0)
        assert forecast.predicted <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrendForecaster(window_s=0.0)
        series, now = self._rising_series()
        with pytest.raises(ConfigurationError):
            TrendForecaster().forecast(series, now, -1.0)


class TestPredictiveTrigger:
    def _trigger(self):
        return PredictiveTrigger(
            TrendForecaster(window_s=300.0), threshold=0.5, deploy_latency_s=60.0
        )

    def test_fires_ahead_of_crossing(self):
        series = TimeSeries()
        # Rising at 0.0015/s, sitting at ~0.42 now: the 0.5 threshold is
        # ~55 s away, inside the 60 s deploy window.
        for index in range(30):
            series.record(index * 5.0, 0.20 + 0.0015 * index * 5.0)
        trigger = self._trigger()
        assert trigger.should_preprovision(series, 145.0)
        assert trigger.residual_exposure_s(series, 145.0) > 0.0

    def test_quiet_when_flat(self):
        series = TimeSeries()
        for index in range(30):
            series.record(index * 5.0, 0.30)
        trigger = self._trigger()
        assert not trigger.should_preprovision(series, 145.0)
        assert trigger.residual_exposure_s(series, 145.0) == 0.0

    def test_quiet_when_crossing_beyond_deploy_window(self):
        series = TimeSeries()
        # Very gentle slope: crossing is minutes away; reactive is fine.
        for index in range(30):
            series.record(index * 5.0, 0.30 + 0.0001 * index * 5.0)
        trigger = self._trigger()
        assert not trigger.should_preprovision(series, 145.0)

    def test_defers_to_reactive_once_over_threshold(self):
        series = TimeSeries()
        for index in range(30):
            series.record(index * 5.0, 0.55)
        assert not self._trigger().should_preprovision(series, 145.0)


class TestMonteCarlo:
    def test_overclocked_air_fails_much_faster(self):
        air_nominal = simulate_fleet(air_condition(205.0, 0.90), servers=4000, seed=1)
        air_overclocked = simulate_fleet(air_condition(305.0, 0.98), servers=4000, seed=1)
        assert air_overclocked.mean_lifetime_years < air_nominal.mean_lifetime_years / 3
        assert air_overclocked.failed_within_5y > 0.9

    def test_immersion_restores_fleet_reliability(self):
        results = compare_conditions(
            {
                "air-oc": air_condition(305.0, 0.98),
                "hfe-oc": immersion_condition(HFE_7000, 305.0, 0.98),
            },
            servers=4000,
            seed=2,
        )
        assert (
            results["hfe-oc"].failed_within_5y < results["air-oc"].failed_within_5y / 1.5
        )

    def test_percentiles_ordered(self):
        result = simulate_fleet(air_condition(205.0, 0.90), servers=2000, seed=3)
        assert result.p10_lifetime_years < result.median_lifetime_years
        assert result.median_lifetime_years <= result.mean_lifetime_years * 1.5

    def test_afr(self):
        result = simulate_fleet(air_condition(205.0, 0.90), servers=2000, seed=4)
        assert result.annualized_failure_rate(5.0) == pytest.approx(
            result.failed_within_5y / 5.0
        )

    def test_reproducible(self):
        a = simulate_fleet(air_condition(205.0, 0.90), servers=500, seed=9)
        b = simulate_fleet(air_condition(205.0, 0.90), servers=500, seed=9)
        assert a.mean_lifetime_years == b.mean_lifetime_years

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_fleet(air_condition(205.0, 0.90), servers=0)


class TestTCOSensitivity:
    def test_energy_share_sweep_direction(self):
        """More expensive energy makes non-OC 2PIC *more* attractive and
        widens the gap to the overclockable variant."""
        points = sweep_energy_share()
        non_oc = [p.non_oc_cost_per_pcore for p in points]
        assert non_oc == sorted(non_oc, reverse=True)
        gaps = [p.oc_cost_per_pcore - p.non_oc_cost_per_pcore for p in points]
        assert gaps == sorted(gaps)

    def test_pue_sweep_direction(self):
        """Worse achieved PUE erodes the 2PIC saving."""
        points = sweep_immersion_pue()
        costs = [p.non_oc_cost_per_pcore for p in points]
        assert costs == sorted(costs)
        assert costs[0] == pytest.approx(0.93, abs=0.02)  # near the Table VI point

    def test_oversubscription_sweep_hits_paper_point(self):
        points = {p.oversubscription: p.oc_cost_per_vcore_vs_air for p in sweep_oversubscription()}
        assert points[0.10] == pytest.approx(-0.127, abs=0.01)  # the -13%
        ordered = [points[level] for level in sorted(points)]
        assert ordered == sorted(ordered, reverse=True)

    def test_energy_share_validation(self):
        with pytest.raises(TCOError):
            sweep_energy_share(shares=(1.5,))


class TestUseCases:
    def test_fig5_packing_dividend(self):
        result = run_fig5()
        assert result["vms_plain"] == 2
        assert result["vms_overclocked"] == 3
        bands = [band for _, band, _, _ in result["skus"]]
        assert bands == ["turbo", "green", "red"]

    def test_fig6_virtual_buffer(self):
        result = run_fig6()
        assert result["virtual_vms"] > result["static_vms"]
        assert result["failover_lost"] == 0
        assert result["failover_recreated"] == 7
        assert result["overclocked_hosts"] >= 1

    def test_fig7_gap_bridged(self):
        plan = run_fig7()
        assert plan.gap_vcores > 0
        assert plan.fully_bridged

    def test_fig8_maneuvers(self):
        timelines = run_fig8()
        for mode, samples in timelines.items():
            assert any(freq > 3.4 for _, freq in samples), mode
        # OC-A (acting at 40%) spends at least as long overclocked as
        # OC-E (acting at 50%).
        def overclocked_samples(samples):
            return sum(1 for _, freq in samples if freq > 3.4)

        assert overclocked_samples(timelines["oc-a"]) >= overclocked_samples(
            timelines["oc-e"]
        )
