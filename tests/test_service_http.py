"""In-process HTTP API tests: endpoints, ops, and a sustained load test.

The load test is the acceptance gate for the asyncio shell: a fleet of
concurrent client coroutines drives well over a thousand requests at a
:class:`~repro.service.server.ServiceServer` bound to an ephemeral port
*while the tick loop advances the simulation*, and every request must
complete within a generous wall-clock SLO. Everything runs on one event
loop in one process — no sockets leave localhost, no external client
library is involved — so the test is fast and deterministic enough for
the default suite.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.service import ServiceServer

#: Concurrency x depth of the load test (>= 1k requests total).
LOAD_CLIENTS = 8
LOAD_REQUESTS_PER_CLIENT = 150
#: Per-request wall SLO for the in-process load test. Generous: the
#: handlers are O(snapshot) and the loop is shared with the tick task.
LOAD_SLO_S = 0.25


async def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    reader: asyncio.StreamReader | None = None,
    writer: asyncio.StreamWriter | None = None,
) -> tuple[int, dict, bool]:
    """One HTTP exchange; returns (status, payload, connection_alive)."""
    opened_here = writer is None
    if opened_here:
        reader, writer = await asyncio.open_connection(host, port)
    assert reader is not None and writer is not None
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "\r\n"
    ).encode()
    writer.write(head + payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    keep_alive = False
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
        if name.strip().lower() == "connection":
            keep_alive = value.strip().lower() == "keep-alive"
    data = json.loads(await reader.readexactly(length)) if length else {}
    if opened_here:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return status, data, keep_alive


async def _start_server(tmp_path, **kwargs) -> ServiceServer:
    defaults = dict(
        cache_dir=str(tmp_path),
        run_id="http-test",
        seed=5,
        port=0,
        tick_interval_s=0.02,
    )
    defaults.update(kwargs)
    server = ServiceServer(**defaults)
    await server.start()
    return server


async def _wait_ready(server: ServiceServer) -> None:
    while not server._first_tick_done:
        await asyncio.sleep(0.005)


class TestEndpoints:
    def test_health_ready_telemetry_and_metrics(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            try:
                host, port = server.host, server.bound_port
                await _wait_ready(server)
                status, body, _ = await _request(host, port, "GET", "/healthz")
                assert (status, body["status"]) == (200, "ok")
                status, body, _ = await _request(host, port, "GET", "/readyz")
                assert (status, body["status"]) == (200, "ready")
                assert body["resumed"] is False
                status, body, _ = await _request(host, port, "GET", "/telemetry")
                assert status == 200
                assert body["mode"] == "robust"
                assert "admitted" in body["counters"]
                assert "requests_served" in body
                # Metrics cursor: samples strictly after `since`.
                status, body, _ = await _request(
                    host, port, "GET", "/metrics?since=1"
                )
                assert status == 200
                assert all(s["tick"] > 1 for s in body["samples"])
                assert body["latest"] >= max(
                    (s["tick"] for s in body["samples"]), default=0
                )
                status, body, _ = await _request(host, port, "GET", "/nope")
                assert status == 404
                status, body, _ = await _request(host, port, "POST", "/healthz")
                assert status == 405
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_ops_round_trip_and_validation(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            try:
                host, port = server.host, server.bound_port
                await _wait_ready(server)
                status, body, _ = await _request(
                    host, port, "POST", "/ops",
                    body={"op": "power-cap", "watts": 90.0},
                )
                assert status == 200
                assert body["applied"] == "power-cap"
                assert body["detail"] == "cap=90W"
                # The op is durable before the ack: it must be visible
                # in the telemetry snapshot's timeline immediately.
                status, body, _ = await _request(host, port, "GET", "/telemetry")
                assert status == 200
                assert body["timeline_events"] >= 1
                status, body, _ = await _request(
                    host, port, "POST", "/ops", body={"op": "bogus"}
                )
                assert status == 400
                assert "known ops" in body["error"]
                status, body, _ = await _request(
                    host, port, "POST", "/ops", body={"op": "demand-surge"}
                )
                assert status == 400
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_stream_delivers_per_tick_events(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            try:
                host, port = server.host, server.bound_port
                await _wait_ready(server)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET /stream?ticks=3 HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                assert b"200" in status_line
                while (await reader.readline()) not in (b"\r\n", b"\n"):
                    pass
                ticks = []
                for _ in range(3):
                    line = await asyncio.wait_for(reader.readline(), 5.0)
                    assert line.startswith(b"data: ")
                    ticks.append(json.loads(line[len(b"data: "):])["tick"])
                    blank = await reader.readline()
                    assert blank in (b"\n", b"\r\n")
                assert ticks == sorted(ticks)
                assert len(set(ticks)) == 3
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_bounded_run_finishes_and_stays_healthy(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path, max_ticks=5)
            try:
                host, port = server.host, server.bound_port
                assert server._tick_task is not None
                await server._tick_task
                status, body, _ = await _request(host, port, "GET", "/healthz")
                # A finished bounded run is done, not wedged.
                assert (status, body["status"]) == (200, "ok")
                assert body["tick"] == 5
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestSustainedLoad:
    def test_load_test_within_slo_while_ticking(self, tmp_path):
        """>= 1k requests complete within the SLO while the fleet ticks."""

        async def client(host: str, port: int, n: int, latencies: list[float]):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for i in range(n):
                    path = "/telemetry" if i % 3 else "/metrics?since=0"
                    begin = time.monotonic()
                    status, body, keep_alive = await _request(
                        host, port, "GET", path, reader=reader, writer=writer
                    )
                    latencies.append(time.monotonic() - begin)
                    assert status == 200
                    assert keep_alive
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass

        async def scenario():
            server = await _start_server(tmp_path, run_id="http-load")
            try:
                host, port = server.host, server.bound_port
                await _wait_ready(server)
                tick_before = server.core.tick_index
                latencies: list[float] = []
                await asyncio.gather(
                    *(
                        client(host, port, LOAD_REQUESTS_PER_CLIENT, latencies)
                        for _ in range(LOAD_CLIENTS)
                    )
                )
                total = LOAD_CLIENTS * LOAD_REQUESTS_PER_CLIENT
                assert len(latencies) == total
                assert total >= 1000
                latencies.sort()
                p99 = latencies[int(0.99 * (len(latencies) - 1))]
                assert p99 < LOAD_SLO_S, f"load-test p99 {p99:.3f}s breaches SLO"
                # The tick loop kept running underneath the load...
                assert server.core.tick_index > tick_before
                # ...and the telemetry endpoint accounts for the traffic.
                status, body, _ = await _request(host, port, "GET", "/telemetry")
                assert status == 200
                assert body["requests_served"] >= total
                for counter in (
                    "offered",
                    "admitted",
                    "rejected_throttled",
                    "rejected_brownout",
                    "shed_low_priority",
                    "completed_ok",
                ):
                    assert counter in body["counters"]
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestServerRestart:
    def test_server_resumes_from_wal(self, tmp_path):
        async def first():
            server = await _start_server(tmp_path, run_id="http-resume")
            try:
                await _wait_ready(server)
                while server.core.tick_index < 3:
                    await asyncio.sleep(0.005)
                return server.core.tick_index, server.core.signature
            finally:
                await server.stop()

        async def second():
            server = await _start_server(tmp_path, run_id="http-resume")
            try:
                host, port = server.host, server.bound_port
                await _wait_ready(server)
                status, body, _ = await _request(host, port, "GET", "/readyz")
                assert status == 200
                assert body["resumed"] is True
                return server.session.replayed_ticks
            finally:
                await server.stop()

        ticks, signature = asyncio.run(first())
        assert ticks >= 3 and signature
        replayed = asyncio.run(second())
        assert replayed >= 3


class TestValidation:
    def test_constructor_rejects_bad_intervals(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            ServiceServer(str(tmp_path), "x", seed=1, tick_interval_s=0.0)
        with pytest.raises(ReproError):
            ServiceServer(str(tmp_path), "x", seed=1, max_ticks=0)
