"""Driver process for the rollout SIGKILL chaos test.

Runs the canary arm of the envelope-rollout experiment with a journal,
deliberately slowed so the parent test can SIGKILL it mid-rollout (the
per-tick delay never affects results — only wall-clock pacing). The
parent then resumes the campaign in-process from the surviving WAL and
asserts the run signature is bit-identical to an uninterrupted run.

Invoked as ``python -m tests.rollouthelper <cache_dir> <run_id>``.
"""

from __future__ import annotations

import sys

from repro.engine.journal import journal_path
from repro.experiments.envelope_rollout import RolloutRunResult, run_rollout_mode

#: Seed the chaos campaign runs under (any seed works; pin one so the
#: parent's reference run matches).
SEED = 1

#: Wall-clock pause per world tick in the child — wide enough that the
#: parent reliably lands its SIGKILL between journaled ticks.
SLEEP_S = 0.15


def run_rollout(
    cache_dir: str, run_id: str, tick_delay_s: float = 0.0
) -> RolloutRunResult:
    """One canary-arm run journaled under ``cache_dir``/journal."""
    return run_rollout_mode(
        canary=True,
        seed=SEED,
        journal_path=journal_path(cache_dir, run_id),
        run_id=run_id,
        tick_delay_s=tick_delay_s,
    )


def main() -> int:
    cache_dir, run_id = sys.argv[1], sys.argv[2]
    result = run_rollout(cache_dir, run_id, tick_delay_s=SLEEP_S)
    print(f"ROLLOUT-DONE {result.run_signature}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
