"""Tests for the thermal substrate: fluids, cooling catalog, junctions, tanks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    CapacityError,
    ConfigurationError,
    CoolingCapacityExceeded,
    ThermalError,
)
from repro.thermal import (
    CHILLERS,
    COOLING_TECHNOLOGIES,
    DIRECT_EVAPORATIVE,
    FC_3284,
    HFE_7000,
    TWO_PHASE_IMMERSION,
    BECPlacement,
    ImmersedLoad,
    JunctionModel,
    ThermalChamber,
    air_junction_model,
    bec_required,
    fluid_by_name,
    heat_flux_w_per_cm2,
    immersion_junction_model,
    immersion_power_savings,
    large_tank,
    small_tank_1,
    small_tank_2,
    technology_by_name,
)


class TestFluids:
    def test_table2_properties(self):
        assert FC_3284.boiling_point_c == 50.0
        assert FC_3284.dielectric_constant == 1.86
        assert FC_3284.latent_heat_j_per_g == 105.0
        assert HFE_7000.boiling_point_c == 34.0
        assert HFE_7000.dielectric_constant == 7.4
        assert HFE_7000.latent_heat_j_per_g == 142.0
        assert FC_3284.useful_life_years >= 30
        assert HFE_7000.useful_life_years >= 30

    def test_vaporization_rate(self):
        # 105 W boils 1 g/s of FC-3284.
        assert FC_3284.vaporization_rate_g_per_s(105.0) == pytest.approx(1.0)
        assert HFE_7000.vaporization_rate_g_per_s(142.0) == pytest.approx(1.0)

    def test_lookup(self):
        assert fluid_by_name("FC-3284") is FC_3284
        with pytest.raises(ConfigurationError):
            fluid_by_name("water")

    def test_pool_sits_at_boiling_point(self):
        assert FC_3284.pool_temperature_c() == FC_3284.boiling_point_c


class TestCoolingCatalog:
    def test_table1_pue_ordering(self):
        """Table I: PUE improves monotonically down the catalog."""
        pues = [tech.average_pue for tech in COOLING_TECHNOLOGIES]
        assert pues == sorted(pues, reverse=True)
        assert COOLING_TECHNOLOGIES[0] is CHILLERS
        assert COOLING_TECHNOLOGIES[-1] is TWO_PHASE_IMMERSION

    def test_2pic_figures(self):
        assert TWO_PHASE_IMMERSION.average_pue == 1.02
        assert TWO_PHASE_IMMERSION.peak_pue == 1.03
        assert TWO_PHASE_IMMERSION.fan_overhead == 0.0
        assert TWO_PHASE_IMMERSION.max_server_cooling_watts >= 4000

    def test_air_cannot_cool_future_servers(self):
        with pytest.raises(CoolingCapacityExceeded):
            DIRECT_EVAPORATIVE.check_capacity(900.0)
        TWO_PHASE_IMMERSION.check_capacity(900.0)

    def test_facility_power(self):
        assert CHILLERS.facility_watts(1000.0) == pytest.approx(1700.0)
        assert CHILLERS.overhead_watts(1000.0, peak=True) == pytest.approx(1000.0)

    def test_lookup(self):
        assert technology_by_name("2PIC") is TWO_PHASE_IMMERSION
        with pytest.raises(ConfigurationError):
            technology_by_name("magic")

    def test_power_savings_decomposition_matches_paper(self):
        """Section IV: ~182 W per 700 W server (2×11 static + 42 fans + 118 PUE)."""
        savings = immersion_power_savings(
            server_watts=700.0,
            fan_watts=42.0,
            static_savings_per_socket_watts=11.0,
            sockets=2,
        )
        assert savings.static_watts == pytest.approx(22.0)
        assert savings.fan_watts == pytest.approx(42.0)
        assert savings.pue_watts == pytest.approx(118.0, abs=2.0)
        assert savings.total_watts == pytest.approx(182.0, abs=3.0)


class TestJunctionModel:
    def test_linear_in_power(self):
        model = JunctionModel(reference_temp_c=50.0, thermal_resistance_c_per_w=0.1)
        assert model.junction_temp_c(0.0) == 50.0
        assert model.junction_temp_c(200.0) == pytest.approx(70.0)

    def test_max_power_inverse(self):
        model = JunctionModel(reference_temp_c=50.0, thermal_resistance_c_per_w=0.1, tj_max_c=90.0)
        assert model.max_power_watts() == pytest.approx(400.0)
        assert model.junction_temp_c(model.max_power_watts()) == pytest.approx(90.0)

    def test_check_raises_above_tjmax(self):
        model = JunctionModel(reference_temp_c=50.0, thermal_resistance_c_per_w=0.1, tj_max_c=90.0)
        model.check(400.0)
        with pytest.raises(ThermalError):
            model.check(401.0)

    def test_immersion_reference_is_boiling_point(self):
        model = immersion_junction_model(FC_3284, bec=BECPlacement.CPU_IHS)
        assert model.reference_temp_c == 50.0
        assert model.thermal_resistance_c_per_w == 0.08

    def test_bec_halves_resistance(self):
        coated = immersion_junction_model(FC_3284, bec=BECPlacement.COPPER_PLATE)
        uncoated = immersion_junction_model(FC_3284, bec=BECPlacement.NONE)
        assert uncoated.thermal_resistance_c_per_w == pytest.approx(
            2 * coated.thermal_resistance_c_per_w
        )

    def test_air_model_includes_rise(self):
        model = air_junction_model(inlet_temp_c=35.0, thermal_resistance_c_per_w=0.22,
                                   air_rise_c=12.0)
        assert model.reference_temp_c == 47.0

    @given(st.floats(min_value=0, max_value=400), st.floats(min_value=0, max_value=400))
    def test_monotone_in_power(self, p1, p2):
        model = immersion_junction_model(HFE_7000)
        low, high = sorted([p1, p2])
        assert model.junction_temp_c(low) <= model.junction_temp_c(high)

    def test_heat_flux_and_bec_requirement(self):
        assert heat_flux_w_per_cm2(205.0, 6.0) == pytest.approx(34.2, rel=0.01)
        assert bec_required(205.0, 6.0)
        assert not bec_required(50.0, 6.0)


class TestThermalChamber:
    def test_paper_defaults(self):
        chamber = ThermalChamber()
        assert chamber.airflow_cfm == 110.0
        assert chamber.inlet_temp_c == 35.0
        assert chamber.air_rise_c() == pytest.approx(12.0)

    def test_more_airflow_less_rise(self):
        assert ThermalChamber(airflow_cfm=220.0).air_rise_c() == pytest.approx(6.0)

    def test_junction_model_reference(self):
        model = ThermalChamber().junction_model(0.22)
        assert model.reference_temp_c == pytest.approx(47.0)


class TestImmersionTank:
    def test_prototype_configs(self):
        tank1, tank2, big = small_tank_1(), small_tank_2(), large_tank()
        assert tank1.fluid is HFE_7000
        assert tank2.fluid is FC_3284
        assert big.fluid is FC_3284
        assert tank1.slots == 2
        assert big.slots == 36

    def test_immerse_and_remove(self):
        tank = small_tank_1()
        tank.immerse(ImmersedLoad("server-1", 255.0))
        assert tank.occupied_slots == 1
        assert tank.total_heat_watts == 255.0
        removed = tank.remove("server-1")
        assert removed.power_watts == 255.0
        assert tank.occupied_slots == 0

    def test_servicing_costs_vapor(self):
        tank = small_tank_1()
        tank.immerse(ImmersedLoad("server-1", 255.0))
        before = tank.remaining_fluid_grams()
        tank.remove("server-1")
        assert tank.remaining_fluid_grams() < before
        assert tank.vapor.servicing_events == 1

    def test_slot_capacity_enforced(self):
        tank = small_tank_1()
        tank.immerse(ImmersedLoad("a", 100.0))
        tank.immerse(ImmersedLoad("b", 100.0))
        with pytest.raises(CapacityError):
            tank.immerse(ImmersedLoad("c", 100.0))

    def test_condenser_capacity_enforced(self):
        tank = small_tank_1()
        with pytest.raises(CoolingCapacityExceeded):
            tank.immerse(ImmersedLoad("hot", 3000.0))

    def test_duplicate_name_rejected(self):
        tank = small_tank_1()
        tank.immerse(ImmersedLoad("a", 100.0))
        with pytest.raises(ConfigurationError):
            tank.immerse(ImmersedLoad("a", 100.0))

    def test_overclocking_power_raise_checked(self):
        tank = small_tank_1()
        tank.immerse(ImmersedLoad("a", 255.0))
        tank.set_load_power("a", 355.0)
        assert tank.total_heat_watts == 355.0
        with pytest.raises(CoolingCapacityExceeded):
            tank.set_load_power("a", 5000.0)

    def test_large_tank_fits_full_overclocked_fleet(self):
        tank = large_tank()
        for index in range(36):
            tank.immerse(ImmersedLoad(f"blade-{index}", 700.0 + 200.0))
        assert tank.free_slots == 0
        assert tank.headroom_watts >= 0

    def test_circulation_rate(self):
        tank = small_tank_2()
        tank.immerse(ImmersedLoad("a", 105.0))
        assert tank.circulation_rate_g_per_s() == pytest.approx(1.0)

    def test_junction_model_for_load(self):
        tank = small_tank_1()
        tank.immerse(ImmersedLoad("a", 255.0, bec=BECPlacement.CPU_IHS))
        model = tank.junction_model_for("a")
        assert model.reference_temp_c == HFE_7000.boiling_point_c
