"""Unit tests for the silicon-health substrate.

Covers the latent part physics (:mod:`repro.health.part`), the sampled
machine-check stream, the changepoint detectors, the screening
scheduler's bisection bound, the duplicate-execution SDC auditor, the
guard's health envelope, the silicon-health fault injectors, and the
service-core audit wiring (which must be provably inert at defaults).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, InjectionError
from repro.faults import (
    FaultCampaign,
    FaultKind,
    FaultPlan,
    FaultSpec,
    SiliconHealthInjector,
    register_health_injectors,
)
from repro.health import (
    DriftDetector,
    EwmaRateDetector,
    FleetHeterogeneity,
    MachineCheckStream,
    ScreeningScheduler,
    SdcAuditor,
    SiliconPart,
    result_signature,
    sample_fleet,
)
from repro.reliability.governor import OverclockGuard
from repro.reliability.stability import StabilityModel
from repro.service import ServiceConfig, ServiceCore
from repro.sim import Simulator

#: A loud, steep model so unit tests see events in few windows.
MODEL = StabilityModel(
    stable_margin=1.23,
    crash_margin=1.35,
    base_error_rate_per_hour=0.5,
    ramp_width=0.02,
    background_error_rate_per_hour=0.0127,
)


class TestSiliconPart:
    def test_drift_starts_at_onset_and_accumulates(self):
        part = SiliconPart(
            "h0", nominal=MODEL, drift_rate_per_khour=0.1, drift_onset_hours=100.0
        )
        assert part.drift_at(0.0) == 0.0
        assert part.drift_at(100.0) == 0.0
        assert part.drift_at(600.0) == pytest.approx(0.05)
        part.inject_drift(0.02)
        assert part.drift_at(0.0) == pytest.approx(0.02)
        assert part.drift_at(600.0) == pytest.approx(0.07)

    def test_injected_drift_must_be_positive(self):
        part = SiliconPart("h0", nominal=MODEL)
        with pytest.raises(ConfigurationError):
            part.inject_drift(0.0)
        with pytest.raises(ConfigurationError):
            part.inject_drift(-0.01)

    def test_effective_margins_walk_down_with_drift(self):
        part = SiliconPart(
            "h0",
            nominal=MODEL,
            margin_offset=0.01,
            drift_rate_per_khour=0.1,
            drift_onset_hours=0.0,
        )
        assert part.effective_stable_margin(0.0) == pytest.approx(1.24)
        assert part.effective_crash_margin(0.0) == pytest.approx(1.36)
        assert part.effective_stable_margin(1000.0) == pytest.approx(1.14)
        assert part.shifted_ratio(1.23, 1000.0) == pytest.approx(1.32)

    def test_sdc_band_opens_past_onset_only(self):
        part = SiliconPart("h0", nominal=MODEL, sdc_onset=0.05, sdc_per_error=0.05)
        # Inside the stable margin and inside the pre-SDC ramp: silent
        # corruption rate is exactly zero even though CEs already flow.
        assert part.sdc_rate_per_hour(1.23, 0.0) == 0.0
        assert part.sdc_rate_per_hour(1.27, 0.0) == 0.0
        inside_band = part.sdc_rate_per_hour(1.30, 0.0)
        assert inside_band > 0.0
        ramp = part.correctable_error_rate_per_hour(1.30, 0.0) - (
            MODEL.background_error_rate_per_hour
        )
        assert inside_band == pytest.approx(ramp * 0.05)

    def test_crashes_beyond_effective_crash_margin(self):
        part = SiliconPart("h0", nominal=MODEL, margin_offset=-0.01)
        assert not part.crashes(1.33, 0.0)
        assert part.crashes(1.34, 0.0)
        part.inject_drift(0.10)
        assert part.crashes(1.24, 0.0)

    def test_background_floor_inside_margin(self):
        part = SiliconPart("h0", nominal=MODEL)
        assert part.correctable_error_rate_per_hour(1.0, 0.0) == pytest.approx(
            MODEL.background_error_rate_per_hour
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SiliconPart("h0", drift_rate_per_khour=-0.1)
        with pytest.raises(ConfigurationError):
            SiliconPart("h0", sdc_onset=0.0)
        with pytest.raises(ConfigurationError):
            SiliconPart("h0", sdc_per_error=-1.0)


class TestSampleFleet:
    HOSTS = tuple(f"p{i:02d}" for i in range(8))

    def test_same_seed_same_silicon(self):
        first = sample_fleet(7, self.HOSTS, nominal=MODEL)
        second = sample_fleet(7, self.HOSTS, nominal=MODEL)
        assert first == second

    def test_adding_hosts_never_perturbs_existing_silicon(self):
        small = sample_fleet(7, self.HOSTS[:4], nominal=MODEL)
        large = sample_fleet(7, self.HOSTS, nominal=MODEL)
        for host in self.HOSTS[:4]:
            assert small[host] == large[host]

    def test_offsets_spread_and_clip(self):
        het = FleetHeterogeneity(offset_sigma=0.008)
        parts = sample_fleet(3, self.HOSTS, heterogeneity=het, nominal=MODEL)
        offsets = [part.margin_offset for part in parts.values()]
        assert len(set(offsets)) > 1
        assert all(abs(offset) <= 3 * het.offset_sigma for offset in offsets)

    def test_drift_prone_fraction_edges(self):
        none = sample_fleet(
            3,
            self.HOSTS,
            heterogeneity=FleetHeterogeneity(drift_prone_fraction=0.0),
        )
        assert all(part.drift_rate_per_khour == 0.0 for part in none.values())
        everyone = sample_fleet(
            3,
            self.HOSTS,
            heterogeneity=FleetHeterogeneity(drift_prone_fraction=1.0),
        )
        assert all(part.drift_rate_per_khour > 0.0 for part in everyone.values())

    def test_heterogeneity_validation(self):
        with pytest.raises(ConfigurationError):
            FleetHeterogeneity(offset_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            FleetHeterogeneity(drift_prone_fraction=1.5)
        with pytest.raises(ConfigurationError):
            FleetHeterogeneity(drift_rate_lo=0.2, drift_rate_hi=0.1)


def _hot_fleet():
    """Two hosts run deep in the ramp so every window sees CEs."""
    parts = {
        "a": SiliconPart("a", nominal=MODEL),
        "b": SiliconPart("b", nominal=MODEL),
    }
    return parts


class TestMachineCheckStream:
    def test_stream_is_deterministic_per_seed(self):
        events_a = MachineCheckStream(5, _hot_fleet()).sample_fleet_window(
            0.0, 8.0, {"a": 1.30, "b": 1.30}
        )
        events_b = MachineCheckStream(5, _hot_fleet()).sample_fleet_window(
            0.0, 8.0, {"a": 1.30, "b": 1.30}
        )
        assert events_a == events_b
        assert MachineCheckStream(6, _hot_fleet()).sample_fleet_window(
            0.0, 8.0, {"a": 1.30, "b": 1.30}
        ) != events_a

    def test_events_stamped_at_window_end(self):
        events = MachineCheckStream(5, _hot_fleet()).sample_window("a", 10.0, 8.0, 1.30)
        assert events
        assert all(event.time_hours == 18.0 for event in events)

    def test_injected_burst_lands_once_with_detail(self):
        stream = MachineCheckStream(5, _hot_fleet())
        stream.inject_burst("a", 24)
        first = stream.sample_window("a", 0.0, 1.0, 1.0)
        ce = [event for event in first if event.kind == "ce"]
        assert len(ce) == 1
        assert ce[0].count >= 24
        assert ce[0].detail == "burst=24"
        # The burst is consumed: the next window is back to background.
        again = stream.sample_window("a", 1.0, 1.0, 1.0)
        assert all(event.detail != "burst=24" for event in again)

    def test_bursts_accumulate_until_sampled(self):
        stream = MachineCheckStream(5, _hot_fleet())
        stream.inject_burst("a", 10)
        stream.inject_burst("a", 5)
        events = stream.sample_window("a", 0.0, 1.0, 1.0)
        ce = [event for event in events if event.kind == "ce"]
        assert ce[0].detail == "burst=15"

    def test_certain_crash_beyond_crash_margin(self):
        stream = MachineCheckStream(5, _hot_fleet())
        events = stream.sample_window("a", 0.0, 8.0, 1.40)
        crashes = [event for event in events if event.kind == "crash"]
        assert len(crashes) == 1
        assert crashes[0].detail == "beyond crash margin"

    def test_hosts_absent_from_ratios_are_skipped(self):
        stream = MachineCheckStream(5, _hot_fleet())
        events = stream.sample_fleet_window(0.0, 8.0, {"a": 1.30})
        assert {event.host_id for event in events} == {"a"}

    def test_cumulative_counter_tracks_ce_mass(self):
        stream = MachineCheckStream(5, _hot_fleet())
        total = 0
        for window in range(4):
            events = stream.sample_window("a", float(window), 1.0, 1.30)
            total += sum(event.count for event in events if event.kind == "ce")
        assert stream.cumulative_errors("a") == total
        assert stream.cumulative_errors("b") == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MachineCheckStream(-1, _hot_fleet())
        with pytest.raises(ConfigurationError):
            MachineCheckStream(5, _hot_fleet(), errors_per_crash=0.0)
        stream = MachineCheckStream(5, _hot_fleet())
        with pytest.raises(ConfigurationError):
            stream.sample_window("a", 0.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            stream.inject_burst("zz", 3)
        with pytest.raises(ConfigurationError):
            stream.inject_burst("a", 0)


class TestDetectors:
    def test_cusum_accumulates_only_excess(self):
        detector = DriftDetector(
            reference_rate_per_hour=0.0, slack_per_hour=0.25, threshold_errors=4.0
        )
        assert not detector.observe(1.0, 0.0)
        assert detector.statistic == 0.0  # never goes negative
        assert not detector.observe(1.0, 2.0)
        assert detector.statistic == pytest.approx(1.75)
        assert detector.observe(1.0, 3.0)  # 1.75 + 2.75 = 4.5 > 4
        assert detector.fired == 1
        assert detector.observe(1.0, 0.0)  # decays by slack, still over
        detector.reset()
        assert detector.statistic == 0.0

    def test_cusum_quiet_stretch_banks_no_credit(self):
        detector = DriftDetector(slack_per_hour=1.0, threshold_errors=4.0)
        for _ in range(100):
            detector.observe(1.0, 0.0)
        # A century of silence, then a spike: fires exactly as if fresh.
        assert not detector.observe(1.0, 4.9)
        assert detector.observe(1.0, 2.2)

    def test_ewma_smooths_toward_the_rate(self):
        detector = EwmaRateDetector(trip_rate_per_hour=1.0, half_life_hours=1.0)
        assert detector.observe(1.0, 4.0)  # alpha = 0.5 -> 2.0 > 1.0
        assert detector.statistic == pytest.approx(2.0)
        assert not detector.observe(1.0, 0.0)  # decays to 1.0, not over
        detector.reset()
        assert detector.statistic == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(reference_rate_per_hour=-1.0)
        with pytest.raises(ConfigurationError):
            DriftDetector(threshold_errors=0.0)
        with pytest.raises(ConfigurationError):
            DriftDetector().observe(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            DriftDetector().observe(1.0, -1.0)
        with pytest.raises(ConfigurationError):
            EwmaRateDetector(trip_rate_per_hour=0.0)
        with pytest.raises(ConfigurationError):
            EwmaRateDetector(half_life_hours=0.0)


class TestScreening:
    def test_bisection_pins_the_margin_within_the_overshoot_bound(self):
        part = SiliconPart("a", nominal=MODEL, margin_offset=-0.02)
        scheduler = ScreeningScheduler({"a": part})
        scheduler.enqueue("a", 0.0)
        scheduler.poll(0.0)
        reports = scheduler.poll(scheduler.duration_hours)
        assert len(reports) == 1
        report = reports[0]
        true_margin = part.effective_stable_margin(report.completed_hours)
        assert report.estimated_stable_margin >= true_margin - scheduler.resolution
        assert report.estimated_stable_margin <= true_margin + scheduler.max_overshoot(part)
        assert report.envelope_ratio == pytest.approx(
            max(1.0, report.estimated_stable_margin - scheduler.guard_band)
        )
        assert report.probes >= 1

    def test_guard_band_dominates_the_overshoot(self):
        part = SiliconPart("a", nominal=MODEL)
        scheduler = ScreeningScheduler({"a": part})
        assert scheduler.guard_band > scheduler.max_overshoot(part)

    def test_dead_part_has_no_headroom(self):
        part = SiliconPart("a", nominal=MODEL)
        part.inject_drift(0.5)  # crashes even at stock
        scheduler = ScreeningScheduler({"a": part})
        scheduler.enqueue("a", 0.0)
        scheduler.poll(0.0)
        report = scheduler.poll(scheduler.duration_hours)[0]
        assert report.estimated_stable_margin == scheduler.lo_ratio
        assert report.envelope_ratio == 1.0
        assert report.probes == 0

    def test_fifo_with_bounded_rigs(self):
        parts = _hot_fleet()
        scheduler = ScreeningScheduler(parts, max_concurrent=1)
        scheduler.enqueue("a", 0.0)
        scheduler.enqueue("b", 0.0)
        scheduler.enqueue("a", 0.0)  # idempotent re-enqueue
        assert scheduler.poll(0.0) == []  # starts a only
        assert scheduler.pending("a") and scheduler.pending("b")
        first = scheduler.poll(4.0)  # a completes, b starts
        assert [report.host_id for report in first] == ["a"]
        assert not scheduler.pending("a")
        second = scheduler.poll(8.0)
        assert [report.host_id for report in second] == ["b"]
        assert second[0].started_hours == 4.0
        assert scheduler.screens_completed == 2

    def test_validation(self):
        parts = _hot_fleet()
        with pytest.raises(ConfigurationError):
            ScreeningScheduler(parts, duration_hours=0.0)
        with pytest.raises(ConfigurationError):
            ScreeningScheduler(parts, max_concurrent=0)
        with pytest.raises(ConfigurationError):
            ScreeningScheduler(parts, lo_ratio=1.5, hi_ratio=1.5)
        with pytest.raises(ConfigurationError):
            ScreeningScheduler(parts).enqueue("zz", 0.0)


class TestSdcAuditor:
    def test_sampling_is_order_independent(self):
        ids = [f"r{i}" for i in range(200)]
        auditor = SdcAuditor(9, 0.3)
        forward = [rid for rid in ids if auditor.should_audit(rid)]
        backward = [rid for rid in reversed(ids) if auditor.should_audit(rid)]
        assert forward == list(reversed(backward))
        assert 0 < len(forward) < len(ids)

    def test_fraction_edges(self):
        never = SdcAuditor(9, 0.0)
        always = SdcAuditor(9, 1.0)
        for rid in ("r1", "r2", "r3"):
            assert not never.should_audit(rid)
            assert always.should_audit(rid)

    def test_corrupts_is_a_pure_function_of_inputs(self):
        auditor = SdcAuditor(9, 1.0)
        draws = [auditor.corrupts("h0", f"r{i}", 0.5) for i in range(100)]
        assert draws == [auditor.corrupts("h0", f"r{i}", 0.5) for i in range(100)]
        assert any(draws) and not all(draws)
        assert not auditor.corrupts("h0", "r1", 0.0)

    def test_clean_pair_matches(self):
        auditor = SdcAuditor(9, 1.0)
        assert auditor.audit("r1", "h0", "h1", False, False) is None
        assert auditor.audits == 1
        assert auditor.mismatches == 0
        assert auditor.records["h0"].audits == 1
        assert auditor.records["h1"].audits == 1

    def test_corrupted_side_is_charged(self):
        auditor = SdcAuditor(9, 1.0)
        assert auditor.audit("r1", "h0", "h1", True, False) == "h0"
        assert auditor.audit("r2", "h0", "h1", False, True) == "h1"
        assert auditor.mismatches == 2
        assert auditor.records["h0"].mismatches == 1
        assert auditor.records["h1"].mismatches == 1

    def test_both_corrupted_charges_both_returns_primary(self):
        charged: list[str] = []
        auditor = SdcAuditor(9, 1.0, on_mismatch=charged.append)
        assert auditor.audit("r1", "h0", "h1", True, True) == "h0"
        assert sorted(charged) == ["h0", "h1"]

    def test_duplicate_execution_needs_a_distinct_host(self):
        with pytest.raises(ConfigurationError):
            SdcAuditor(9, 1.0).audit("r1", "h0", "h0", False, False)

    def test_result_signatures(self):
        assert result_signature("r1", "h0", False) == result_signature("r1", "h9", False)
        assert result_signature("r1", "h0", True) != result_signature("r1", "h1", True)
        assert result_signature("r1", "h0", True) != result_signature("r1", "h0", False)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SdcAuditor(-1, 0.5)
        with pytest.raises(ConfigurationError):
            SdcAuditor(9, 1.5)


class TestGuardHealthEnvelope:
    def test_health_limit_caps_the_grant(self):
        guard = OverclockGuard(stability=StabilityModel())
        assert guard.decide(1.23).granted_ratio == pytest.approx(1.23)
        guard.set_health_limit(1.10)
        decision = guard.decide(1.23)
        assert decision.granted_ratio == pytest.approx(1.10)
        assert decision.limited_by == "health"
        assert guard.health_limit_ratio == pytest.approx(1.10)

    def test_tighter_of_stability_and_health_wins(self):
        guard = OverclockGuard(stability=StabilityModel())
        guard.set_health_limit(1.30)  # looser than the stable margin
        assert guard.decide(1.33).limited_by == "stability"

    def test_clear_restores_the_nominal_envelope(self):
        guard = OverclockGuard(stability=StabilityModel())
        guard.set_health_limit(1.0)
        assert guard.decide(1.23).granted_ratio == pytest.approx(1.0)
        guard.clear_health_limit()
        assert guard.decide(1.23).granted_ratio == pytest.approx(1.23)
        assert guard.health_limit_ratio is None

    def test_limit_below_stock_is_rejected(self):
        guard = OverclockGuard(stability=StabilityModel())
        with pytest.raises(ConfigurationError):
            guard.set_health_limit(0.9)


class TestHealthInjectors:
    def _spec(self, kind, target, magnitude=0.0):
        return FaultSpec(kind=kind, target=target, at_s=10.0, magnitude=magnitude)

    def test_all_three_kinds_fire_through_their_callbacks(self):
        simulator = Simulator(seed=1)
        plan = FaultPlan(
            seed=1,
            scenario="unit",
            specs=(
                self._spec(FaultKind.SILICON_MARGIN_DRIFT, "a", 0.03),
                self._spec(FaultKind.MCE_BURST, "b", 24.0),
                self._spec(FaultKind.SDC, "a"),
            ),
        )
        campaign = FaultCampaign(simulator, plan)
        fired: list[tuple] = []
        register_health_injectors(
            campaign,
            on_drift=lambda host, magnitude: fired.append(("drift", host, magnitude)),
            on_burst=lambda host, count: fired.append(("burst", host, count)),
            on_sdc=lambda host: fired.append(("sdc", host)),
        )
        campaign.arm()
        simulator.run(until=20.0)
        assert ("drift", "a", 0.03) in fired
        assert ("burst", "b", 24) in fired
        assert ("sdc", "a") in fired
        kinds = {event.kind for event in campaign.timeline.events}
        assert {"silicon-margin-drift", "mce-burst", "sdc"} <= kinds

    def test_injector_validation(self):
        with pytest.raises(InjectionError):
            SiliconHealthInjector(FaultKind.HOST_FAILURE)
        simulator = Simulator(seed=1)
        bad_drift = FaultPlan(
            seed=1,
            scenario="unit",
            specs=(self._spec(FaultKind.SILICON_MARGIN_DRIFT, "a", 0.0),),
        )
        campaign = FaultCampaign(simulator, bad_drift)
        campaign.register(
            SiliconHealthInjector(
                FaultKind.SILICON_MARGIN_DRIFT,
                on_drift=lambda host, magnitude: None,
            )
        )
        with pytest.raises(InjectionError):
            campaign.arm()
        # A spec whose kind has no callback wired is rejected at arm time.
        no_callback = FaultPlan(
            seed=1,
            scenario="unit",
            specs=(self._spec(FaultKind.MCE_BURST, "a", 5.0),),
        )
        campaign = FaultCampaign(Simulator(seed=1), no_callback)
        campaign.register(SiliconHealthInjector(FaultKind.MCE_BURST))
        with pytest.raises(InjectionError):
            campaign.arm()


class TestServiceAudit:
    def test_audit_is_inert_at_defaults(self):
        core = ServiceCore(seed=11)
        for _ in range(20):
            core.tick()
        assert core.health.audits == 0
        assert core.health.sdc_escapes == 0
        snapshot = core.snapshot()
        assert set(snapshot["health"]) >= {"audits", "sdc_caught", "sdc_escapes"}
        assert all(value == 0 for value in snapshot["health"].values())

    def test_sampling_alone_never_changes_the_tick_signature(self):
        # Auditing draws from its own split-seed stream and books into
        # HealthCounters, so turning sampling on (with no corrupting
        # host) must leave the chained tick signature bit-identical.
        plain = ServiceCore(seed=11)
        audited = ServiceCore(
            seed=11, config=ServiceConfig(sdc_audit_fraction=0.5)
        )
        for _ in range(20):
            plain.tick()
            audited.tick()
        assert plain.signature == audited.signature
        assert audited.health.audits > 0
        assert audited.health.audit_mismatches == 0

    def test_robust_audit_catches_what_naive_leaks(self):
        config = ServiceConfig(
            sdc_audit_fraction=0.5,
            sdc_faulty_hosts=("h0", "h1"),
            sdc_corruption_per_request=0.4,
        )
        robust = ServiceCore(seed=3, mode="robust", config=config)
        naive = ServiceCore(
            seed=3,
            mode="naive",
            config=ServiceConfig(
                sdc_faulty_hosts=("h0", "h1"), sdc_corruption_per_request=0.4
            ),
        )
        for _ in range(30):
            robust.tick()
            naive.tick()
        assert robust.health.sdc_caught > 0
        assert robust.health.audit_mismatches == robust.health.sdc_caught
        assert naive.health.audits == 0
        assert naive.health.sdc_caught == 0
        assert naive.health.sdc_escapes > 0

    def test_audit_needs_a_second_host(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(hosts=1, sdc_audit_fraction=0.5)
        with pytest.raises(ConfigurationError):
            ServiceConfig(sdc_audit_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ServiceConfig(sdc_corruption_per_request=-0.1)
