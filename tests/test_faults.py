"""Fault-injection subsystem: plans, campaigns, injectors, recovery.

The determinism contract under test: a :class:`FaultPlan` plus a seed
fully determines the injected fault timeline — its SHA-256 signature is
bit-identical across runs, and changing the seed re-rolls every sampled
fault time. ``REPRO_CHAOS_SEEDS`` (space-separated ints) widens the
seed matrix for ``make test-chaos``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster.host import Host
from repro.cluster.lifecycle import VMLifecycleManager
from repro.cluster.power_delivery import PowerNode
from repro.cluster.vm import VMInstance, VMSpec, VMState
from repro.errors import (
    ConfigurationError,
    FaultError,
    HostFailure,
    InjectionError,
)
from repro.experiments.failure_recovery import run_failure_recovery
from repro.faults import (
    FaultCampaign,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultTimeline,
    HostFailureInjector,
    PowerTripInjector,
    ThermalExcursionInjector,
    VMCrashInjector,
)
from repro.faults.scenarios import SCENARIOS, list_fault_catalog, run_scenarios
from repro.sim.kernel import Simulator
from repro.thermal.junction import JunctionModel

SEEDS = [int(token) for token in os.environ.get("REPRO_CHAOS_SEEDS", "1 2").split()]

#: Shrunk failure-recovery experiment parameters, small enough for CI.
SHRUNK = dict(qps=900.0, initial_vms=3, failure_at_s=40.0, horizon_s=150.0, warmup_s=10.0)


class TestFaultPlan:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.VM_CRASH, at_s=-1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.POWER_TRIP, duration_s=-5.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.VM_CRASH, rate_per_hour=-0.1)

    def test_specs_list_becomes_tuple(self):
        plan = FaultPlan(seed=1, specs=[FaultSpec(kind=FaultKind.VM_CRASH, at_s=1.0)])
        assert isinstance(plan.specs, tuple)

    def test_stream_seed_is_deterministic_and_per_spec(self):
        specs = (
            FaultSpec(kind=FaultKind.VM_CRASH, target="a"),
            FaultSpec(kind=FaultKind.VM_CRASH, target="b"),
        )
        plan = FaultPlan(seed=9, scenario="s", specs=specs)
        again = FaultPlan(seed=9, scenario="s", specs=specs)
        assert plan.stream_seed(0) == again.stream_seed(0)
        assert plan.stream_seed(0) != plan.stream_seed(1)
        assert plan.with_seed(10).stream_seed(0) != plan.stream_seed(0)

    def test_describe_mentions_every_spec(self):
        plan = FaultPlan(
            seed=1,
            scenario="x",
            specs=(
                FaultSpec(kind=FaultKind.HOST_FAILURE, target="h0", at_s=3.0),
                FaultSpec(kind=FaultKind.VM_CRASH, rate_per_hour=2.0),
            ),
        )
        text = plan.describe()
        assert "host-failure" in text and "vm-crash" in text and "sampled" in text


class TestTimeline:
    def test_signature_covers_order_and_content(self):
        a = FaultTimeline()
        a.record(1.0, "vm-crash", "x")
        a.record(2.0, "recovered", "x")
        b = FaultTimeline()
        b.record(1.0, "vm-crash", "x")
        b.record(2.0, "recovered", "x")
        assert a.signature() == b.signature()
        c = FaultTimeline()
        c.record(2.0, "recovered", "x")
        c.record(1.0, "vm-crash", "x")
        assert a.signature() != c.signature()

    def test_of_kind_filters(self):
        timeline = FaultTimeline()
        timeline.record(1.0, "vm-crash", "x")
        timeline.record(2.0, "tj-alarm", "y")
        assert len(timeline.of_kind("vm-crash")) == 1
        assert len(timeline) == 2


class TestCampaign:
    def _plan(self, **spec_kwargs):
        return FaultPlan(
            seed=3, specs=(FaultSpec(kind=FaultKind.HOST_FAILURE, **spec_kwargs),)
        )

    def test_duplicate_injector_rejected(self):
        campaign = FaultCampaign(Simulator(), self._plan(at_s=1.0))
        campaign.register(HostFailureInjector(on_failure=lambda t: None))
        with pytest.raises(FaultError):
            campaign.register(HostFailureInjector(on_failure=lambda t: None))

    def test_missing_injector_detected_at_arm(self):
        campaign = FaultCampaign(Simulator(), self._plan(at_s=1.0))
        with pytest.raises(InjectionError):
            campaign.arm()

    def test_double_arm_rejected(self):
        campaign = FaultCampaign(Simulator(), self._plan(at_s=1.0))
        campaign.register(HostFailureInjector(on_failure=lambda t: None))
        campaign.arm()
        with pytest.raises(FaultError):
            campaign.arm()

    def test_pinned_time_in_the_past_rejected(self):
        simulator = Simulator()
        simulator.after(10.0, lambda: None)
        simulator.run()
        campaign = FaultCampaign(simulator, self._plan(at_s=5.0))
        campaign.register(HostFailureInjector(on_failure=lambda t: None))
        with pytest.raises(InjectionError):
            campaign.arm()

    def test_sampled_time_without_rate_rejected(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec(kind=FaultKind.HOST_FAILURE),))
        campaign = FaultCampaign(Simulator(), plan)
        campaign.register(HostFailureInjector(on_failure=lambda t: None))
        with pytest.raises(InjectionError):
            campaign.arm()

    def test_zero_rate_suppresses_and_infinite_rate_fires_now(self):
        fired: list[str] = []
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(kind=FaultKind.HOST_FAILURE, target="never", rate_per_hour=0.0),
                FaultSpec(
                    kind=FaultKind.HOST_FAILURE,
                    target="now",
                    rate_per_hour=float("inf"),
                ),
            ),
        )
        simulator = Simulator()
        campaign = FaultCampaign(simulator, plan)
        campaign.register(HostFailureInjector(on_failure=fired.append))
        campaign.arm()
        simulator.run(until=100.0)
        assert fired == ["now"]
        (event,) = campaign.timeline.events
        assert event.time_s == 0.0

    def test_sampled_times_reproduce_per_seed(self):
        def build(seed: int) -> str:
            plan = FaultPlan(
                seed=seed,
                scenario="t",
                specs=(
                    FaultSpec(
                        kind=FaultKind.HOST_FAILURE, target="h", rate_per_hour=1.0
                    ),
                ),
            )
            simulator = Simulator()
            campaign = FaultCampaign(simulator, plan)
            campaign.register(HostFailureInjector(on_failure=lambda t: None))
            campaign.arm()
            simulator.run(until=1e9)
            return campaign.timeline.signature()

        for seed in SEEDS:
            assert build(seed) == build(seed)
        assert build(SEEDS[0]) != build(SEEDS[0] + 1000)


class TestInjectors:
    def test_vm_crash_takes_down_lifecycle_vm(self):
        simulator = Simulator()
        lifecycle = VMLifecycleManager(simulator)
        vm = lifecycle.request_vm(VMSpec(vcores=2, memory_gb=8.0), latency_override_s=0.0)
        plan = FaultPlan(
            seed=1,
            specs=(FaultSpec(kind=FaultKind.VM_CRASH, target=vm.vm_id, at_s=30.0),),
        )
        campaign = FaultCampaign(simulator, plan)
        campaign.register(VMCrashInjector(on_crash=lifecycle.fail_vm))
        campaign.arm()
        simulator.run(until=60.0)
        assert vm.state is VMState.FAILED
        assert vm.failed_at == 30.0

    def test_thermal_excursion_records_alarm_and_recovery(self):
        junction = JunctionModel(
            reference_temp_c=34.0, thermal_resistance_c_per_w=0.08, tj_max_c=110.0
        )
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(
                    kind=FaultKind.THERMAL_EXCURSION,
                    target="cpu",
                    at_s=10.0,
                    magnitude=30.0,
                    duration_s=20.0,
                ),
            ),
        )
        simulator = Simulator()
        campaign = FaultCampaign(simulator, plan)
        campaign.register(
            ThermalExcursionInjector(
                junctions={"cpu": junction}, load_watts=lambda target: 600.0
            )
        )
        campaign.arm()
        simulator.run(until=60.0)
        kinds = [event.kind for event in campaign.timeline]
        assert kinds == ["thermal-excursion", "tj-alarm", "recovered"]

    def test_thermal_excursion_below_tjmax_raises_no_alarm(self):
        junction = JunctionModel(
            reference_temp_c=34.0, thermal_resistance_c_per_w=0.08, tj_max_c=110.0
        )
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(
                    kind=FaultKind.THERMAL_EXCURSION,
                    target="cpu",
                    at_s=10.0,
                    magnitude=10.0,
                ),
            ),
        )
        simulator = Simulator()
        campaign = FaultCampaign(simulator, plan)
        campaign.register(
            ThermalExcursionInjector(
                junctions={"cpu": junction}, load_watts=lambda target: 600.0
            )
        )
        campaign.arm()
        simulator.run(until=60.0)
        assert not campaign.timeline.of_kind("tj-alarm")

    def test_power_trip_derates_then_restores(self):
        host = Host("h0")
        host.place(VMInstance(vm_id="vm", spec=VMSpec(vcores=8, memory_gb=32.0)))
        node = PowerNode(name="rack", limit_watts=1000.0, hosts=[(host, 0)])
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(
                    kind=FaultKind.POWER_TRIP,
                    target="rack",
                    at_s=5.0,
                    magnitude=0.4,
                    duration_s=10.0,
                ),
            ),
        )
        simulator = Simulator()
        campaign = FaultCampaign(simulator, plan)
        campaign.register(PowerTripInjector(nodes={"rack": node}))
        campaign.arm()
        simulator.run(until=30.0)
        assert node.limit_watts == pytest.approx(1000.0)
        kinds = [event.kind for event in campaign.timeline]
        assert kinds[0] == "power-trip" and kinds[-1] == "recovered"

    def test_power_trip_magnitude_validated(self):
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(kind=FaultKind.POWER_TRIP, target="rack", at_s=1.0),
            ),
        )
        campaign = FaultCampaign(Simulator(), plan)
        campaign.register(
            PowerTripInjector(nodes={"rack": PowerNode(name="rack", limit_watts=100.0)})
        )
        with pytest.raises(InjectionError):
            campaign.arm()

    def test_unknown_target_rejected_at_arm(self):
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(
                    kind=FaultKind.THERMAL_EXCURSION,
                    target="nope",
                    at_s=1.0,
                    magnitude=5.0,
                ),
            ),
        )
        campaign = FaultCampaign(Simulator(), plan)
        campaign.register(
            ThermalExcursionInjector(junctions={}, load_watts=lambda target: 0.0)
        )
        with pytest.raises(InjectionError):
            campaign.arm()


class TestClusterFailurePaths:
    def test_host_fail_marks_vms_and_blocks_placement(self):
        host = Host("h0")
        vm = VMInstance(vm_id="vm", spec=VMSpec(vcores=2, memory_gb=8.0))
        host.place(vm)
        lost = host.fail(time=12.0)
        assert lost == (vm,)
        assert vm.state is VMState.FAILED and vm.failed_at == 12.0
        assert host.power_watts(0.5) == 0.0
        assert host.peak_power_watts() == 0.0
        with pytest.raises(HostFailure):
            host.place(VMInstance(vm_id="vm2", spec=VMSpec(vcores=1, memory_gb=4.0)))
        with pytest.raises(ConfigurationError):
            host.fail()
        host.restore()
        assert not host.failed

    def test_crash_restart_redeploys_with_latency(self):
        simulator = Simulator()
        lifecycle = VMLifecycleManager(simulator)
        vm = lifecycle.request_vm(VMSpec(vcores=2, memory_gb=8.0), latency_override_s=0.0)
        simulator.run()
        assert vm.state is VMState.RUNNING
        failed, replacement = lifecycle.crash_restart(vm.vm_id)
        assert failed.state is VMState.FAILED
        assert replacement.state is VMState.CREATING
        simulator.run()
        assert replacement.state is VMState.RUNNING
        assert replacement.running_since == pytest.approx(
            lifecycle.creation_latency_s
        )

    def test_fail_vm_unknown_id_rejected(self):
        lifecycle = VMLifecycleManager(Simulator())
        with pytest.raises(ConfigurationError):
            lifecycle.fail_vm("ghost")


class TestScenarios:
    def test_registry_names(self):
        assert set(SCENARIOS) == {
            "host-failure",
            "crash-storm",
            "thermal-excursion",
            "power-trip",
            "degraded-telemetry",
            "partition",
            "heatwave",
            "oversubscribe",
            "silicon-drift",
            "envelope-rollout",
        }

    def test_unknown_scenario_exits_2(self, capsys):
        assert run_scenarios(["bogus"], seed=1) == 2

    def test_fault_catalog_is_sorted(self):
        text = list_fault_catalog()
        kinds_block, scenarios_block = text.split("\n\nFault scenarios:\n")
        kinds = [line.strip() for line in kinds_block.splitlines()[1:]]
        names = [line.split()[0] for line in scenarios_block.splitlines()]
        assert kinds == sorted(kinds)
        assert names == sorted(names)
        assert len(names) == len(SCENARIOS)

    def test_fault_catalog_is_hash_seed_independent(self):
        """``faults --list`` must not depend on dict/hash ordering.

        The CLI contract is a diffable listing; running the command
        under different ``PYTHONHASHSEED`` values is the regression
        net for anyone reintroducing set/dict iteration into it.
        """
        repo_root = Path(__file__).resolve().parent.parent
        outputs = []
        for hash_seed in ("0", "42"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(repo_root / "src")
            env["PYTHONHASHSEED"] = hash_seed
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "faults", "--list"],
                env=env,
                cwd=repo_root,
                capture_output=True,
                text=True,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip() == list_fault_catalog().strip()

    @pytest.mark.parametrize("name", ["crash-storm", "thermal-excursion", "power-trip"])
    def test_fast_scenarios_are_deterministic(self, name):
        build = SCENARIOS[name].build
        for seed in SEEDS:
            assert build(seed) == build(seed)


class TestFailureRecoveryExperiment:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_oc_recovery_beats_baseline_and_reproduces(self, seed):
        first = run_failure_recovery(seed=seed, **SHRUNK)
        second = run_failure_recovery(seed=seed, **SHRUNK)
        # Strictly lower tail latency with overclocked survivors.
        assert first.oc.p95_latency_s < first.baseline.p95_latency_s
        # Both configs saw the same injected failure...
        assert first.baseline.timeline_signature == first.oc.timeline_signature
        assert first.baseline.vm_failures == first.oc.vm_failures == 1
        # ...and the whole comparison reproduces bit-for-bit from the seed.
        assert first == second

    def test_recovery_boost_only_in_oc_mode(self):
        comparison = run_failure_recovery(seed=SEEDS[0], **SHRUNK)
        assert comparison.baseline.recovery_boosts == 0
        assert comparison.oc.recovery_boosts >= 1
        assert comparison.oc.peak_frequency_ghz > comparison.baseline.peak_frequency_ghz
