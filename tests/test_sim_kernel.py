"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import EventQueue, Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append(3))
        queue.push(1.0, lambda: fired.append(1))
        queue.push(2.0, lambda: fired.append(2))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == [1, 2, 3]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        for index in range(10):
            queue.push(5.0, lambda i=index: fired.append(i))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == list(range(10))

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(0.5, lambda: fired.append("drop"))
        drop.cancel()
        assert len(queue) == 1
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["keep"]
        del keep

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_nan_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.push(float("nan"), lambda: None)


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.at(5.0, lambda: times.append(sim.now))
        sim.at(10.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0, 10.0]
        assert sim.now == 10.0

    def test_run_until_advances_clock_to_horizon(self):
        sim = Simulator()
        sim.at(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_run_until_does_not_fire_later_events(self):
        sim = Simulator()
        fired = []
        sim.at(50.0, lambda: fired.append("early"))
        sim.at(150.0, lambda: fired.append("late"))
        sim.run(until=100.0)
        assert fired == ["early"]
        sim.run(until=200.0)
        assert fired == ["early", "late"]

    def test_after_schedules_relative(self):
        sim = Simulator()
        result = []
        sim.at(10.0, lambda: sim.after(5.0, lambda: result.append(sim.now)))
        sim.run()
        assert result == [15.0]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_periodic_events_fire_until_cancelled(self):
        sim = Simulator()
        ticks = []
        handle = sim.every(10.0, lambda: ticks.append(sim.now))
        sim.at(35.0, handle.cancel)
        sim.run(until=100.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_periodic_start_after_override(self):
        sim = Simulator()
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now), start_after=0.0)
        sim.run(until=25.0)
        assert ticks == [0.0, 10.0, 20.0]

    def test_every_requires_positive_interval(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_max_events_bound(self):
        sim = Simulator()
        for index in range(10):
            sim.at(float(index), lambda: None)
        sim.run(max_events=4)
        assert sim.processed_events == 4

    def test_reset_clears_state(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.processed_events == 0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_events_always_fire_in_nondecreasing_time(self, times):
        sim = Simulator()
        observed = []
        for time in times:
            sim.at(time, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(times)


class TestRandomStreams:
    def test_streams_are_deterministic(self):
        sim1, sim2 = Simulator(seed=42), Simulator(seed=42)
        draws1 = [sim1.streams.exponential("a", 1.0) for _ in range(10)]
        draws2 = [sim2.streams.exponential("a", 1.0) for _ in range(10)]
        assert draws1 == draws2

    def test_streams_are_independent_by_name(self):
        sim = Simulator(seed=0)
        a_first = sim.streams.exponential("a", 1.0)
        sim2 = Simulator(seed=0)
        # Interleave a draw from stream b; stream a must be unaffected.
        sim2.streams.exponential("b", 1.0)
        a_second = sim2.streams.exponential("a", 1.0)
        assert a_first == a_second

    def test_different_seeds_differ(self):
        assert (
            Simulator(seed=1).streams.exponential("a", 1.0)
            != Simulator(seed=2).streams.exponential("a", 1.0)
        )

    @given(st.floats(min_value=0.01, max_value=100), st.floats(min_value=0.0, max_value=3.0))
    def test_lognormal_mean_and_cv(self, mean, cv):
        import numpy as np

        sim = Simulator(seed=7)
        draws = np.array([sim.streams.lognormal("s", mean, cv) for _ in range(4000)])
        assert np.mean(draws) == pytest.approx(mean, rel=0.35 + 0.35 * cv)

    def test_lognormal_zero_cv_is_deterministic(self):
        sim = Simulator()
        assert sim.streams.lognormal("s", 5.0, 0.0) == 5.0

    def test_lognormal_rejects_bad_inputs(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.streams.lognormal("s", -1.0, 0.5)
        with pytest.raises(ValueError):
            sim.streams.lognormal("s", 1.0, -0.5)
