"""Tests for the processor-sharing server VM and load balancer."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.sim import OpenLoopSource, Simulator
from repro.telemetry import LatencyRecorder
from repro.workloads import DEFAULT_SERVICE_MEAN_S, LoadBalancer, ServerVM

#: Offered load per vcore at a given QPS on a 4-vcore VM.
def offered_rho(qps, vcores=4):
    return qps * DEFAULT_SERVICE_MEAN_S / vcores



def run_vm(qps, seconds=60.0, frequency=None, seed=3, vcores=4):
    simulator = Simulator(seed=seed)
    recorder = LatencyRecorder()
    vm = ServerVM(simulator, "vm", vcores=vcores, latency_recorder=recorder)
    if frequency is not None:
        vm.set_frequency(frequency)
    OpenLoopSource(simulator, vm.submit, rate_per_second=qps)
    simulator.run(until=seconds)
    return vm, recorder, simulator


class TestServerVM:
    def test_utilization_matches_offered_load(self):
        vm, _, sim = run_vm(qps=700)
        utilization = vm.cumulative_busy_seconds / (sim.now * vm.vcores)
        assert utilization == pytest.approx(offered_rho(700), abs=0.03)

    def test_throughput_conserved(self):
        vm, recorder, _ = run_vm(qps=500)
        assert vm.completed_requests == pytest.approx(500 * 60, rel=0.1)
        assert len(recorder) == vm.completed_requests

    def test_latency_grows_with_load(self):
        _, light, _ = run_vm(qps=200)
        _, heavy, _ = run_vm(qps=900)
        assert heavy.p95() > light.p95()
        assert heavy.mean() > light.mean()

    def test_overclocking_reduces_latency(self):
        _, base, _ = run_vm(qps=880)
        _, fast, _ = run_vm(qps=880, frequency=4.1)
        ratio = fast.mean() / base.mean()
        # Per-request, Eq. 1 bounds the direct gain; under load the
        # queueing feedback amplifies it well beyond that bound.
        eq1_bound = 0.85 * 3.4 / 4.1 + 0.15
        assert ratio < eq1_bound
        assert ratio > 0.05

    def test_overclocking_rescues_a_saturated_vm(self):
        """At 1000 QPS a base-clock VM is past capacity (rho=1.05) and its
        queue grows without bound; at 4.1 GHz the same VM is stable."""
        base_vm, base, _ = run_vm(qps=1000)
        fast_vm, fast, _ = run_vm(qps=1000, frequency=4.1)
        assert base_vm.in_flight > 50          # diverging backlog
        assert fast_vm.in_flight < 50          # stable
        assert fast.mean() < base.mean() / 5.0

    def test_overclocking_gain_near_eq1_when_unloaded(self):
        _, base, _ = run_vm(qps=100)
        _, fast, _ = run_vm(qps=100, frequency=4.1)
        eq1_bound = 0.85 * 3.4 / 4.1 + 0.15
        assert fast.mean() / base.mean() == pytest.approx(eq1_bound, abs=0.05)

    def test_overclocking_reduces_utilization_by_eq1(self):
        vm_base, _, sim_base = run_vm(qps=750)
        vm_fast, _, sim_fast = run_vm(qps=750, frequency=4.1)
        util_base = vm_base.cumulative_busy_seconds / (sim_base.now * 4)
        util_fast = vm_fast.cumulative_busy_seconds / (sim_fast.now * 4)
        expected = util_base * (0.85 * 3.4 / 4.1 + 0.15)
        assert util_fast == pytest.approx(expected, abs=0.03)

    def test_counters_reflect_scalable_fraction(self):
        vm, _, sim = run_vm(qps=800)
        snapshot = vm.counter_snapshot()
        delta = snapshot.delta(type(snapshot)(time=0.0, aperf=0.0, pperf=0.0, busy_seconds=0.0))
        assert delta.scalable_fraction == pytest.approx(0.85, abs=1e-6)

    def test_frequency_change_mid_run(self):
        simulator = Simulator(seed=5)
        recorder = LatencyRecorder()
        vm = ServerVM(simulator, "vm", latency_recorder=recorder)
        OpenLoopSource(simulator, vm.submit, rate_per_second=1000)
        simulator.at(30.0, lambda: vm.set_frequency(4.1))
        simulator.run(until=60.0)
        assert vm.frequency_ghz == 4.1
        assert vm.completed_requests > 50_000

    def test_saturated_vm_backlogs(self):
        vm, _, _ = run_vm(qps=2000, seconds=30.0)  # capacity ~950 QPS
        assert vm.in_flight > 100

    def test_validation(self):
        simulator = Simulator()
        with pytest.raises(ConfigurationError):
            ServerVM(simulator, "vm", vcores=0)
        with pytest.raises(ConfigurationError):
            ServerVM(simulator, "vm", scalable_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ServerVM(simulator, "vm", service_mean_s=0.0)
        vm = ServerVM(simulator, "vm")
        with pytest.raises(WorkloadError):
            vm.set_frequency(0.0)


class TestLoadBalancer:
    def test_round_robin_distribution(self):
        simulator = Simulator(seed=1)
        balancer = LoadBalancer()
        vms = [ServerVM(simulator, f"vm{i}") for i in range(3)]
        for vm in vms:
            balancer.attach(vm)
        OpenLoopSource(simulator, balancer.route, rate_per_second=900, deterministic=True)
        simulator.run(until=30.0)
        counts = [vm.completed_requests + vm.in_flight for vm in vms]
        assert max(counts) - min(counts) <= 1

    def test_detach_redirects_traffic(self):
        simulator = Simulator(seed=1)
        balancer = LoadBalancer()
        vms = [ServerVM(simulator, f"vm{i}") for i in range(2)]
        for vm in vms:
            balancer.attach(vm)
        OpenLoopSource(simulator, balancer.route, rate_per_second=200, deterministic=True)
        simulator.at(10.0, lambda: balancer.detach(vms[1]))
        simulator.run(until=20.0)
        total = sum(vm.completed_requests + vm.in_flight for vm in vms)
        assert total == pytest.approx(4000, abs=5)
        vm1_share = vms[1].completed_requests + vms[1].in_flight
        assert vm1_share == pytest.approx(1000, abs=5)

    def test_no_vms_drops_requests(self):
        balancer = LoadBalancer()
        balancer.route(0.0)
        assert balancer.dropped_requests == 1

    def test_attach_detach_validation(self):
        simulator = Simulator()
        balancer = LoadBalancer()
        vm = ServerVM(simulator, "vm")
        balancer.attach(vm)
        with pytest.raises(ConfigurationError):
            balancer.attach(vm)
        balancer.detach(vm)
        with pytest.raises(ConfigurationError):
            balancer.detach(vm)
